"""Figure 9: stream-length contribution and history-size sensitivity.

Paper shape (left): medium/long streams contribute the bulk of correct
predictions.  (Right): coverage monotone in history size with a knee.
"""

from conftest import emit
from repro.experiments.fig9 import HISTORY_SIZES, run_fig9


def test_fig9(benchmark, bench_config):
    result = benchmark.pedantic(run_fig9, args=(bench_config,),
                                rounds=1, iterations=1)
    emit(result)
    for workload in bench_config.workloads:
        cdf = result.length_cdf[workload]
        # Streams of length < 4 records (bins 0-1) contribute a
        # minority of correct predictions.
        short = 0.0
        for bin_, value in sorted(cdf.items()):
            if bin_ <= 1:
                short = value
        assert short < 0.6, workload
        assert result.coverage_monotone(workload, tolerance=0.03), workload
        series = result.history_coverage[workload]
        assert series[HISTORY_SIZES[-1]] >= series[HISTORY_SIZES[0]]
