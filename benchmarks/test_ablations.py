"""Ablations: the design-choice sweeps DESIGN.md calls out."""

from dataclasses import replace

from conftest import emit
from repro.experiments.ablations import (
    run_index_ablation,
    run_replacement_ablation,
    run_sab_ablation,
    run_source_ablation,
    run_temporal_ablation,
)

#: A two-workload slice keeps the ablation grid affordable.
def _slice(config):
    return replace(config, workloads=("oltp-db2", "web-apache"))


def test_ablation_temporal_compactor(benchmark, bench_config):
    result = benchmark.pedantic(run_temporal_ablation,
                                args=(_slice(bench_config),),
                                rounds=1, iterations=1)
    emit(result)
    for workload, row in result.coverage.items():
        # Temporal compaction must not hurt, and the paper's 4 entries
        # should be at least as good as none.
        assert row["4"] >= row["0"] - 0.03, workload


def test_ablation_sab_geometry(benchmark, bench_config):
    result = benchmark.pedantic(run_sab_ablation,
                                args=(_slice(bench_config),),
                                rounds=1, iterations=1)
    emit(result)
    for workload, row in result.coverage.items():
        # More than one concurrent stream is needed.
        assert row["4x3"] >= row["1x3"] - 0.02, workload


def test_ablation_index_capacity(benchmark, bench_config):
    result = benchmark.pedantic(run_index_ablation,
                                args=(_slice(bench_config),),
                                rounds=1, iterations=1)
    emit(result)
    for workload, row in result.coverage.items():
        assert row["unbounded"] >= row["256"] - 0.02, workload


def test_ablation_record_source(benchmark, bench_config):
    result = benchmark.pedantic(run_source_ablation,
                                args=(_slice(bench_config),),
                                rounds=1, iterations=1)
    emit(result)
    for workload, row in result.coverage.items():
        # The paper's central claim inside one design: retire-order
        # input must beat fetch-order input.
        assert row["retire"] >= row["fetch"] - 0.01, workload


def test_ablation_replacement_policy(benchmark, bench_config):
    result = benchmark.pedantic(run_replacement_ablation,
                                args=(_slice(bench_config),),
                                rounds=1, iterations=1)
    emit(result)
    for workload, row in result.coverage.items():
        # PIF's advantage is not an artifact of LRU.
        assert min(row.values()) > 0.5, workload
