"""Figure 2: predictability of the four instruction-stream views.

Paper shape: Miss < Access < Retire < RetireSep for every workload,
with RetireSep approaching 100 %.
"""

from conftest import emit
from repro.experiments.fig2 import run_fig2
from repro.trace.records import StreamKind


def test_fig2(benchmark, bench_config):
    result = benchmark.pedantic(run_fig2, args=(bench_config,),
                                rounds=1, iterations=1)
    emit(result)
    for workload in bench_config.workloads:
        assert result.ordering_holds(workload, tolerance=0.03), workload
        row = result.coverage[workload]
        assert row[StreamKind.RETIRE_SEP] > 0.8
