"""Figure 3: spatial-region density and discontinuity distributions.

Paper shape: >50 % of regions touch more than one block; roughly a
fifth of regions are internally discontinuous.
"""

from conftest import emit
from repro.experiments.fig3 import run_fig3


def test_fig3(benchmark, bench_config):
    result = benchmark.pedantic(run_fig3, args=(bench_config,),
                                rounds=1, iterations=1)
    emit(result)
    for workload in bench_config.workloads:
        assert result.multi_block_fraction(workload) > 0.40, workload
        assert 0.02 < result.discontinuous_fraction(workload) < 0.7, workload
