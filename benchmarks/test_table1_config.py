"""Table I: the simulated system and workload parameters.

Not a measurement — this bench materializes every configuration object
of the reproduction and prints the Table I equivalent, verifying the
defaults stay the paper's values.
"""

from repro.common.config import PAPER_PIF, PAPER_SYSTEM
from repro.workloads.spec import PAPER_WORKLOADS


def test_table1_system_parameters(benchmark):
    def build():
        return PAPER_SYSTEM.describe()

    description = benchmark(build)
    assert description["cores"] == 16
    assert description["l1i"]["capacity_bytes"] == 64 * 1024
    assert description["branch"]["gshare_entries"] == 16 * 1024
    assert description["pipeline"]["rob_entries"] == 96
    assert PAPER_PIF.history_entries == 32 * 1024
    print("\nTable I (system):")
    for key, value in description.items():
        print(f"  {key}: {value}")
    print("Table I (workloads):")
    for name, spec in PAPER_WORKLOADS.items():
        print(f"  {name}: suite={spec.suite} footprint={spec.code_footprint_kb}KB "
              f"transactions={spec.transaction_types} "
              f"irq-interval={spec.interrupt_interval}")
