"""Figure 7: weighted jump distance in history.

Paper shape: correct predictions come from a wide range of history
depths — a meaningful share of prediction weight re-enters the history
from far back, motivating deep history storage.
"""

from conftest import emit
from repro.experiments.fig7 import run_fig7


def test_fig7(benchmark, bench_config):
    result = benchmark.pedantic(run_fig7, args=(bench_config,),
                                rounds=1, iterations=1)
    emit(result)
    for workload in bench_config.workloads:
        cdf = result.cdf[workload]
        assert cdf, workload
        # Deep history matters: a visible share of prediction weight
        # comes from jumps of at least 2^8 records back.
        assert result.deep_fraction(workload, threshold_bin=8) > 0.05, workload
