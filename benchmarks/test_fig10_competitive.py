"""Figure 10: competitive coverage and speedup comparison.

Paper shape: PIF coverage ~near-perfect vs TIFS 65-90 % vs next-line
lower still; speedups ordered baseline < next-line < TIFS < PIF <=
perfect, with PIF close to the perfect L1-I.
"""

from conftest import emit
from repro.experiments.fig10 import run_fig10


def test_fig10(benchmark, bench_config):
    result = benchmark.pedantic(run_fig10, args=(bench_config,),
                                rounds=1, iterations=1)
    emit(result)
    assert result.pif_wins_everywhere()
    for workload in bench_config.workloads:
        coverage = result.coverage[workload]
        assert coverage["pif"] > 0.75, workload
        speedup = result.speedup[workload]
        assert speedup["perfect"] >= speedup["pif"] - 0.03, workload
        assert speedup["pif"] > 1.0, workload
        assert speedup["pif"] >= speedup["tifs"] - 0.04, workload
    # Average speedups, the paper's headline numbers.
    print(f"\nmean speedups: next-line={result.mean_speedup('next-line'):.3f} "
          f"tifs={result.mean_speedup('tifs'):.3f} "
          f"pif={result.mean_speedup('pif'):.3f} "
          f"perfect={result.mean_speedup('perfect'):.3f}")
