"""Shared benchmark configuration.

The benchmarks regenerate every paper figure at a reduced-but-faithful
scale (see DESIGN.md's scale note).  Each prints the same rows/series
the paper reports, so ``pytest benchmarks/ --benchmark-only -s`` doubles
as the reproduction's results run.  For the full-scale pass, run
``python -m repro.experiments`` (``--jobs N`` fans the per-workload
slices out over processes).

Everything collected from this directory carries the ``bench`` marker
(registered in ``pytest.ini``), so ``pytest -m "not bench"`` gives a
fast correctness-only pass while the bare tier-1 command stays complete.

The benchmark traces go through the on-disk trace store; when
``REPRO_TRACE_STORE`` is not explicitly set (CI sets it to a cached
workspace directory), it is redirected to a throwaway directory so
benchmark runs never populate the user's real ``~/.cache``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentConfig
from repro.trace.store import ensure_scratch_store

ensure_scratch_store(prefix="repro-bench-traces-")

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items) -> None:
    """Tag every test under ``benchmarks/`` with the ``bench`` marker."""
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)

#: Benchmark-scale experiment configuration: one core, medium traces.
BENCH_CONFIG = ExperimentConfig(instructions=700_000, cores=1, seed=42)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The shared benchmark experiment configuration."""
    return BENCH_CONFIG


def emit(result) -> None:
    """Print an experiment's table (visible with ``-s``)."""
    print()
    print(result.to_table())
