"""Shared benchmark configuration.

The benchmarks regenerate every paper figure at a reduced-but-faithful
scale (see DESIGN.md's scale note).  Each prints the same rows/series
the paper reports, so ``pytest benchmarks/ --benchmark-only -s`` doubles
as the reproduction's results run.  For the full-scale pass used in
EXPERIMENTS.md, run ``python -m repro.experiments``.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig

#: Benchmark-scale experiment configuration: one core, medium traces.
BENCH_CONFIG = ExperimentConfig(instructions=700_000, cores=1, seed=42)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The shared benchmark experiment configuration."""
    return BENCH_CONFIG


def emit(result) -> None:
    """Print an experiment's table (visible with ``-s``)."""
    print()
    print(result.to_table())
