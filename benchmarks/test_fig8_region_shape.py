"""Figure 8: accesses around the trigger and region-size sensitivity.

Paper shape (left): offset +1 dominates, frequency decays with
distance, and there is non-trivial mass at negative offsets (hence the
2-preceding skew).  (Right): TL0 coverage mildly increasing in region
size; TL1 strongly increasing.
"""

from conftest import emit
from repro.experiments.fig8 import REGION_SIZES, run_fig8


def test_fig8(benchmark, bench_config):
    result = benchmark.pedantic(run_fig8, args=(bench_config,),
                                rounds=1, iterations=1)
    emit(result)
    for workload in bench_config.workloads:
        profile = result.offset_profile[workload]
        assert profile[1] == max(profile.values()), workload
        backward = sum(value for offset, value in profile.items()
                       if offset < 0)
        assert backward > 0.005, workload
        sizes = result.size_coverage[workload]
        assert sizes[REGION_SIZES[-1]][0] >= sizes[REGION_SIZES[0]][0] - 0.03, \
            workload
