"""The pre-kernel (PR 2) lane-walk machinery, frozen for benchmarking.

``BENCH_3.json``'s headline claim is "the flat-array kernel is ≥3x
faster than the engine it replaced".  The replaced engine cannot be
timed from git history inside a test run, so this module preserves its
per-access machinery verbatim:

* the object-model cache walk (``ReferenceInstructionCache``: per-set
  dicts, ``_Line`` dataclasses, one replacement-policy object per set,
  an ``AccessResult`` allocation per access);
* the list-returning ``on_demand_access`` protocol with a fresh
  candidate list per access and lane;
* the ``LRUCache``-keyed SAB file and TIFS stream queues, with
  ``list(items_mru_first())`` materialized per fetch;
* per-read ``HistoryBuffer`` runs and per-use ``SpatialRegionRecord``
  block decoding (no memoization).

The benchmark asserts the legacy lanes produce **bit-identical**
results to the fast kernel before trusting the timing, so this module
doubles as one more differential oracle.  It is benchmark scaffolding:
nothing under ``src/`` may import it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.reference import ReferenceInstructionCache
from repro.common.config import CacheConfig
from repro.common.lru import LRUCache
from repro.core.history import HistoryBuffer
from repro.core.pif import ProactiveInstructionFetch
from repro.core.spatial import SpatialRegionRecord
from repro.prefetch.base import Prefetcher, as_block_list
from repro.prefetch.tifs import TIFSPrefetcher, _MissStream
from repro.sim.baseline import count_measured_misses, replay_baseline
from repro.sim.tracesim import PrefetchSimResult
from repro.trace.bundle import TraceBundle


class LegacyHistoryBuffer(HistoryBuffer):
    """History buffer with the original per-record ``read_run`` loop."""

    def read_run(self, position: int, count: int):
        result = []
        for offset in range(count):
            record = self.read(position + offset)
            if record is None:
                break
            result.append((position + offset, record))
        return result

    def read_run_values(self, position: int, count: int):
        return [record for _, record in self.read_run(position, count)]


class LegacyStreamAddressBuffer:
    """PR 2's SAB: dict block map rebuilt from undecoded records."""

    def __init__(self, geometry, window_regions: int,
                 block_bytes: int = 64) -> None:
        self.geometry = geometry
        self.window_regions = window_regions
        self.block_bytes = block_bytes
        self.pointer = 0
        self.window: List[Tuple[int, SpatialRegionRecord]] = []
        self._block_map: Dict[int, int] = {}
        self.matches = 0
        self.regions_replayed = 0

    def allocate(self, history, start_position: int) -> List[int]:
        self.pointer = start_position
        self.window = []
        self._block_map = {}
        return self._refill(history)

    def advance(self, history, block: int) -> Optional[List[int]]:
        slot = self._block_map.get(block)
        if slot is None:
            return None
        self.matches += 1
        if slot == 0:
            return []
        self.window = self.window[slot:]
        self._rebuild_block_map()
        return self._refill(history)

    def _refill(self, history) -> List[int]:
        new_blocks: List[int] = []
        needed = self.window_regions - len(self.window)
        if needed <= 0:
            return new_blocks
        run = history.read_run(self.pointer, needed)
        for position, record in run:
            slot = len(self.window)
            self.window.append((position, record))
            self.regions_replayed += 1
            for block in record.blocks(self.geometry, self.block_bytes):
                self._block_map.setdefault(block, slot)
                new_blocks.append(block)
        if run:
            self.pointer = run[-1][0] + 1
        return new_blocks

    def _rebuild_block_map(self) -> None:
        self._block_map = {}
        for slot, (_, record) in enumerate(self.window):
            for block in record.blocks(self.geometry, self.block_bytes):
                self._block_map.setdefault(block, slot)


class LegacySABFile:
    """PR 2's SAB file: an ``LRUCache`` scanned MRU-first per fetch."""

    def __init__(self, geometry, count: int = 4, window_regions: int = 7,
                 block_bytes: int = 64) -> None:
        self.geometry = geometry
        self.count = count
        self.window_regions = window_regions
        self.block_bytes = block_bytes
        self._sabs: LRUCache[int, LegacyStreamAddressBuffer] = LRUCache(count)
        self._next_id = 0
        self.allocations = 0

    def advance(self, history, block: int) -> Optional[List[int]]:
        for sab_id, sab in list(self._sabs.items_mru_first()):
            result = sab.advance(history, block)
            if result is not None:
                self._sabs.promote(sab_id)
                return result
        return None

    def allocate(self, history, start_position: int) -> List[int]:
        self.allocations += 1
        sab = LegacyStreamAddressBuffer(self.geometry, self.window_regions,
                                        self.block_bytes)
        blocks = sab.allocate(history, start_position)
        self._next_id += 1
        self._sabs.put(self._next_id, sab)
        return blocks


class LegacyPIF(ProactiveInstructionFetch):
    """PIF on the legacy SAB file, history buffer and list protocol."""

    def _channel(self, trap_level: int):
        key = trap_level if self.separate_trap_levels else 0
        created = key not in self._channels
        channel = super()._channel(trap_level)
        if created:
            channel.history = LegacyHistoryBuffer(channel.history.capacity)
            channel.sabs = LegacySABFile(
                self.config.geometry, self.config.sab_count,
                self.config.sab_window_regions, self.block_bytes)
        return channel

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        channel = self._channel(trap_level)
        candidates: List[int] = []
        advanced = channel.sabs.advance(channel.history, block)
        if advanced is not None:
            channel.stats.window_advances += 1
            candidates.extend(advanced)
        if not hit and not was_prefetched:
            self.stats.triggers += 1
            position = channel.index.lookup(pc)
            if position is not None:
                burst = channel.sabs.allocate(channel.history, position)
                channel.stats.stream_allocations += 1
                self.stats.stream_allocations += 1
                candidates.extend(burst)
        blocks = as_block_list(candidates)
        self.stats.issued += len(blocks)
        return blocks

    def on_demand_access_into(self, block, pc, trap_level, hit,
                              was_prefetched, out) -> int:
        candidates = self.on_demand_access(block, pc, trap_level, hit,
                                           was_prefetched)
        out.extend(candidates)
        return len(candidates)


class LegacyTIFS(TIFSPrefetcher):
    """TIFS on the legacy stream queues and history buffer."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.history = LegacyHistoryBuffer(self.history.capacity)
        self._queues: LRUCache[int, _MissStream] = LRUCache(
            self._stream_capacity)
        self._stream_counter = 0

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        prefetches: List[int] = []
        matched = self._advance_streams(block, prefetches)
        would_be_miss = (not hit) or (hit and was_prefetched)
        if would_be_miss:
            position = self.history.append(block)
            previous = self.index.lookup(block)
            self.index.insert(block, position)
            if not hit and not matched and previous is not None:
                self._allocate_legacy(previous + 1, prefetches)
        if prefetches:
            self.stats.issued += len(prefetches)
        return prefetches

    def on_demand_access_into(self, block, pc, trap_level, hit,
                              was_prefetched, out) -> int:
        candidates = self.on_demand_access(block, pc, trap_level, hit,
                                           was_prefetched)
        out.extend(candidates)
        return len(candidates)

    def _advance_streams(self, block: int, prefetches: List[int]) -> bool:
        for stream_id, stream in list(self._queues.items_mru_first()):
            if block not in stream.window:
                continue
            match_offset = stream.window.index(block)
            stream.pointer += match_offset + 1
            self._refill_legacy(stream, prefetches)
            self._queues.promote(stream_id)
            return True
        return False

    def _allocate_legacy(self, pointer: int, prefetches: List[int]) -> None:
        self.stats.triggers += 1
        self.stats.stream_allocations += 1
        self._stream_counter += 1
        stream = _MissStream(pointer, [])
        self._refill_legacy(stream, prefetches)
        if stream.window:
            self._queues.put(self._stream_counter, stream)

    def _refill_legacy(self, stream: _MissStream,
                       prefetches: List[int]) -> None:
        run = self.history.read_run(stream.pointer, self.window_blocks)
        new_window = [record for _, record in run]
        for address in new_window:
            if address not in stream.window:
                prefetches.append(address)
        stream.window = new_window


def run_legacy_multi_prefetch_simulation(
    bundle: TraceBundle,
    prefetchers: Sequence[Prefetcher],
    cache_config: Optional[CacheConfig] = None,
    warmup_fraction: float = 0.25,
) -> List[PrefetchSimResult]:
    """PR 2's ``run_multi_prefetch_simulation``, walk loop verbatim."""

    class _Lane:
        __slots__ = ("prefetcher", "cache", "remaining_misses",
                     "per_level_remaining", "prefetches_issued")

        def __init__(self, prefetcher, cache):
            self.prefetcher = prefetcher
            self.cache = cache
            self.remaining_misses = 0
            self.per_level_remaining: Dict[int, int] = {}
            self.prefetches_issued = 0

    config = cache_config if cache_config is not None else CacheConfig()
    replay = replay_baseline(bundle, config)
    baseline_misses, per_level_baseline = count_measured_misses(
        bundle, replay.hits, warmup_fraction)
    lanes = [_Lane(prefetcher, ReferenceInstructionCache(config))
             for prefetcher in prefetchers]

    blocks = bundle.access_block.tolist()
    pcs = bundle.access_pc.tolist()
    trap_levels = bundle.access_trap.tolist()
    wrong_paths = bundle.access_wrong_path.tolist()
    retire_pcs = bundle.retire_pc.tolist()
    retire_traps = bundle.retire_trap.tolist()
    warmup_boundary = int(len(blocks) * warmup_fraction)

    retire_cursor = 0
    for position, (block, pc, trap_level, wrong_path) in enumerate(
            zip(blocks, pcs, trap_levels, wrong_paths)):
        measuring = position >= warmup_boundary
        correct_path = not wrong_path
        retire_pc = retire_trap = None
        if correct_path:
            retire_pc = retire_pcs[retire_cursor]
            retire_trap = retire_traps[retire_cursor]
            retire_cursor += 1
        for lane in lanes:
            test_result = lane.cache.access(block)
            if correct_path and measuring and not test_result.hit:
                lane.remaining_misses += 1
                lane.per_level_remaining[trap_level] = (
                    lane.per_level_remaining.get(trap_level, 0) + 1)
            candidates = lane.prefetcher.on_demand_access(
                block, pc, trap_level,
                test_result.hit, test_result.was_prefetched)
            for candidate in candidates:
                lane.prefetches_issued += 1
                lane.cache.prefetch(candidate)
            if retire_pc is not None:
                lane.prefetcher.on_retire(retire_pc, retire_trap,
                                          tagged=test_result.tagged)
    if retire_cursor != len(retire_pcs):
        raise RuntimeError("legacy walk: access/retire alignment broken")

    return [
        PrefetchSimResult(
            workload=bundle.workload,
            prefetcher=lane.prefetcher.name,
            instructions=bundle.instructions,
            baseline_misses=baseline_misses,
            remaining_misses=lane.remaining_misses,
            per_level_baseline=dict(per_level_baseline),
            per_level_remaining=lane.per_level_remaining,
            prefetches_issued=lane.prefetches_issued,
            cache_stats=lane.cache.stats,
            baseline_stats=replay.stats,
        )
        for lane in lanes
    ]
