"""Lane-walk kernel benchmark: flat-array fast path vs what it replaced.

Times the same multi-prefetcher lane walk through three planes:

* ``legacy``    — the pre-kernel (PR 2) machinery, frozen verbatim in
  :mod:`legacy_engine`: object-model cache, list-returning prefetcher
  protocol, LRUCache-keyed SAB/TIFS structures.  This is the "current
  engine" the ≥3x acceptance target is measured against.
* ``reference`` — the in-repo reference kernel (object-model cache and
  walk, but sharing the optimized prefetcher internals).
* ``fast``      — the flat-array kernel (inlined 2-way cache walkers,
  result codes, buffer-reuse hooks).

All three must produce bit-identical per-lane results before any
timing is trusted.  The measurements land in ``BENCH_3.json`` at the
repository root (override with ``REPRO_BENCH_OUT``), together with a
timing-simulator comparison and a quick-scale figure-10 rerun under
both kernels.
"""

import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

from legacy_engine import (
    LegacyPIF,
    LegacyTIFS,
    run_legacy_multi_prefetch_simulation,
)
from repro.common.config import SystemConfig
from repro.experiments.common import (
    EXPERIMENT_CACHE,
    EXPERIMENT_PIF,
    QUICK_CONFIG,
)
from repro.experiments.fig10 import run_fig10
from repro.pipeline.tracegen import cached_trace
from repro.prefetch import make_prefetcher
from repro.sim.engine import run_multi_prefetch_simulation
from repro.sim.timing import run_timing_simulation

#: The competitive engine line-up the figures replay.
ENGINE_NAMES = ("pif", "next-line", "stride", "discontinuity", "tifs")

WORKLOAD = "web-apache"
WARMUP = 0.25
ROUNDS = 2


def _engines(plane: str):
    """A fresh, stateless-equivalent engine set for one timed round."""
    if plane == "legacy":
        return [LegacyPIF(EXPERIMENT_PIF),
                make_prefetcher("next-line"),
                make_prefetcher("stride"),
                make_prefetcher("discontinuity"),
                LegacyTIFS()]
    return [make_prefetcher("pif", pif_config=EXPERIMENT_PIF)
            if name == "pif" else make_prefetcher(name)
            for name in ENGINE_NAMES]


def _time_plane(plane: str, bundle):
    """Best-of-ROUNDS wall-clock and the last run's results."""
    best = float("inf")
    results = None
    for _ in range(ROUNDS):
        engines = _engines(plane)
        started = time.perf_counter()
        if plane == "legacy":
            results = run_legacy_multi_prefetch_simulation(
                bundle, engines, cache_config=EXPERIMENT_CACHE,
                warmup_fraction=WARMUP)
        else:
            results = run_multi_prefetch_simulation(
                bundle, engines, cache_config=EXPERIMENT_CACHE,
                warmup_fraction=WARMUP, kernel=plane)
        best = min(best, time.perf_counter() - started)
    return best, results


def _assert_identical(expected, actual, label: str) -> None:
    for want, got in zip(expected, actual):
        assert want.prefetcher == got.prefetcher, label
        assert want.baseline_misses == got.baseline_misses, label
        assert want.remaining_misses == got.remaining_misses, \
            (label, want.prefetcher)
        assert want.per_level_baseline == got.per_level_baseline, label
        assert want.per_level_remaining == got.per_level_remaining, \
            (label, want.prefetcher)
        assert want.prefetches_issued == got.prefetches_issued, \
            (label, want.prefetcher)
        assert want.cache_stats == got.cache_stats, (label, want.prefetcher)


def _bench_out_path() -> Path:
    import os

    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        path = Path(override)
        path.parent.mkdir(parents=True, exist_ok=True)
        return path
    return Path(__file__).resolve().parent.parent / "BENCH_3.json"


def test_lane_walk_kernel_speedup(bench_config):
    bundle = cached_trace(WORKLOAD, bench_config.instructions,
                          bench_config.seed).bundle

    legacy_seconds, legacy = _time_plane("legacy", bundle)
    reference_seconds, reference = _time_plane("reference", bundle)
    fast_seconds, fast = _time_plane("fast", bundle)

    # Bit-identical results across all three planes, or the timing is
    # meaningless.
    _assert_identical(legacy, reference, "legacy vs reference")
    _assert_identical(legacy, fast, "legacy vs fast")

    speedup_vs_legacy = legacy_seconds / fast_seconds
    speedup_vs_reference = reference_seconds / fast_seconds

    # Timing-simulator comparison (fig10 right panel machinery).
    system = replace(SystemConfig(), l1i=EXPERIMENT_CACHE)
    timing = {}
    for kernel in ("reference", "fast"):
        best = float("inf")
        for _ in range(ROUNDS):
            engine = make_prefetcher("pif", pif_config=EXPERIMENT_PIF)
            started = time.perf_counter()
            result = run_timing_simulation(bundle, engine, system, WARMUP,
                                           kernel=kernel)
            best = min(best, time.perf_counter() - started)
        timing[kernel] = {"seconds": best, "uipc": result.uipc()}
    assert abs(timing["reference"]["uipc"] - timing["fast"]["uipc"]) < 1e-12

    # One engine-heavy figure at quick scale under each kernel — the
    # end-to-end wall-clock view of the same win.
    quick = replace(QUICK_CONFIG, workloads=(WORKLOAD,))
    figure = {}
    import os

    saved_kernel = os.environ.get("REPRO_SIM_KERNEL")
    try:
        for kernel in ("reference", "fast"):
            os.environ["REPRO_SIM_KERNEL"] = kernel
            started = time.perf_counter()
            run_fig10(quick)
            figure[kernel] = time.perf_counter() - started
    finally:
        if saved_kernel is None:
            os.environ.pop("REPRO_SIM_KERNEL", None)
        else:
            os.environ["REPRO_SIM_KERNEL"] = saved_kernel

    record = {
        "benchmark": "lane-walk kernel (flat-array fast path)",
        "workload": WORKLOAD,
        "instructions": bench_config.instructions,
        "accesses": int(len(bundle.access_block)),
        "engines": list(ENGINE_NAMES),
        "cache": {
            "capacity_bytes": EXPERIMENT_CACHE.capacity_bytes,
            "associativity": EXPERIMENT_CACHE.associativity,
            "replacement": EXPERIMENT_CACHE.replacement,
        },
        "lane_walk": {
            "legacy_pr2_seconds": round(legacy_seconds, 4),
            "reference_kernel_seconds": round(reference_seconds, 4),
            "fast_kernel_seconds": round(fast_seconds, 4),
            "speedup_vs_legacy": round(speedup_vs_legacy, 2),
            "speedup_vs_reference": round(speedup_vs_reference, 2),
        },
        "timing_sim_pif": {
            "reference_seconds": round(timing["reference"]["seconds"], 4),
            "fast_seconds": round(timing["fast"]["seconds"], 4),
            "speedup": round(timing["reference"]["seconds"]
                             / timing["fast"]["seconds"], 2),
        },
        "fig10_quick_one_workload": {
            "reference_kernel_seconds": round(figure["reference"], 4),
            "fast_kernel_seconds": round(figure["fast"], 4),
            "speedup": round(figure["reference"] / figure["fast"], 2),
        },
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }
    _bench_out_path().write_text(json.dumps(record, indent=2) + "\n")

    print(f"\nlane walk: legacy {legacy_seconds:.3f}s | reference "
          f"{reference_seconds:.3f}s | fast {fast_seconds:.3f}s | "
          f"{speedup_vs_legacy:.2f}x vs legacy, "
          f"{speedup_vs_reference:.2f}x vs reference")

    # The acceptance target is >= 3x on the recorded (quiet-machine)
    # measurement committed in BENCH_3.json; the in-test floor is a
    # loose regression tripwire only, because shared-CI runners swing
    # wall-clock ratios by tens of percent between the timed phases.
    assert speedup_vs_legacy >= 1.5, record["lane_walk"]