"""Sweep-throughput benchmark: the sweep-scale execution engine vs the
PR 4 runner it replaced.

Measures the warm-store ``examples/scenarios/sab-ablation.yaml`` sweep
(the acceptance workload: 72 PIF points, 12 trace groups at experiment
scale) through two planes:

* ``pr4`` — the frozen PR 4 runner in :mod:`legacy_sweep`: per-call
  pool, unsharded groups, per-group baselines, hook-driven PIF walker,
  copy-loaded traces;
* ``new`` — the current engine: fused PIF walker replaying the shared
  train plan, mmap-backed v3 archives, persistent attached pool,
  cost-ordered lane shards, memoized baselines.

Every timed measurement runs in a *spawned* child process, so both
planes start from the identical "warm on-disk store, cold process"
state a fresh ``repro sweep run`` sees.  Before any timing is trusted,
the two planes' results stores are compared record for record — the
sweep engine must be a pure wall-clock change.

The measurements land in ``BENCH_5.json`` at the repository root
(override with ``REPRO_BENCH_OUT``).  When ``REPRO_BENCH_BASELINE``
points at a checked-in ``BENCH_5.json``, the warm-store ``ci-smoke``
sweep is gated against it: the measured seconds must not regress more
than 30% after host-speed calibration (the committed and measured
legacy ci-smoke times estimate the host-speed ratio, so the gate
survives slower or faster CI hardware).
"""

import json
import os
import platform
import sys
from pathlib import Path

from legacy_sweep import run_pr4_sweep, timed_child_run
from repro.pipeline.tracegen import cached_trace
from repro.scenarios import ResultsStore, load_spec, run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
SAB_SPEC = REPO_ROOT / "examples" / "scenarios" / "sab-ablation.yaml"
SMOKE_SPEC = REPO_ROOT / "examples" / "scenarios" / "ci-smoke.yaml"

#: Worker count of the acceptance measurement.
JOBS = 4

#: Timed rounds per plane (best-of; shared runners are noisy).
ROUNDS = 2

#: CI regression gate: measured ci-smoke seconds may exceed the
#: host-calibrated checked-in baseline by at most this factor.
CI_SMOKE_REGRESSION_LIMIT = 1.3


def _bench_out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        path = Path(override)
        path.parent.mkdir(parents=True, exist_ok=True)
        return path
    return REPO_ROOT / "BENCH_5.json"


def _record_content(out_dir: Path):
    """The results store's records as comparable content (hash-keyed;
    the kernel/point/metrics fields must match bit for bit)."""
    content = {}
    for record in ResultsStore(out_dir).load().values():
        content[record["hash"]] = (
            record["label"], record["kernel"],
            json.dumps(record["point"], sort_keys=True),
            json.dumps(record["metrics"], sort_keys=True),
        )
    return content


def _warm_store(spec) -> None:
    """Ensure every trace of ``spec`` is in the on-disk store."""
    for point in spec.points():
        cached_trace(point.workload, point.instructions, point.seed,
                     point.core)


def _best_of(plane: str, spec_path: Path, tmp: Path, jobs: int,
             store_root: str, rounds: int = ROUNDS):
    best = float("inf")
    points = 0
    for attempt in range(rounds):
        out = tmp / f"{plane}-j{jobs}-{attempt}"
        seconds, points = timed_child_run(plane, str(spec_path), str(out),
                                          jobs, store_root)
        best = min(best, seconds)
    return best, points


def test_sweep_throughput(tmp_path):
    store_root = os.environ["REPRO_TRACE_STORE"]
    spec = load_spec(SAB_SPEC)

    # -- warm the store (traces now; the train-plan sidecars are
    #    populated by the first new-engine pass below) --
    _warm_store(spec)

    # -- bit-identity gate: both planes, full sweep, compared
    #    record for record before any timing is trusted --
    new_out = tmp_path / "identity-new"
    run_sweep(spec, new_out, jobs=1, log=lambda line: None)
    pr4_out = tmp_path / "identity-pr4"
    run_pr4_sweep(spec, pr4_out, jobs=1)
    new_records = _record_content(new_out)
    pr4_records = _record_content(pr4_out)
    assert set(new_records) == set(pr4_records)
    mismatched = [digest for digest in new_records
                  if new_records[digest] != pr4_records[digest]]
    assert not mismatched, f"{len(mismatched)} records differ"

    # -- acceptance measurement: warm store, cold child processes --
    pr4_seconds, pr4_points = _best_of("pr4", SAB_SPEC, tmp_path, JOBS,
                                       store_root)
    new_seconds, new_points = _best_of("new", SAB_SPEC, tmp_path, JOBS,
                                       store_root)
    assert pr4_points == new_points == len(spec.points())
    speedup = pr4_seconds / new_seconds

    pr4_serial, _ = _best_of("pr4", SAB_SPEC, tmp_path, 1, store_root)
    new_serial, _ = _best_of("new", SAB_SPEC, tmp_path, 1, store_root)

    # -- ci-smoke sweep: the (tiny) CI regression probe --
    smoke_spec = load_spec(SMOKE_SPEC)
    _warm_store(smoke_spec)
    smoke_pr4, _ = _best_of("pr4", SMOKE_SPEC, tmp_path, 2, store_root)
    smoke_new, _ = _best_of("new", SMOKE_SPEC, tmp_path, 2, store_root)

    record = {
        "benchmark": "sweep-scale execution engine (warm-store sweeps)",
        "scenario": "examples/scenarios/sab-ablation.yaml",
        "points": new_points,
        "trace_groups": 12,
        "jobs": JOBS,
        "sab_ablation": {
            "pr4_runner_jobs4_seconds": round(pr4_seconds, 2),
            "new_engine_jobs4_seconds": round(new_seconds, 2),
            "speedup_jobs4": round(speedup, 2),
            "pr4_runner_serial_seconds": round(pr4_serial, 2),
            "new_engine_serial_seconds": round(new_serial, 2),
            "speedup_serial": round(pr4_serial / new_serial, 2),
        },
        "ci_smoke_sweep": {
            "scenario": "examples/scenarios/ci-smoke.yaml",
            "pr4_runner_seconds": round(smoke_pr4, 3),
            "new_engine_seconds": round(smoke_new, 3),
            "speedup": round(smoke_pr4 / smoke_new, 2),
        },
        "results_identical": True,
        "noise_note": ("single-run wall clock; repeated full runs on the "
                       "reference 1-CPU container measured 1.9x-2.1x for "
                       "speedup_jobs4 (median ~2.0x)"),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
    }
    _bench_out_path().write_text(json.dumps(record, indent=2) + "\n")

    print(f"\nsab-ablation sweep (jobs={JOBS}): PR4 {pr4_seconds:.1f}s | "
          f"new {new_seconds:.1f}s | {speedup:.2f}x "
          f"(serial: {pr4_serial:.1f}s -> {new_serial:.1f}s, "
          f"{pr4_serial / new_serial:.2f}x)")
    print(f"ci-smoke sweep: PR4 {smoke_pr4:.2f}s | new {smoke_new:.2f}s")

    # The acceptance target (>=2x) is judged on the quiet-machine
    # measurement committed in BENCH_5.json; the in-test floor is a
    # loose regression tripwire only — shared CI runners swing
    # wall-clock ratios by tens of percent between the timed phases.
    assert speedup >= 1.2, record["sab_ablation"]

    # -- checked-in baseline gate (the CI perf-smoke job sets
    #    REPRO_BENCH_BASELINE to the committed BENCH_5.json) --
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if baseline_path:
        baseline = json.loads(Path(baseline_path).read_text())
        committed = baseline["ci_smoke_sweep"]
        # Host-speed calibration: the legacy runner is identical code
        # in both measurements, so its ratio estimates host speed.
        # The *sab* legacy time is used (tens of seconds — noise-proof);
        # the smoke legacy time is milliseconds and would miscalibrate.
        host_scale = (pr4_seconds
                      / baseline["sab_ablation"]["pr4_runner_jobs4_seconds"])
        budget = (committed["new_engine_seconds"] * host_scale
                  * CI_SMOKE_REGRESSION_LIMIT)
        assert smoke_new <= budget, (
            f"warm-store ci-smoke sweep regressed: {smoke_new:.3f}s vs "
            f"budget {budget:.3f}s (committed "
            f"{committed['new_engine_seconds']}s, host scale "
            f"{host_scale:.2f}, limit {CI_SMOKE_REGRESSION_LIMIT}x)")
