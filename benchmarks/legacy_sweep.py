"""The PR 4 sweep runner, frozen for benchmarking.

``BENCH_5.json``'s headline claim is "the sweep-scale execution engine
runs the warm-store ``sab-ablation`` sweep ≥2x faster than the PR 4
runner on the same host".  The replaced runner cannot be timed from git
history inside a test run, so this module preserves its execution
machinery verbatim:

* one task per (trace, warmup) group — no lane sharding, no cost-aware
  ordering (tasks run in first-seen group order);
* a **fresh** ``multiprocessing.Pool`` per ``parallel_imap`` call, with
  no worker initializer (the PR 4 fan-out);
* no baseline-memo sidecar: every group recomputes its baselines;
* the PR 4 engine: the PIF lanes take the hook-driven
  ``_walk_lane_inline2`` walker (``on_demand_access_into`` +
  ``on_retire`` calls per access, spatial/temporal compaction per
  lane), which :func:`pr4_engine` restores by removing PIF from the
  fast kernel's fused-walker table;
* ``REPRO_TRACE_MMAP=off`` in the child process, so trace loads copy
  instead of mapping.  (Archives in the shared store are v3/flat, which
  plain-loads *faster* than PR 4's compressed v2 — a deliberate
  conservative bias in the legacy plane's favour.)

The benchmark asserts the legacy runner produces **record-for-record
identical** results stores before trusting the timing, so this module
doubles as an end-to-end differential oracle for the new engine.

Timing runs execute in *spawned* child processes
(:func:`timed_child_run`) so neither plane inherits the parent's warm
in-process caches (decoded columns, train plans, baseline memo) — each
measurement sees exactly the on-disk "warm store, cold process" state a
fresh ``repro sweep run`` invocation would.  It is benchmark
scaffolding: nothing under ``src/`` may import it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.common.config import CacheConfig, SystemConfig
from repro.core.pif import ProactiveInstructionFetch
from repro.pipeline.tracegen import cached_trace
from repro.scenarios.engines import build_engine
from repro.scenarios.results import ResultsStore, current_generator
from repro.scenarios.runner import missing_points
from repro.scenarios.spec import ScenarioSpec, SweepPoint, load_spec
from repro.sim import engine as engine_module
from repro.sim.engine import resolve_kernel, run_multi_prefetch_simulation
from repro.sim.timing import run_timing_simulation


@contextmanager
def pr4_engine():
    """Run with the PR 4 fast kernel: PIF falls back to the hook-driven
    inline walker (no fused predict side, no train plan).  Pool workers
    forked inside this context inherit the downgraded walker table."""
    removed = engine_module._FUSED_WALKERS.pop(ProactiveInstructionFetch,
                                               None)
    try:
        yield
    finally:
        if removed is not None:
            engine_module._FUSED_WALKERS[ProactiveInstructionFetch] = removed


class _LegacyGroupTask(NamedTuple):
    """PR 4's group task: all lanes of one (trace, warmup) group."""

    workload: str
    instructions: int
    seed: int
    core: int
    warmup: float
    kernel: Optional[str]
    lanes: Tuple[Tuple[str, SweepPoint], ...]


def _cache_config(point: SweepPoint) -> CacheConfig:
    return CacheConfig(capacity_bytes=point.capacity_bytes,
                       associativity=point.associativity,
                       block_bytes=point.block_bytes,
                       replacement=point.replacement)


def _legacy_run_group(task: _LegacyGroupTask) -> List[Dict[str, Any]]:
    """PR 4's worker body, verbatim in behaviour: one multi-lane walk,
    baselines computed in-group, records returned."""
    from dataclasses import replace

    bundle = cached_trace(task.workload, task.instructions, task.seed,
                          task.core).bundle
    engines = [build_engine(point.engine, dict(point.params),
                            point.block_bytes)
               for _, point in task.lanes]
    configs = [_cache_config(point) for _, point in task.lanes]
    sims = run_multi_prefetch_simulation(
        bundle, engines, cache_configs=configs,
        warmup_fraction=task.warmup, kernel=task.kernel)

    timing_baselines: Dict[CacheConfig, float] = {}
    generator = current_generator()
    kernel = resolve_kernel(task.kernel)
    records: List[Dict[str, Any]] = []
    for (digest, point), config, sim in zip(task.lanes, configs, sims):
        metrics: Dict[str, Any] = {
            "baseline_misses": sim.baseline_misses,
            "remaining_misses": sim.remaining_misses,
            "coverage": sim.coverage(),
            "prefetches_issued": sim.prefetches_issued,
            "baseline_mpki": sim.baseline_mpki(),
            "remaining_mpki": (
                1000.0 * sim.remaining_misses / sim.instructions
                if sim.instructions else 0.0),
        }
        if point.timing:
            system = replace(SystemConfig(), l1i=config)
            base_uipc = timing_baselines.get(config)
            if base_uipc is None:
                base_uipc = run_timing_simulation(
                    bundle, None, system, task.warmup,
                    kernel=task.kernel).uipc()
                timing_baselines[config] = base_uipc
            timed = run_timing_simulation(
                bundle, build_engine(point.engine, dict(point.params),
                                     point.block_bytes),
                system, task.warmup, kernel=task.kernel)
            metrics["uipc"] = timed.uipc()
            metrics["speedup"] = (timed.uipc() / base_uipc
                                  if base_uipc else 0.0)
        records.append({
            "hash": digest,
            "label": point.label,
            "generator": generator,
            "kernel": kernel,
            "point": point.identity(),
            "metrics": metrics,
        })
    return records


def _legacy_group_tasks(pending, kernel) -> List[_LegacyGroupTask]:
    groups: Dict[Tuple[str, int, int, int, float], List] = {}
    for digest, point in pending:
        key = (point.workload, point.instructions, point.seed, point.core,
               point.warmup)
        groups.setdefault(key, []).append((digest, point))
    return [
        _LegacyGroupTask(workload=key[0], instructions=key[1], seed=key[2],
                         core=key[3], warmup=key[4], kernel=kernel,
                         lanes=tuple(lanes))
        for key, lanes in groups.items()
    ]


def _legacy_run_indexed(task):
    func, index, item = task
    return index, func(item)


def _legacy_parallel_imap(func, items, jobs: int):
    """PR 4's incremental map: a fresh pool per call, no initializer.

    The pool is forked explicitly: PR 4 ran on the Linux default (fork),
    and fork is also what propagates :func:`pr4_engine`'s downgraded
    walker table into the workers (a spawn pool would re-import the
    engine and silently time the *fused* walker).
    """
    if jobs == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            yield index, func(item)
        return
    tagged = [(func, index, item) for index, item in enumerate(items)]
    with multiprocessing.get_context("fork").Pool(processes=jobs) as pool:
        yield from pool.imap_unordered(_legacy_run_indexed, tagged,
                                       chunksize=1)


def run_pr4_sweep(spec: ScenarioSpec, out, jobs: int = 1) -> int:
    """PR 4's ``run_sweep``: resume check, group batching, per-call
    pool fan-out, per-group checkpointing.  Returns points computed."""
    with pr4_engine():
        store = ResultsStore(out)
        store.write_scenario(spec.source)
        pending, _ = missing_points(spec, store)
        tasks = _legacy_group_tasks(pending, None)
        computed = 0
        for _, (index, records) in enumerate(
                _legacy_parallel_imap(_legacy_run_group, tasks, jobs=jobs)):
            store.append_all(records)
            computed += len(records)
    return computed


# ---------------------------------------------------------------------------
# Child-process timing harness (spawned: cold in-process caches).


def _child_time_sweep(queue, plane: str, spec_path: str, out: str,
                      jobs: int, store_root: str) -> None:
    """Entry point for one timed measurement in a spawned child."""
    # A spawn-created child would itself default to spawn for nested
    # pools; real CLI runs on Linux fork.  Pin fork so both planes fan
    # out exactly the way `repro sweep run --jobs N` does.
    multiprocessing.set_start_method("fork", force=True)
    os.environ["REPRO_TRACE_STORE"] = store_root
    if plane == "pr4":
        os.environ["REPRO_TRACE_MMAP"] = "off"
    spec = load_spec(spec_path)
    started = time.perf_counter()
    if plane == "pr4":
        computed = run_pr4_sweep(spec, out, jobs=jobs)
    else:
        from repro.scenarios import run_sweep

        computed = run_sweep(spec, out, jobs=jobs,
                             log=lambda line: None).computed
    queue.put((time.perf_counter() - started, computed))


def timed_child_run(plane: str, spec_path: str, out: str, jobs: int,
                    store_root: str) -> Tuple[float, int]:
    """Run one sweep in a spawned child; returns (seconds, points).

    ``plane`` is ``"pr4"`` (frozen legacy runner + engine) or ``"new"``
    (the current sweep-scale execution engine).
    """
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    process = context.Process(
        target=_child_time_sweep,
        args=(queue, plane, spec_path, out, jobs, store_root))
    process.start()
    try:
        result = queue.get(timeout=1800)
    except Exception:
        process.terminate()
        raise RuntimeError(f"timed child for plane {plane!r} produced "
                           "no result") from None
    process.join()
    if process.exitcode != 0:
        raise RuntimeError(f"timed child for plane {plane!r} exited "
                           f"with {process.exitcode}")
    return result
