"""Figure 7: jump distance in history, weighted by correct predictions.

Shows why the history buffer must be deep: streams re-entered from far
back in the history contribute as many correct predictions as recent
ones, so a short history would forfeit much of the coverage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.coverage import build_view_events, measure_pif_predictability
from .common import (
    ExperimentConfig,
    cumulative,
    format_table,
    normalize_histogram,
    traces_for,
)
from .parallel import ExperimentPool, run_workload_grid


@dataclass(slots=True)
class Fig7Result:
    """Per-workload weighted jump-distance CDF over log2 bins."""

    config: ExperimentConfig
    #: {workload: {log2 bin: cumulative weighted fraction}}
    cdf: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def median_bin(self, workload: str) -> int:
        """The log2 bin where the weighted CDF crosses 50 %."""
        for bin_, value in sorted(self.cdf[workload].items()):
            if value >= 0.5:
                return bin_
        return max(self.cdf[workload], default=0)

    def deep_fraction(self, workload: str, threshold_bin: int = 10) -> float:
        """Weighted fraction of predictions from jumps >= 2^threshold."""
        cdf = self.cdf[workload]
        below = 0.0
        for bin_, value in sorted(cdf.items()):
            if bin_ >= threshold_bin:
                break
            below = value
        return 1.0 - below

    def to_table(self) -> str:
        """The CDF as an ASCII table over log2 bins."""
        bins = sorted({b for cdf in self.cdf.values() for b in cdf})
        headers = ["workload"] + [f"2^{b}" for b in bins]
        rows: List[List[str]] = []
        for workload, cdf in self.cdf.items():
            row = [workload]
            running = 0.0
            for bin_ in bins:
                if bin_ in cdf:
                    running = cdf[bin_]
                row.append(f"{100 * running:4.0f}%")
            rows.append(row)
        return format_table(
            headers, rows,
            title="Figure 7: weighted jump distance in history (CDF)")


def _fig7_workload(config: ExperimentConfig, workload: str
                   ) -> Dict[int, float]:
    """One workload's weighted jump-distance CDF."""
    merged: Counter = Counter()
    for trace in traces_for(config, workload):
        views = build_view_events(trace.bundle, config.cache)
        oracle = measure_pif_predictability(
            trace.bundle, history_entries=1 << 22,
            cache_config=config.cache, view_events=views,
            warmup_fraction=config.warmup_fraction)
        merged.update(oracle.jump_histogram)
    return cumulative(normalize_histogram(dict(merged)))


def run_fig7(config: ExperimentConfig,
             pool: Optional[ExperimentPool] = None) -> Fig7Result:
    """Run the jump-distance study (region-granularity history)."""
    result = Fig7Result(config=config)
    for workload, cdf in run_workload_grid(_fig7_workload, config, pool):
        result.cdf[workload] = cdf
    return result
