"""Run every paper experiment and print the tables.

Usage::

    python -m repro.experiments [--quick] [--instructions N] [--cores N]

This is the reproduction's equivalent of the paper's full evaluation
pass; EXPERIMENTS.md records a captured run next to the paper's numbers.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List

from .ablations import run_all_ablations
from .common import ExperimentConfig, QUICK_CONFIG
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig7 import run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .fig10 import run_fig10


def run_all(config: ExperimentConfig, include_ablations: bool = True,
            stream=None) -> List[object]:
    """Run every experiment, printing each table as it completes."""
    out = stream if stream is not None else sys.stdout
    results: List[object] = []

    def emit(result) -> None:
        results.append(result)
        print(result.to_table(), file=out)
        print(file=out)

    started = time.time()
    for runner in (run_fig2, run_fig3, run_fig7, run_fig8, run_fig9,
                   run_fig10):
        step_start = time.time()
        emit(runner(config))
        print(f"[{runner.__name__} took {time.time() - step_start:.1f}s]\n",
              file=out)
    if include_ablations:
        for ablation in run_all_ablations(config):
            emit(ablation)
    print(f"Total: {time.time() - started:.1f}s", file=out)
    return results


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Reproduce every figure of 'Proactive Instruction Fetch'")
    parser.add_argument("--quick", action="store_true",
                        help="small traces for a fast smoke run")
    parser.add_argument("--instructions", type=int, default=None,
                        help="trace length per core")
    parser.add_argument("--cores", type=int, default=None,
                        help="cores (independent traces) per workload")
    parser.add_argument("--seed", type=int, default=None, help="root seed")
    parser.add_argument("--no-ablations", action="store_true",
                        help="skip the ablation sweeps")
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else ExperimentConfig()
    overrides = {}
    if args.instructions is not None:
        overrides["instructions"] = args.instructions
    if args.cores is not None:
        overrides["cores"] = args.cores
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = replace(config, **overrides)

    run_all(config, include_ablations=not args.no_ablations)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
