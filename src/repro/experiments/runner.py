"""Run every paper experiment and print the tables.

Usage::

    python -m repro.experiments [--quick] [--instructions N] [--cores N]
                                [--jobs N] [--figures fig2,fig10]

This is the reproduction's equivalent of the paper's full evaluation
pass; DESIGN.md records how its half-scale regime maps onto the paper's.

``--jobs N`` fans the per-workload experiment slices out over N worker
processes (see :mod:`repro.experiments.parallel`).  Result tables are
bit-identical for any job count — only wall-clock changes — because
slices are deterministic and collected in workload order.  Progress and
timing lines go to stderr so stdout stays a clean, diffable table
stream.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional, TextIO

from ..common.profiling import collecting
from .ablations import run_all_ablations
from .common import ExperimentConfig, QUICK_CONFIG
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig7 import run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .fig10 import run_fig10
from .parallel import ExperimentPool, jobs_argument_type

#: argparse type for ``--jobs``: positive integer or ``auto``.
_jobs_value = jobs_argument_type

#: Figure name -> runner, in the paper's presentation order.
FIGURE_RUNNERS = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
}


def run_all(config: ExperimentConfig, include_ablations: bool = True,
            stream: Optional[TextIO] = None, jobs: int = 1,
            figures: Optional[List[str]] = None,
            profile: bool = False) -> List[object]:
    """Run every experiment, printing each table as it completes.

    ``figures`` restricts the run to a subset of :data:`FIGURE_RUNNERS`
    names (presentation order is preserved regardless of input order);
    unknown names raise ValueError rather than silently running
    nothing.  A figure subset also skips the ablation sweeps — they are
    not figures, and would dominate the wall-clock of the single-figure
    smoke runs the parameter exists for.

    ``profile`` prints, after each figure's timing line, the per-stage
    wall-clock breakdown (trace load / baseline replay / lane walk /
    timing walk) collected by :mod:`repro.common.profiling` — enough to
    spot a hot-path regression without running the benchmark suite.
    Stage collection is process-local, so with ``jobs > 1`` the stages
    executed inside worker processes are not attributed.
    """
    out = stream if stream is not None else sys.stdout
    results: List[object] = []
    if figures is None:
        selected = list(FIGURE_RUNNERS)
    else:
        unknown = sorted(set(figures) - set(FIGURE_RUNNERS))
        if unknown or not figures:
            raise ValueError(f"figures must name at least one of "
                             f"{list(FIGURE_RUNNERS)}; got {sorted(figures)}")
        selected = [name for name in FIGURE_RUNNERS if name in set(figures)]
        include_ablations = False

    def emit(result) -> None:
        results.append(result)
        print(result.to_table(), file=out)
        print(file=out)

    if profile and jobs > 1:
        print("[--profile] note: stage timers cover the parent process "
              f"only; --jobs {jobs} runs slices in workers whose stages "
              "are not attributed", file=sys.stderr)

    def run_step(label: str, step) -> None:
        step_start = time.time()
        if profile:
            with collecting() as stages:
                emit(step())
            print(f"[{label} took {time.time() - step_start:.1f}s]",
                  file=sys.stderr)
            print(stages.format_table(indent="    "), file=sys.stderr)
        else:
            emit(step())
            print(f"[{label} took {time.time() - step_start:.1f}s]",
                  file=sys.stderr)

    started = time.time()
    with ExperimentPool(jobs=jobs) as pool:
        for name in selected:
            runner = FIGURE_RUNNERS[name]
            run_step(runner.__name__,
                     lambda runner=runner: runner(config, pool=pool))
        if include_ablations:
            for ablation in run_all_ablations(config, pool=pool):
                emit(ablation)
    print(f"Total: {time.time() - started:.1f}s", file=sys.stderr)
    return results


def build_parser() -> argparse.ArgumentParser:
    """The runner's argument parser (exposed for tests and the README
    docs check)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce every figure of 'Proactive Instruction Fetch'")
    parser.add_argument("--quick", action="store_true",
                        help="small traces for a fast smoke run")
    parser.add_argument("--instructions", type=int, default=None,
                        help="trace length per core")
    parser.add_argument("--cores", type=int, default=None,
                        help="cores (independent traces) per workload")
    parser.add_argument("--seed", type=int, default=None, help="root seed")
    parser.add_argument("--jobs", type=_jobs_value, default=1,
                        help="worker processes for the per-workload fan-out, "
                             "or 'auto' for all CPUs but one (tables are "
                             "identical for any value)")
    parser.add_argument("--no-ablations", action="store_true",
                        help="skip the ablation sweeps")
    parser.add_argument("--figures", default=None,
                        help="comma-separated subset of figures to run "
                             f"(choices: {','.join(FIGURE_RUNNERS)}); "
                             "implies --no-ablations")
    parser.add_argument("--profile", action="store_true",
                        help="print per-figure, per-stage wall-clock "
                             "(trace load / baseline / lane walk / timing "
                             "walk) to stderr")
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.jobs <= 0:
        parser.error("--jobs must be positive")
    figures = None
    if args.figures is not None:
        figures = [name.strip() for name in args.figures.split(",")
                   if name.strip()]
    config = QUICK_CONFIG if args.quick else ExperimentConfig()
    overrides = {}
    if args.instructions is not None:
        overrides["instructions"] = args.instructions
    if args.cores is not None:
        overrides["cores"] = args.cores
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = replace(config, **overrides)

    try:
        run_all(config, include_ablations=not args.no_ablations,
                jobs=args.jobs, figures=figures, profile=args.profile)
    except ValueError as error:
        parser.error(str(error))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
