"""Figure 2: percentage of correctly predicted correct-path L1-I misses
when recording temporal streams at four observation points.

The paper's headline motivation: predictability climbs monotonically as
microarchitectural noise sources are removed — Miss (cache-filtered) <
Access (wrong-path noise) < Retire (clean) < RetireSep (trap levels
separated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.coverage import build_view_events, measure_stream_predictability
from ..trace.records import StreamKind
from .common import (
    ExperimentConfig,
    format_table,
    mean,
    percent,
    traces_for,
)
from .parallel import ExperimentPool, run_workload_grid


@dataclass(slots=True)
class Fig2Result:
    """Coverage per workload per observation point."""

    config: ExperimentConfig
    #: {workload: {stream kind: coverage}}
    coverage: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def ordering_holds(self, workload: str, tolerance: float = 0.0) -> bool:
        """True if Miss <= Access <= Retire <= RetireSep (within tolerance)."""
        row = self.coverage[workload]
        chain = [row[StreamKind.MISS], row[StreamKind.ACCESS],
                 row[StreamKind.RETIRE], row[StreamKind.RETIRE_SEP]]
        return all(later >= earlier - tolerance
                   for earlier, later in zip(chain, chain[1:]))

    def to_table(self) -> str:
        """The figure as an ASCII table."""
        headers = ["workload", "Miss", "Access", "Retire", "RetireSep"]
        rows: List[List[str]] = []
        for workload, row in self.coverage.items():
            rows.append([
                workload,
                percent(row[StreamKind.MISS]),
                percent(row[StreamKind.ACCESS]),
                percent(row[StreamKind.RETIRE]),
                percent(row[StreamKind.RETIRE_SEP]),
            ])
        return format_table(
            headers, rows,
            title="Figure 2: correctly predicted correct-path L1-I misses")


def _fig2_workload(config: ExperimentConfig, workload: str
                   ) -> Dict[str, float]:
    """One workload's Figure 2 row (the per-workload parallel slice)."""
    per_kind: Dict[str, List[float]] = {kind: [] for kind in StreamKind.ALL}
    for trace in traces_for(config, workload):
        views = build_view_events(trace.bundle, config.cache)
        for kind in StreamKind.ALL:
            oracle = measure_stream_predictability(
                trace.bundle, kind, cache_config=config.cache,
                view_events=views,
                warmup_fraction=config.warmup_fraction)
            per_kind[kind].append(oracle.coverage())
    return {kind: mean(values) for kind, values in per_kind.items()}


def run_fig2(config: ExperimentConfig,
             pool: Optional[ExperimentPool] = None) -> Fig2Result:
    """Run the Figure 2 study over the configured workloads and cores."""
    result = Fig2Result(config=config)
    for workload, row in run_workload_grid(_fig2_workload, config, pool):
        result.coverage[workload] = row
    return result
