"""Shared configuration and helpers for the figure experiments.

Scale note (also in DESIGN.md): the paper simulates 64 KB L1-I caches
against multi-megabyte commercial binaries with billion-instruction
traces.  The reproduction runs the same regime at roughly half scale —
a 32 KB L1-I against synthetic workloads with a few-hundred-KB touched
footprint and million-instruction traces — preserving the
footprint-to-cache ratio that produces server-like miss behaviour while
staying laptop-fast in pure Python.  The SAB window is re-tuned to this
cache scale (3 regions; the paper's empirical optimum for its scale was
7 — see the ablation bench, which reproduces that tuning curve).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..common.config import CacheConfig, PIFConfig
from ..pipeline.tracegen import GeneratedTrace, cached_trace
from ..workloads.spec import WORKLOAD_NAMES

#: The half-scale experiment cache (see module docstring).
EXPERIMENT_CACHE = CacheConfig(capacity_bytes=32 * 1024, associativity=2,
                               block_bytes=64)

#: PIF operating point at experiment scale: paper parameters except the
#: SAB window, re-tuned for the smaller cache.
EXPERIMENT_PIF = PIFConfig(sab_count=4, sab_window_regions=3)


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Everything an experiment needs to be reproducible."""

    instructions: int = 1_600_000
    seed: int = 42
    cores: int = 2
    warmup_fraction: float = 0.4
    workloads: Tuple[str, ...] = WORKLOAD_NAMES
    cache: CacheConfig = field(default_factory=lambda: EXPERIMENT_CACHE)
    pif: PIFConfig = field(default_factory=lambda: EXPERIMENT_PIF)

    def scaled(self, factor: float) -> ExperimentConfig:
        """A copy with the trace length scaled (for quick/bench modes)."""
        from dataclasses import replace

        return replace(self,
                       instructions=max(50_000, int(self.instructions * factor)))


#: A configuration small enough for CI smoke runs of every experiment.
QUICK_CONFIG = ExperimentConfig(instructions=300_000, cores=1)


def traces_for(config: ExperimentConfig, workload: str
               ) -> List[GeneratedTrace]:
    """The per-core traces of one workload under ``config``.

    Backed by the trace-bundle cache
    (:func:`repro.pipeline.tracegen.cached_trace`): each
    (workload, instructions, seed, core) tuple is generated once per
    process and shared by every figure and sweep point that replays it.
    Under the :class:`~repro.experiments.parallel.ExperimentPool`
    fan-out the pool's worker processes persist across experiments, so
    the same reuse holds there — a worker regenerates a trace at most
    once, no matter how many figures it serves.
    """
    return [cached_trace(workload, config.instructions, config.seed, core)
            for core in range(config.cores)]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Render an aligned ASCII table, the experiments' output format."""
    widths = [len(h) for h in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a fraction as a percentage cell."""
    return f"{100.0 * value:5.1f}%"


def normalize_histogram(histogram: Dict[int, int]) -> Dict[int, float]:
    """Scale integer bins to fractions of the total."""
    total = sum(histogram.values())
    if total == 0:
        return {bin_: 0.0 for bin_ in histogram}
    return {bin_: count / total for bin_, count in histogram.items()}


def cumulative(histogram: Dict[int, float]) -> Dict[int, float]:
    """Running sum over sorted bins (CDF form used by Figures 7 and 9)."""
    running = 0.0
    result: Dict[int, float] = {}
    for bin_ in sorted(histogram):
        running += histogram[bin_]
        result[bin_] = running
    return result
