"""Figure 3: spatial-region density (left) and discontinuous accesses
within regions (right).

These two distributions justify the PIF record format: >50 % of regions
touch more than one block (compaction pays), and roughly a fifth are
internally discontinuous (a bit vector is needed, plain next-N-lines
over-fetches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.regionstats import (
    DENSITY_BUCKETS,
    GROUP_BUCKETS,
    density_distribution,
    discontinuity_distribution,
    merge_distributions,
)
from .common import ExperimentConfig, format_table, percent, traces_for
from .parallel import ExperimentPool, run_workload_grid


@dataclass(slots=True)
class Fig3Result:
    """Per-workload density and discontinuity bucket distributions."""

    config: ExperimentConfig
    density: Dict[str, Dict[str, float]] = field(default_factory=dict)
    discontinuity: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def multi_block_fraction(self, workload: str) -> float:
        """Fraction of regions with more than one accessed block."""
        return 1.0 - self.density[workload].get("1", 0.0)

    def discontinuous_fraction(self, workload: str) -> float:
        """Fraction of regions with more than one contiguous group."""
        return 1.0 - self.discontinuity[workload].get("1", 0.0)

    def to_table(self) -> str:
        """Both panels as ASCII tables."""
        density_headers = ["workload"] + [b[0] for b in DENSITY_BUCKETS]
        density_rows = [
            [workload] + [percent(self.density[workload].get(b[0], 0.0))
                          for b in DENSITY_BUCKETS]
            for workload in self.density
        ]
        group_headers = ["workload"] + [b[0] for b in GROUP_BUCKETS]
        group_rows = [
            [workload] + [percent(self.discontinuity[workload].get(b[0], 0.0))
                          for b in GROUP_BUCKETS]
            for workload in self.discontinuity
        ]
        left = format_table(density_headers, density_rows,
                            title="Figure 3 (left): blocks accessed per spatial region")
        right = format_table(group_headers, group_rows,
                             title="Figure 3 (right): contiguous groups per spatial region")
        return left + "\n\n" + right


def _fig3_workload(config: ExperimentConfig, workload: str
                   ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """One workload's (density, discontinuity) distributions."""
    densities: List[Dict[str, float]] = []
    groups: List[Dict[str, float]] = []
    for trace in traces_for(config, workload):
        retires = trace.bundle.retires
        densities.append(density_distribution(retires))
        groups.append(discontinuity_distribution(retires))
    return merge_distributions(densities), merge_distributions(groups)


def run_fig3(config: ExperimentConfig,
             pool: Optional[ExperimentPool] = None) -> Fig3Result:
    """Run the Figure 3 characterization over the configured workloads."""
    result = Fig3Result(config=config)
    for workload, (density, groups) in run_workload_grid(
            _fig3_workload, config, pool):
        result.density[workload] = density
        result.discontinuity[workload] = groups
    return result
