"""``python -m repro.experiments`` runs the full evaluation."""

from .runner import main

raise SystemExit(main())
