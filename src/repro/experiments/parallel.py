"""Process-level fan-out for the experiment grid.

Every figure experiment decomposes into independent per-workload slices
(one slice = everything one workload contributes to one figure), so the
natural parallel unit is the (workload × config) grid.  This module
provides:

* :class:`ExperimentPool` — an ordered map over a figure's per-workload
  slice function, backed by a persistent :mod:`multiprocessing` pool
  when ``jobs > 1`` and plain serial iteration otherwise.  The pool
  lives for a whole evaluation run, so each worker process generates a
  workload's trace bundle at most once (via the
  :func:`repro.pipeline.tracegen.cached_trace` trace-bundle cache) and
  reuses it across every figure and sweep point it is handed.
* :func:`parallel_map` — a generic ordered process map for callers that
  are not shaped around :class:`ExperimentConfig` (the CLI's compare
  matrix).
* :func:`parallel_imap` — the incremental variant: results are yielded
  as tasks complete (completion order), so callers that checkpoint
  progress to disk — the scenario sweep runner persisting each finished
  point — lose at most the in-flight tasks on interruption instead of
  the whole batch.

Determinism: results are collected in submission order, and every
:class:`ExperimentPool` grid task carries a
:func:`repro.common.rng.child_seed`-derived seed that is installed into
the worker's global ``random`` state before the slice runs, so tables
are bit-identical between ``--jobs 1`` and ``--jobs N`` regardless of
how tasks land on workers.  :func:`parallel_map` does no such seeding —
its callers must pass functions that are deterministic on their own.
"""

from __future__ import annotations

import multiprocessing
import random
from typing import (Any, Callable, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple)

from ..common.rng import child_seed

#: Slice function signature: (config, workload) -> picklable payload.
WorkloadSlice = Callable[[Any, str], Any]


class _TaskSpec(NamedTuple):
    """One grid cell: a slice function applied to one workload."""

    func: WorkloadSlice
    config: Any
    workload: str
    seed: int


def _run_task(spec: _TaskSpec) -> Any:
    """Execute one grid cell inside a worker (or inline when serial)."""
    # Pin the global RNG per task, not per worker, so any component that
    # (incorrectly) reaches for module-level randomness still produces
    # placement-independent results.
    random.seed(spec.seed)
    return spec.func(spec.config, spec.workload)


def _task_name(func: WorkloadSlice) -> str:
    return f"{func.__module__}.{getattr(func, '__qualname__', repr(func))}"


class ExperimentPool:
    """Ordered per-workload fan-out shared by every experiment runner.

    ``jobs=1`` (the default) runs slices inline with zero overhead;
    ``jobs>1`` keeps a persistent worker pool whose processes cache
    generated traces across figures.  Use as a context manager::

        with ExperimentPool(jobs=4) as pool:
            fig10 = run_fig10(config, pool=pool)
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        self.jobs = jobs
        self._pool: Optional[multiprocessing.pool.Pool] = None
        if jobs > 1:
            self._pool = multiprocessing.Pool(processes=jobs)

    def map_workloads(self, func: WorkloadSlice, config: Any
                      ) -> List[Tuple[str, Any]]:
        """Apply ``func`` to every workload of ``config``, in order.

        Returns ``[(workload, payload), ...]`` ordered exactly like
        ``config.workloads``, whatever the completion order was.
        """
        name = _task_name(func)
        tasks = [
            _TaskSpec(func, config, workload,
                      child_seed(config.seed, name, workload))
            for workload in config.workloads
        ]
        if self._pool is None:
            payloads = [_run_task(task) for task in tasks]
        else:
            payloads = self._pool.map(_run_task, tasks, chunksize=1)
        return list(zip(config.workloads, payloads))

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ExperimentPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def run_workload_grid(func: WorkloadSlice, config: Any,
                      pool: Optional[ExperimentPool] = None
                      ) -> List[Tuple[str, Any]]:
    """Map ``func`` over ``config.workloads`` through ``pool`` (serial
    when ``pool`` is None) — the one-liner every figure runner uses."""
    if pool is None:
        return ExperimentPool(jobs=1).map_workloads(func, config)
    return pool.map_workloads(func, config)


def parallel_map(func: Callable[[Any], Any], items: Sequence[Any],
                 jobs: int = 1) -> List[Any]:
    """Ordered process map for ad-hoc grids (e.g. the CLI compare rows).

    ``func`` must be picklable (module-level); with ``jobs=1`` this is
    just ``list(map(func, items))``.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with multiprocessing.Pool(processes=jobs) as pool:
        return pool.map(func, items, chunksize=1)


def _run_indexed(task: "Tuple[Callable[[Any], Any], int, Any]"
                 ) -> Tuple[int, Any]:
    """Worker shim for :func:`parallel_imap`: tag results with their
    submission index so callers can reorder if they need to."""
    func, index, item = task
    return index, func(item)


def parallel_imap(func: Callable[[Any], Any], items: Sequence[Any],
                  jobs: int = 1) -> "Iterator[Tuple[int, Any]]":
    """Incremental process map: yields ``(index, result)`` pairs.

    With ``jobs=1`` (or a single item) tasks run inline and results
    arrive in submission order; with ``jobs>1`` they arrive in
    *completion* order, tagged with the submitting index.  Use this when
    each finished task should be checkpointed immediately (the scenario
    sweep runner appends each result to its on-disk store, so a killed
    run resumes from the last completed task rather than the last
    completed batch).  ``func`` must be picklable (module-level).
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if jobs == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            yield index, func(item)
        return
    tagged = [(func, index, item) for index, item in enumerate(items)]
    with multiprocessing.Pool(processes=jobs) as pool:
        yield from pool.imap_unordered(_run_indexed, tagged, chunksize=1)
