"""Process-level fan-out for the experiment grid.

Every figure experiment decomposes into independent per-workload slices
(one slice = everything one workload contributes to one figure), so the
natural parallel unit is the (workload × config) grid.  This module
provides:

* :class:`ExperimentPool` — an ordered map over a figure's per-workload
  slice function, backed by a persistent :mod:`multiprocessing` pool
  when ``jobs > 1`` and plain serial iteration otherwise.  The pool
  lives for a whole evaluation run, so each worker process generates a
  workload's trace bundle at most once (via the
  :func:`repro.pipeline.tracegen.cached_trace` trace-bundle cache) and
  reuses it across every figure and sweep point it is handed.
* :func:`parallel_map` — a generic ordered process map for callers that
  are not shaped around :class:`ExperimentConfig` (the CLI's compare
  matrix).
* :func:`parallel_imap` — the incremental variant: results are yielded
  as tasks complete (completion order), so callers that checkpoint
  progress to disk — the scenario sweep runner persisting each finished
  point — lose at most the in-flight tasks on interruption instead of
  the whole batch.
* :func:`shared_pool` — a *persistent* worker pool
  (``concurrent.futures.ProcessPoolExecutor``) shared across calls:
  :func:`parallel_map` and :func:`parallel_imap` draw workers from it
  instead of spawning a fresh pool per call, so a session running
  several sweeps (or a sweep that resumes repeatedly) pays worker
  start-up and trace warm-up once.  Workers run :func:`_attach_worker`
  at start: the trace-store location, the already-computed
  generator-version hash, and the fault plan (chaos testing; see
  :mod:`repro.faults`) are installed so every worker resolves the same
  archives — and fails in the same injected places — as the parent.
* :func:`resolve_jobs` — the ``--jobs auto`` policy: every CLI that
  fans out accepts ``auto`` and resolves it here (all CPUs but one, at
  least one — leaving a core for the parent keeps the incremental
  checkpoint/append loop responsive).

Worker-death tolerance (the failure model DESIGN.md documents): a
worker that dies mid-task — segfault, OOM kill, injected
``worker.task`` fault — breaks a ``ProcessPoolExecutor``
(``BrokenProcessPool``), unlike ``multiprocessing.Pool`` which hangs.
:func:`parallel_imap` catches the break, salvages every already
completed result, rebuilds the pool with bounded exponential backoff,
and resubmits the unfinished tasks.  After :data:`POOL_REBUILD_LIMIT`
breaks it switches to *isolation mode* — each remaining task runs alone
on a fresh single-worker pool, so the task that breaks its private pool
is deterministically identified as the poison.  What happens to a task
that ultimately fails is the caller's choice via ``task_errors``:
``"raise"`` (default — propagate, :class:`WorkerCrashError` for a dead
worker) or ``"yield"`` (yield a :class:`TaskFailure` in the task's
result slot; the sweep runner's retry/quarantine loop consumes these).

Determinism: results are collected in submission order, and every
:class:`ExperimentPool` grid task carries a
:func:`repro.common.rng.child_seed`-derived seed that is installed into
the worker's global ``random`` state before the slice runs, so tables
are bit-identical between ``--jobs 1`` and ``--jobs N`` regardless of
how tasks land on workers.  :func:`parallel_map` does no such seeding —
its callers must pass functions that are deterministic on their own.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import util as _mp_util
from typing import (Any, Callable, Dict, Iterator, List, NamedTuple,
                    Optional, Sequence, Tuple, Union)

from .. import faults
from ..common.rng import child_seed
from ..trace import store as trace_store

#: Pool rebuilds tolerated per :func:`parallel_imap` call before the
#: remaining tasks fall back to one-task-per-pool isolation mode.
POOL_REBUILD_LIMIT = 2

#: Exponential-backoff shape between pool rebuilds: 0.05s, 0.1s, ...,
#: capped so a crash-looping environment cannot stall a sweep forever.
_BACKOFF_BASE_SECONDS = 0.05
_BACKOFF_CAP_SECONDS = 1.0

#: The deterministic error text recorded for a task whose worker died
#: (crash details — signal, address — vary run to run; records must
#: not).
WORKER_DIED = "worker process died while executing this task"


class TaskFailure(NamedTuple):
    """A failed task's result slot under ``task_errors="yield"``.

    ``kind`` is ``"error"`` (the task raised) or ``"worker-died"``
    (the worker running it vanished); ``error`` is a deterministic
    one-line description suitable for durable records.
    """

    kind: str
    error: str


class WorkerCrashError(RuntimeError):
    """A pool worker died executing a task and ``task_errors="raise"``
    (isolation mode identified the task; retrying it would kill again).
    """


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Resolve a ``--jobs`` value: ``auto``/None become a worker count
    derived from ``os.cpu_count()`` (all CPUs but one, minimum one);
    integers pass through.  Raises ValueError for anything else."""
    if jobs is None:
        return _auto_jobs()
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return _auto_jobs()
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            ) from None
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    return jobs


def _auto_jobs() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


def _attach_worker(store_env: Optional[str], generator_hash: str,
                   fault_env: Optional[str] = None) -> None:
    """Pool-worker initializer: attach to the parent's trace store.

    Propagates the store location (environment variables survive fork
    but not necessarily alternative start methods) and pre-seeds the
    generator-version hash cache, so workers neither re-hash the
    generator sources nor can disagree with the parent about which
    archives are current.  The fault plan rides along the same way, and
    the worker's injection counters are reset — a forked worker must
    arm a fresh plan, not inherit the parent's spent counters.
    """
    if store_env is not None:
        # This IS the sanctioned propagation mechanism: the worker's
        # environment is overwritten with the parent's snapshot before
        # any worker code can read it.
        # reprolint: disable=RL004 - worker-side write of the parent snapshot
        os.environ[trace_store.STORE_ENV] = store_env
    trace_store._generator_hash_cache = generator_hash
    if fault_env is not None:
        # reprolint: disable=RL004 - worker-side write of the parent snapshot
        os.environ[faults.FAULT_PLAN_ENV] = fault_env
    else:
        # reprolint: disable=RL004 - worker-side write of the parent snapshot
        os.environ.pop(faults.FAULT_PLAN_ENV, None)
    faults.reset()


def _initargs() -> Tuple[Optional[str], str, Optional[str]]:
    # Parent-side snapshot that _attach_worker re-applies in every
    # worker; reading the environment here is what makes worker-side
    # reads unnecessary.
    # reprolint: disable=RL004 - sanctioned parent-side snapshot
    return (os.environ.get(trace_store.STORE_ENV),
            trace_store.generator_version_hash(),
            os.environ.get(faults.FAULT_PLAN_ENV))  # reprolint: disable=RL004 - sanctioned parent-side snapshot


_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_jobs: int = 0
_shared_pool_attachment: Optional[Tuple[Optional[str], str,
                                        Optional[str]]] = None
_shared_pool_owner: int = 0


def shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The persistent worker pool for ``jobs`` workers.

    Created on first use and kept alive for the process; every worker
    runs :func:`_attach_worker` once at start.  The pool is re-created
    when a different worker count is requested, when the attachment
    (trace-store location / generator hash / fault plan) no longer
    matches what the workers were initialized with — a caller that
    re-points ``REPRO_TRACE_STORE`` mid-process must never get workers
    still attached to the old store — or when a worker death broke the
    previous pool.  Call :func:`shutdown_shared_pool` to tear it down
    early — an ``atexit`` hook does so at interpreter exit.
    """
    global _shared_pool, _shared_pool_jobs, _shared_pool_attachment, \
        _shared_pool_owner
    if jobs <= 1:
        raise ValueError("shared_pool needs jobs > 1")
    attachment = _initargs()
    if _shared_pool is not None and (
            _shared_pool_jobs != jobs
            or _shared_pool_attachment != attachment
            or getattr(_shared_pool, "_broken", False)):
        shutdown_shared_pool()
    if _shared_pool is None:
        _shared_pool = ProcessPoolExecutor(
            max_workers=jobs, initializer=_attach_worker,
            initargs=attachment)
        _shared_pool_jobs = jobs
        _shared_pool_attachment = attachment
        _shared_pool_owner = os.getpid()
    return _shared_pool


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    """Tear an executor down without waiting for queued work: cancel
    what never started, then terminate and reap the worker processes
    (bounded join — a wedged worker must not hang the parent)."""
    processes = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(5)


def shutdown_shared_pool() -> None:
    """Terminate the persistent pool (idempotent).

    Only the process that created the pool touches the executor; a
    forked child that inherited the globals (a raw ``os.fork``, say)
    just drops its references — terminating the worker processes from
    a non-owner would kill the owner's in-flight tasks.
    """
    global _shared_pool, _shared_pool_jobs, _shared_pool_attachment, \
        _shared_pool_owner
    if _shared_pool is not None:
        executor = _shared_pool
        owner = _shared_pool_owner
        _shared_pool = None
        _shared_pool_jobs = 0
        _shared_pool_attachment = None
        _shared_pool_owner = 0
        if owner == os.getpid():
            _shutdown_executor(executor)


atexit.register(shutdown_shared_pool)
# A multiprocessing *child* process never reaches atexit hooks before
# reaping: Process._bootstrap calls multiprocessing.util._exit_function
# directly, which joins live non-daemon children — and executor workers
# are non-daemon (unlike multiprocessing.Pool's).  A child that ran a
# pooled sweep (a harness timing sweeps in spawned children, say) would
# hang at exit joining workers that are themselves waiting for more
# work.  Registering the shutdown as a multiprocessing finalizer too
# places it in the finalizer pass _exit_function runs *before* that
# join.  (Children never inherit this registration — Process bootstrap
# clears the finalizer registry — so pool workers cannot run it.)
_mp_util.Finalize(None, shutdown_shared_pool, exitpriority=100)


def jobs_argument_type(text: str) -> int:
    """argparse ``type=`` adapter for ``--jobs``: a positive integer or
    ``auto`` (shared by every fan-out CLI so the policy cannot drift)."""
    import argparse

    try:
        return resolve_jobs(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None

#: Slice function signature: (config, workload) -> picklable payload.
WorkloadSlice = Callable[[Any, str], Any]


class _TaskSpec(NamedTuple):
    """One grid cell: a slice function applied to one workload."""

    func: WorkloadSlice
    config: Any
    workload: str
    seed: int


def _run_task(spec: _TaskSpec) -> Any:
    """Execute one grid cell inside a worker (or inline when serial)."""
    # Pin the global RNG per task, not per worker, so any component that
    # (incorrectly) reaches for module-level randomness still produces
    # placement-independent results.
    random.seed(spec.seed)  # reprolint: disable=RL001 - deliberate per-task pinning of the global RNG
    return spec.func(spec.config, spec.workload)


def _task_name(func: WorkloadSlice) -> str:
    return f"{func.__module__}.{getattr(func, '__qualname__', repr(func))}"


class ExperimentPool:
    """Ordered per-workload fan-out shared by every experiment runner.

    ``jobs=1`` (the default) runs slices inline with zero overhead;
    ``jobs>1`` keeps a persistent worker pool whose processes cache
    generated traces across figures.  Use as a context manager::

        with ExperimentPool(jobs=4) as pool:
            fig10 = run_fig10(config, pool=pool)
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        self.jobs = jobs
        self._pool: Optional[multiprocessing.pool.Pool] = None
        if jobs > 1:
            self._pool = multiprocessing.Pool(
                processes=jobs, initializer=_attach_worker,
                initargs=_initargs())

    def map_workloads(self, func: WorkloadSlice, config: Any
                      ) -> List[Tuple[str, Any]]:
        """Apply ``func`` to every workload of ``config``, in order.

        Returns ``[(workload, payload), ...]`` ordered exactly like
        ``config.workloads``, whatever the completion order was.
        """
        name = _task_name(func)
        tasks = [
            _TaskSpec(func, config, workload,
                      child_seed(config.seed, name, workload))
            for workload in config.workloads
        ]
        if self._pool is None:
            payloads = [_run_task(task) for task in tasks]
        else:
            payloads = self._pool.map(_run_task, tasks, chunksize=1)
        return list(zip(config.workloads, payloads))

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> ExperimentPool:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def run_workload_grid(func: WorkloadSlice, config: Any,
                      pool: Optional[ExperimentPool] = None
                      ) -> List[Tuple[str, Any]]:
    """Map ``func`` over ``config.workloads`` through ``pool`` (serial
    when ``pool`` is None) — the one-liner every figure runner uses."""
    if pool is None:
        return ExperimentPool(jobs=1).map_workloads(func, config)
    return pool.map_workloads(func, config)


def parallel_map(func: Callable[[Any], Any], items: Sequence[Any],
                 jobs: int = 1) -> List[Any]:
    """Ordered process map for ad-hoc grids (e.g. the CLI compare rows).

    ``func`` must be picklable (module-level); with ``jobs=1`` this is
    just ``list(map(func, items))``.  With ``jobs>1`` the tasks run on
    the persistent :func:`shared_pool` via :func:`parallel_imap`, so
    worker death is survived the same way (transparent pool rebuild;
    :class:`WorkerCrashError` only for a task that kills every pool it
    is given).
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    results: List[Any] = [None] * len(items)
    for index, result in parallel_imap(func, items, jobs=jobs):
        results[index] = result
    return results


def _run_indexed(task: Tuple[Callable[[Any], Any], int, Any]
                 ) -> Tuple[int, Any]:
    """Worker shim for :func:`parallel_imap`: tag results with their
    submission index so callers can reorder if they need to."""
    func, index, item = task
    return index, func(item)


def parallel_imap(func: Callable[[Any], Any], items: Sequence[Any],
                  jobs: int = 1, *, task_errors: str = "raise"
                  ) -> Iterator[Tuple[int, Any]]:
    """Incremental process map: yields ``(index, result)`` pairs.

    With ``jobs=1`` (or a single item) tasks run inline and results
    arrive in submission order; with ``jobs>1`` they arrive in
    *completion* order, tagged with the submitting index.  Use this when
    each finished task should be checkpointed immediately (the scenario
    sweep runner appends each result to its on-disk store, so a killed
    run resumes from the last completed task rather than the last
    completed batch).  ``func`` must be picklable (module-level).
    With ``jobs>1`` the tasks run on the persistent :func:`shared_pool`
    — repeated calls (sweep after sweep, or a resumed sweep) reuse the
    same attached workers instead of re-spawning.

    Failure contract (``task_errors``): with ``"raise"`` (default) a
    task exception propagates and a task whose worker dies on every
    pool it is given raises :class:`WorkerCrashError`; with ``"yield"``
    the failed task's slot yields a :class:`TaskFailure` instead and
    the remaining tasks keep running — the sweep runner's
    retry/quarantine loop consumes these.  Worker death never loses
    completed results: the broken pool is rebuilt (bounded exponential
    backoff, at most :data:`POOL_REBUILD_LIMIT` times per call) and
    only unfinished tasks are resubmitted; after the limit each
    remaining task runs isolated on its own single-worker pool, which
    identifies the poison task deterministically.

    Early-close contract: ``close()``-ing the iterator before
    exhaustion (what the sweep runner's cooperative-stop hook does on
    graceful shutdown) cancels the not-yet-consumed work — under
    ``jobs>1`` the persistent pool is torn down and the next parallel
    call transparently re-creates it.  Results already yielded are
    unaffected.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if task_errors not in ("raise", "yield"):
        raise ValueError(f"task_errors must be 'raise' or 'yield', "
                         f"got {task_errors!r}")
    if jobs == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            if task_errors == "raise":
                yield index, func(item)
                continue
            try:
                result = func(item)
            except Exception as error:  # reprolint: disable=RL009 - converted to a TaskFailure the caller retries or quarantines
                yield index, TaskFailure(
                    "error", f"{type(error).__name__}: {error}")
            else:
                yield index, result
        return
    yield from _imap_pooled(func, items, jobs, task_errors)


def _imap_pooled(func: Callable[[Any], Any], items: Sequence[Any],
                 jobs: int, task_errors: str
                 ) -> Iterator[Tuple[int, Any]]:
    """The ``jobs > 1`` body of :func:`parallel_imap` (see its
    docstring for the failure and early-close contracts)."""
    pending: Dict[int, Any] = dict(enumerate(items))
    breaks = 0
    try:
        while pending and breaks <= POOL_REBUILD_LIMIT:
            executor = shared_pool(jobs)
            salvaged: List[Tuple[int, Any]] = []
            futures: Dict[Any, int] = {}
            try:
                for index in sorted(pending):
                    futures[executor.submit(
                        _run_indexed, (func, index, pending[index]))] = index
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        _, result = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as error:
                        if task_errors == "raise":
                            shutdown_shared_pool()
                            raise
                        pending.pop(index, None)
                        yield index, TaskFailure(
                            "error", f"{type(error).__name__}: {error}")
                    else:
                        pending.pop(index, None)
                        yield index, result
            except BrokenProcessPool:
                # A worker died: every unfinished future is poisoned,
                # but futures that completed before the break still
                # hold good results — salvage them, then rebuild.
                for future, index in futures.items():
                    if index not in pending or not future.done() \
                            or future.cancelled():
                        continue
                    try:
                        _, result = future.result()
                    except BaseException:  # reprolint: disable=RL009 - poisoned future; its task is resubmitted to the rebuilt pool
                        continue
                    pending.pop(index, None)
                    salvaged.append((index, result))
                shutdown_shared_pool()
                breaks += 1
                time.sleep(min(_BACKOFF_BASE_SECONDS * 2 ** (breaks - 1),
                               _BACKOFF_CAP_SECONDS))
            yield from salvaged
        # Isolation mode: the pool broke POOL_REBUILD_LIMIT+1 times
        # with this task set.  Run each remaining task alone on a fresh
        # single-worker pool — a break now names the poison task.
        for index in sorted(pending):
            item = pending.pop(index)
            try:
                result = _run_isolated(func, index, item)
            except BrokenProcessPool:
                if task_errors == "raise":
                    raise WorkerCrashError(
                        f"task {index} killed its worker even in "
                        "isolation (after pool rebuilds)") from None
                yield index, TaskFailure("worker-died", WORKER_DIED)
            except Exception as error:
                if task_errors == "raise":
                    raise
                yield index, TaskFailure(
                    "error", f"{type(error).__name__}: {error}")
            else:
                yield index, result
    except GeneratorExit:
        # Closed early: the consumer is done, but the pool still holds
        # queued tasks it would keep burning CPU on.  Terminate it; the
        # abandoned tasks' results were never going to be observed.
        shutdown_shared_pool()
        raise


def _run_isolated(func: Callable[[Any], Any], index: int, item: Any) -> Any:
    """Run one task on a throwaway single-worker pool (isolation mode)."""
    executor = ProcessPoolExecutor(max_workers=1,
                                   initializer=_attach_worker,
                                   initargs=_initargs())
    try:
        _, result = executor.submit(_run_indexed,
                                    (func, index, item)).result()
        return result
    finally:
        _shutdown_executor(executor)
