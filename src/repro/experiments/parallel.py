"""Process-level fan-out for the experiment grid.

Every figure experiment decomposes into independent per-workload slices
(one slice = everything one workload contributes to one figure), so the
natural parallel unit is the (workload × config) grid.  This module
provides:

* :class:`ExperimentPool` — an ordered map over a figure's per-workload
  slice function, backed by a persistent :mod:`multiprocessing` pool
  when ``jobs > 1`` and plain serial iteration otherwise.  The pool
  lives for a whole evaluation run, so each worker process generates a
  workload's trace bundle at most once (via the
  :func:`repro.pipeline.tracegen.cached_trace` trace-bundle cache) and
  reuses it across every figure and sweep point it is handed.
* :func:`parallel_map` — a generic ordered process map for callers that
  are not shaped around :class:`ExperimentConfig` (the CLI's compare
  matrix).
* :func:`parallel_imap` — the incremental variant: results are yielded
  as tasks complete (completion order), so callers that checkpoint
  progress to disk — the scenario sweep runner persisting each finished
  point — lose at most the in-flight tasks on interruption instead of
  the whole batch.
* :func:`shared_pool` — a *persistent* process pool shared across
  calls: :func:`parallel_map` and :func:`parallel_imap` draw workers
  from it instead of spawning a fresh ``multiprocessing.Pool`` per
  call, so a session running several sweeps (or a sweep that resumes
  repeatedly) pays worker start-up and trace warm-up once.  Workers run
  :func:`_attach_worker` at start: the trace-store location and the
  already-computed generator-version hash are installed so every worker
  resolves the same archives without re-hashing the generator sources.
* :func:`resolve_jobs` — the ``--jobs auto`` policy: every CLI that
  fans out accepts ``auto`` and resolves it here (all CPUs but one, at
  least one — leaving a core for the parent keeps the incremental
  checkpoint/append loop responsive).

Determinism: results are collected in submission order, and every
:class:`ExperimentPool` grid task carries a
:func:`repro.common.rng.child_seed`-derived seed that is installed into
the worker's global ``random`` state before the slice runs, so tables
are bit-identical between ``--jobs 1`` and ``--jobs N`` regardless of
how tasks land on workers.  :func:`parallel_map` does no such seeding —
its callers must pass functions that are deterministic on their own.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
from typing import (Any, Callable, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple, Union)

from ..common.rng import child_seed
from ..trace import store as trace_store


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Resolve a ``--jobs`` value: ``auto``/None become a worker count
    derived from ``os.cpu_count()`` (all CPUs but one, minimum one);
    integers pass through.  Raises ValueError for anything else."""
    if jobs is None:
        return _auto_jobs()
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return _auto_jobs()
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            ) from None
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    return jobs


def _auto_jobs() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


def _attach_worker(store_env: Optional[str], generator_hash: str) -> None:
    """Pool-worker initializer: attach to the parent's trace store.

    Propagates the store location (environment variables survive fork
    but not necessarily alternative start methods) and pre-seeds the
    generator-version hash cache, so workers neither re-hash the
    generator sources nor can disagree with the parent about which
    archives are current.
    """
    if store_env is not None:
        # This IS the sanctioned propagation mechanism: the worker's
        # environment is overwritten with the parent's snapshot before
        # any worker code can read it.
        # reprolint: disable=RL004 - worker-side write of the parent snapshot
        os.environ[trace_store.STORE_ENV] = store_env
    trace_store._generator_hash_cache = generator_hash


def _initargs() -> Tuple[Optional[str], str]:
    # Parent-side snapshot that _attach_worker re-applies in every
    # worker; reading the environment here is what makes worker-side
    # reads unnecessary.
    # reprolint: disable=RL004 - sanctioned parent-side snapshot
    return (os.environ.get(trace_store.STORE_ENV),
            trace_store.generator_version_hash())


_shared_pool: Optional[multiprocessing.pool.Pool] = None
_shared_pool_jobs: int = 0
_shared_pool_attachment: Optional[Tuple[Optional[str], str]] = None


def shared_pool(jobs: int) -> multiprocessing.pool.Pool:
    """The persistent process pool for ``jobs`` workers.

    Created on first use and kept alive for the process; every worker
    runs :func:`_attach_worker` once at start.  The pool is re-created
    when a different worker count is requested *or* when the attachment
    (trace-store location / generator hash) no longer matches what the
    workers were initialized with — a caller that re-points
    ``REPRO_TRACE_STORE`` mid-process must never get workers still
    attached to the old store.  Call :func:`shutdown_shared_pool` to
    tear it down early — an ``atexit`` hook does so at interpreter
    exit.
    """
    global _shared_pool, _shared_pool_jobs, _shared_pool_attachment
    if jobs <= 1:
        raise ValueError("shared_pool needs jobs > 1")
    attachment = _initargs()
    if _shared_pool is not None and (
            _shared_pool_jobs != jobs
            or _shared_pool_attachment != attachment):
        shutdown_shared_pool()
    if _shared_pool is None:
        _shared_pool = multiprocessing.Pool(
            processes=jobs, initializer=_attach_worker,
            initargs=attachment)
        _shared_pool_jobs = jobs
        _shared_pool_attachment = attachment
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Terminate the persistent pool (idempotent)."""
    global _shared_pool, _shared_pool_jobs, _shared_pool_attachment
    if _shared_pool is not None:
        _shared_pool.terminate()
        _shared_pool.join()
        _shared_pool = None
        _shared_pool_jobs = 0
        _shared_pool_attachment = None


atexit.register(shutdown_shared_pool)


def jobs_argument_type(text: str) -> int:
    """argparse ``type=`` adapter for ``--jobs``: a positive integer or
    ``auto`` (shared by every fan-out CLI so the policy cannot drift)."""
    import argparse

    try:
        return resolve_jobs(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None

#: Slice function signature: (config, workload) -> picklable payload.
WorkloadSlice = Callable[[Any, str], Any]


class _TaskSpec(NamedTuple):
    """One grid cell: a slice function applied to one workload."""

    func: WorkloadSlice
    config: Any
    workload: str
    seed: int


def _run_task(spec: _TaskSpec) -> Any:
    """Execute one grid cell inside a worker (or inline when serial)."""
    # Pin the global RNG per task, not per worker, so any component that
    # (incorrectly) reaches for module-level randomness still produces
    # placement-independent results.
    random.seed(spec.seed)  # reprolint: disable=RL001 - deliberate per-task pinning of the global RNG
    return spec.func(spec.config, spec.workload)


def _task_name(func: WorkloadSlice) -> str:
    return f"{func.__module__}.{getattr(func, '__qualname__', repr(func))}"


class ExperimentPool:
    """Ordered per-workload fan-out shared by every experiment runner.

    ``jobs=1`` (the default) runs slices inline with zero overhead;
    ``jobs>1`` keeps a persistent worker pool whose processes cache
    generated traces across figures.  Use as a context manager::

        with ExperimentPool(jobs=4) as pool:
            fig10 = run_fig10(config, pool=pool)
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        self.jobs = jobs
        self._pool: Optional[multiprocessing.pool.Pool] = None
        if jobs > 1:
            self._pool = multiprocessing.Pool(
                processes=jobs, initializer=_attach_worker,
                initargs=_initargs())

    def map_workloads(self, func: WorkloadSlice, config: Any
                      ) -> List[Tuple[str, Any]]:
        """Apply ``func`` to every workload of ``config``, in order.

        Returns ``[(workload, payload), ...]`` ordered exactly like
        ``config.workloads``, whatever the completion order was.
        """
        name = _task_name(func)
        tasks = [
            _TaskSpec(func, config, workload,
                      child_seed(config.seed, name, workload))
            for workload in config.workloads
        ]
        if self._pool is None:
            payloads = [_run_task(task) for task in tasks]
        else:
            payloads = self._pool.map(_run_task, tasks, chunksize=1)
        return list(zip(config.workloads, payloads))

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> ExperimentPool:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def run_workload_grid(func: WorkloadSlice, config: Any,
                      pool: Optional[ExperimentPool] = None
                      ) -> List[Tuple[str, Any]]:
    """Map ``func`` over ``config.workloads`` through ``pool`` (serial
    when ``pool`` is None) — the one-liner every figure runner uses."""
    if pool is None:
        return ExperimentPool(jobs=1).map_workloads(func, config)
    return pool.map_workloads(func, config)


def parallel_map(func: Callable[[Any], Any], items: Sequence[Any],
                 jobs: int = 1) -> List[Any]:
    """Ordered process map for ad-hoc grids (e.g. the CLI compare rows).

    ``func`` must be picklable (module-level); with ``jobs=1`` this is
    just ``list(map(func, items))``.  With ``jobs>1`` the tasks run on
    the persistent :func:`shared_pool`.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    return shared_pool(jobs).map(func, items, chunksize=1)


def _run_indexed(task: Tuple[Callable[[Any], Any], int, Any]
                 ) -> Tuple[int, Any]:
    """Worker shim for :func:`parallel_imap`: tag results with their
    submission index so callers can reorder if they need to."""
    func, index, item = task
    return index, func(item)


def parallel_imap(func: Callable[[Any], Any], items: Sequence[Any],
                  jobs: int = 1) -> Iterator[Tuple[int, Any]]:
    """Incremental process map: yields ``(index, result)`` pairs.

    With ``jobs=1`` (or a single item) tasks run inline and results
    arrive in submission order; with ``jobs>1`` they arrive in
    *completion* order, tagged with the submitting index.  Use this when
    each finished task should be checkpointed immediately (the scenario
    sweep runner appends each result to its on-disk store, so a killed
    run resumes from the last completed task rather than the last
    completed batch).  ``func`` must be picklable (module-level).
    With ``jobs>1`` the tasks run on the persistent :func:`shared_pool`
    — repeated calls (sweep after sweep, or a resumed sweep) reuse the
    same attached workers instead of re-spawning.

    Early-close contract: ``close()``-ing the iterator before
    exhaustion (what the sweep runner's cooperative-stop hook does on
    graceful shutdown) cancels the not-yet-consumed work — under
    ``jobs>1`` the persistent pool is torn down, since
    ``imap_unordered`` offers no way to retract queued tasks from a
    live pool, and the next parallel call transparently re-creates it.
    Results already yielded are unaffected.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if jobs == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            yield index, func(item)
        return
    tagged = [(func, index, item) for index, item in enumerate(items)]
    try:
        yield from shared_pool(jobs).imap_unordered(_run_indexed, tagged,
                                                    chunksize=1)
    except GeneratorExit:
        # Closed early: the consumer is done, but the pool still holds
        # queued tasks it would keep burning CPU on.  Terminate it; the
        # abandoned tasks' results were never going to be observed.
        shutdown_shared_pool()
        raise
