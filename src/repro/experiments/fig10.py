"""Figure 10: competitive comparison — miss coverage (left) and speedup
(right) for Next-line, TIFS, PIF, and a perfect L1-I.

The paper's bottom line: PIF's coverage is near-perfect where TIFS
reaches 65-90 %, and its speedup converges to the perfect cache's.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..common.config import SystemConfig
from ..core.pif import ProactiveInstructionFetch
from ..prefetch import make_prefetcher
from ..prefetch.base import Prefetcher
from ..sim.engine import run_multi_prefetch_simulation
from ..sim.timing import speedup_comparison
from .common import ExperimentConfig, format_table, mean, percent, traces_for
from .parallel import ExperimentPool, run_workload_grid

#: Engines compared, in the paper's presentation order.
ENGINES: Tuple[str, ...] = ("next-line", "tifs", "pif")


def _engine(name: str, config: ExperimentConfig) -> Prefetcher:
    if name == "pif":
        return ProactiveInstructionFetch(
            config.pif, block_bytes=config.cache.block_bytes)
    return make_prefetcher(name)


@dataclass(slots=True)
class Fig10Result:
    """Coverage and speedup per workload per engine."""

    config: ExperimentConfig
    #: {workload: {engine: miss coverage}}
    coverage: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: {workload: {engine or 'perfect'/'baseline': speedup}}
    speedup: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mean_speedup(self, engine: str) -> float:
        """Geometric-mean-free average speedup across workloads (the
        paper reports an arithmetic average)."""
        return mean(self.speedup[w][engine] for w in self.speedup)

    def pif_wins_everywhere(self) -> bool:
        """True if PIF's coverage beats both baselines on every workload."""
        return all(
            row["pif"] >= row["tifs"] and row["pif"] >= row["next-line"]
            for row in self.coverage.values()
        )

    def to_table(self) -> str:
        """Both panels as ASCII tables."""
        headers = ["workload"] + list(ENGINES)
        rows = [
            [workload] + [percent(row[e]) for e in ENGINES]
            for workload, row in self.coverage.items()
        ]
        left = format_table(headers, rows,
                            title="Figure 10 (left): L1 miss coverage")

        headers2 = ["workload"] + list(ENGINES) + ["perfect"]
        rows2 = [
            [workload] + [f"{row[e]:.3f}" for e in (*ENGINES, "perfect")]
            for workload, row in self.speedup.items()
        ]
        right = format_table(headers2, rows2,
                             title="Figure 10 (right): speedup over no-prefetch")
        return left + "\n\n" + right


def _fig10_workload(config: ExperimentConfig, workload: str) -> Tuple[
        Dict[str, float], Dict[str, float]]:
    """One workload's (coverage row, speedup row).

    The coverage panel replays each trace once against every engine via
    the single-pass multi-prefetcher engine; the timing panel keeps
    per-engine walks because each engine evolves its own clock.
    """
    system = replace(SystemConfig(), l1i=config.cache)
    traces = traces_for(config, workload)
    coverage: Dict[str, List[float]] = {e: [] for e in ENGINES}
    speedups: Dict[str, List[float]] = {}
    for trace in traces:
        sims = run_multi_prefetch_simulation(
            trace.bundle, [_engine(name, config) for name in ENGINES],
            cache_config=config.cache,
            warmup_fraction=config.warmup_fraction)
        for engine_name, sim in zip(ENGINES, sims):
            coverage[engine_name].append(sim.coverage())
        engines = {name: _engine(name, config) for name in ENGINES}
        comparison = speedup_comparison(
            trace.bundle, engines, system=system,
            warmup_fraction=config.warmup_fraction)
        for name, value in comparison.items():
            speedups.setdefault(name, []).append(value)
    return (
        {name: mean(values) for name, values in coverage.items()},
        {name: mean(values) for name, values in speedups.items()},
    )


def run_fig10(config: ExperimentConfig,
              pool: Optional[ExperimentPool] = None) -> Fig10Result:
    """Run both Figure 10 panels over the configured workloads."""
    result = Fig10Result(config=config)
    for workload, (coverage, speedup) in run_workload_grid(
            _fig10_workload, config, pool):
        result.coverage[workload] = coverage
        result.speedup[workload] = speedup
    return result
