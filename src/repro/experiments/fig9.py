"""Figure 9: temporal stream length contribution (left) and history-size
sensitivity (right).

Left: correct predictions come disproportionately from medium and long
streams — temporal correlation needs long repetitive sequences.
Right: predictor coverage grows monotonically with history capacity and
knees; the paper picks 32 K regions as the engineering trade-off.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.coverage import build_view_events, measure_pif_predictability
from .common import (
    ExperimentConfig,
    cumulative,
    format_table,
    mean,
    normalize_histogram,
    percent,
    traces_for,
)
from .parallel import ExperimentPool, run_workload_grid

#: History sizes swept, in region records (the paper's axis is
#: log2 of K-regions; ours starts smaller because the synthetic
#: footprints are scaled down with the cache).
HISTORY_SIZES: Tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192,
                                  16384, 32768, 65536)


@dataclass(slots=True)
class Fig9Result:
    """Stream-length CDF and history-size coverage per workload."""

    config: ExperimentConfig
    #: {workload: {log2(stream length) bin: cumulative fraction of
    #: correct predictions}}
    length_cdf: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: {workload: {history entries: coverage}}
    history_coverage: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def coverage_monotone(self, workload: str, tolerance: float = 0.02) -> bool:
        """True if coverage never drops more than ``tolerance`` as the
        history grows (sampling noise allowance)."""
        series = [self.history_coverage[workload][size]
                  for size in HISTORY_SIZES]
        return all(later >= earlier - tolerance
                   for earlier, later in zip(series, series[1:]))

    def to_table(self) -> str:
        """Both panels as ASCII tables."""
        bins = sorted({b for cdf in self.length_cdf.values() for b in cdf})
        headers = ["workload"] + [f"2^{b}" for b in bins]
        rows: List[List[str]] = []
        for workload, cdf in self.length_cdf.items():
            row = [workload]
            running = 0.0
            for bin_ in bins:
                if bin_ in cdf:
                    running = cdf[bin_]
                row.append(f"{100 * running:4.0f}%")
            rows.append(row)
        left = format_table(
            headers, rows,
            title="Figure 9 (left): correct predictions by stream length (CDF)")

        headers2 = ["workload"] + [str(s) for s in HISTORY_SIZES]
        rows2 = [
            [workload] + [percent(coverage[size]) for size in HISTORY_SIZES]
            for workload, coverage in self.history_coverage.items()
        ]
        right = format_table(
            headers2, rows2,
            title="Figure 9 (right): coverage vs history size (regions)")
        return left + "\n\n" + right


def _fig9_workload(config: ExperimentConfig, workload: str
                   ) -> Tuple[Dict[int, float], Dict[int, float]]:
    """One workload's (stream-length CDF, history sweep) pair."""
    traces = traces_for(config, workload)
    views = [build_view_events(t.bundle, config.cache) for t in traces]

    lengths: Counter = Counter()
    for trace, view in zip(traces, views):
        oracle = measure_pif_predictability(
            trace.bundle, history_entries=1 << 22,
            cache_config=config.cache, view_events=view,
            warmup_fraction=config.warmup_fraction)
        for length, correct in oracle.stream_lengths:
            if length <= 0:
                continue
            bin_ = length.bit_length() - 1
            lengths[bin_] += correct
    length_cdf = cumulative(normalize_histogram(dict(lengths)))

    by_size: Dict[int, float] = {}
    for size in HISTORY_SIZES:
        coverages: List[float] = []
        for trace, view in zip(traces, views):
            oracle = measure_pif_predictability(
                trace.bundle, history_entries=size,
                cache_config=config.cache, view_events=view,
                warmup_fraction=config.warmup_fraction)
            coverages.append(oracle.coverage())
        by_size[size] = mean(coverages)
    return length_cdf, by_size


def run_fig9(config: ExperimentConfig,
             pool: Optional[ExperimentPool] = None) -> Fig9Result:
    """Run both Figure 9 panels."""
    result = Fig9Result(config=config)
    for workload, (length_cdf, by_size) in run_workload_grid(
            _fig9_workload, config, pool):
        result.length_cdf[workload] = length_cdf
        result.history_coverage[workload] = by_size
    return result
