"""Figure 8: accesses around the trigger block (left) and spatial-region
size sensitivity split by trap level (right).

The left panel justifies the skewed region shape (dense immediately
after the trigger, a real tail before it); the right panel shows
coverage rising with region size, strongly for the compact trap-level-1
handler code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.addressing import RegionGeometry
from ..sim.coverage import build_view_events, measure_pif_predictability
from ..sim.regionstats import (
    OFFSET_GEOMETRY,
    merge_distributions,
    trigger_offset_profile,
)
from .common import (
    ExperimentConfig,
    format_table,
    mean,
    percent,
    traces_for,
)
from .parallel import ExperimentPool, run_workload_grid

#: Region sizes the paper sweeps (total blocks including the trigger).
REGION_SIZES: Tuple[int, ...] = (1, 2, 4, 6, 8)


def geometry_for_size(total_blocks: int) -> RegionGeometry:
    """The paper's geometry at each swept size.

    Regions keep up to two preceding blocks (the Figure 8 left
    conclusion) and give the rest to succeeding blocks.
    """
    if total_blocks <= 0:
        raise ValueError("region size must be positive")
    preceding = min(2, total_blocks - 1)
    succeeding = total_blocks - 1 - preceding
    return RegionGeometry(preceding=preceding, succeeding=succeeding)


@dataclass(slots=True)
class Fig8Result:
    """Offset profile per workload and size-sweep coverage per trap level."""

    config: ExperimentConfig
    #: {workload: {offset: fraction of region references}}
    offset_profile: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: {workload: {region size: (TL0 coverage, TL1 coverage)}}
    size_coverage: Dict[str, Dict[int, Tuple[float, float]]] = field(
        default_factory=dict)

    def to_table(self) -> str:
        """Both panels as ASCII tables."""
        offsets = sorted(next(iter(self.offset_profile.values())).keys())
        headers = ["workload"] + [f"{o:+d}" for o in offsets]
        rows = [
            [workload] + [f"{100 * profile.get(o, 0.0):4.1f}" for o in offsets]
            for workload, profile in self.offset_profile.items()
        ]
        left = format_table(
            headers, rows,
            title="Figure 8 (left): references by offset from trigger (%)")

        headers2 = ["workload", "level"] + [str(s) for s in REGION_SIZES]
        rows2: List[List[str]] = []
        for workload, by_size in self.size_coverage.items():
            rows2.append([workload, "TL0"] + [
                percent(by_size[size][0]) for size in REGION_SIZES])
            rows2.append([workload, "TL1"] + [
                percent(by_size[size][1]) for size in REGION_SIZES])
        right = format_table(
            headers2, rows2,
            title="Figure 8 (right): coverage vs region size")
        return left + "\n\n" + right


def _fig8_workload(config: ExperimentConfig, workload: str) -> Tuple[
        Dict[int, float], Dict[int, Tuple[float, float]]]:
    """One workload's (offset profile, size-sweep coverage) pair."""
    traces = traces_for(config, workload)
    profiles = [trigger_offset_profile(t.bundle.retires, OFFSET_GEOMETRY)
                for t in traces]
    offset_profile = merge_distributions(profiles)

    by_size: Dict[int, Tuple[float, float]] = {}
    views = [build_view_events(t.bundle, config.cache) for t in traces]
    for size in REGION_SIZES:
        geometry = geometry_for_size(size)
        tl0: List[float] = []
        tl1: List[float] = []
        for trace, view in zip(traces, views):
            oracle = measure_pif_predictability(
                trace.bundle, geometry=geometry,
                cache_config=config.cache, view_events=view,
                warmup_fraction=config.warmup_fraction)
            tl0.append(oracle.level_coverage(0))
            tl1.append(oracle.level_coverage(1))
        by_size[size] = (mean(tl0), mean(tl1))
    return offset_profile, by_size


def run_fig8(config: ExperimentConfig,
             pool: Optional[ExperimentPool] = None) -> Fig8Result:
    """Run both Figure 8 panels."""
    result = Fig8Result(config=config)
    for workload, (profile, by_size) in run_workload_grid(
            _fig8_workload, config, pool):
        result.offset_profile[workload] = profile
        result.size_coverage[workload] = by_size
    return result
