"""Ablation studies beyond the paper's headline figures.

Each ablation varies exactly one design decision DESIGN.md calls out:

* ``temporal``   — temporal compactor size 0/1/2/4/8 (0 disables it);
* ``sab``        — SAB count x window-depth grid (the paper's footnote 2
                   empirically tuned these; we reproduce the tuning curve);
* ``index``      — bounded index-table capacity sweep;
* ``source``     — the same PIF hardware fed retire-order vs fetch-order
                   streams (the paper's central claim, isolated);
* ``replacement``— L1 replacement policy interaction (LRU/FIFO/random).

Every sweep batches all of its settings into one single-pass
multi-prefetcher walk per trace (see :mod:`repro.sim.engine`), and every
ablation accepts an :class:`~repro.experiments.parallel.ExperimentPool`
to fan its per-workload slices out across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.config import CacheConfig
from ..core.pif import AccessOrderPIF, ProactiveInstructionFetch
from ..prefetch.base import Prefetcher
from ..sim.engine import run_multi_prefetch_simulation
from .common import ExperimentConfig, format_table, mean, percent, traces_for
from .parallel import ExperimentPool, run_workload_grid

#: Temporal compactor sizes swept.
TEMPORAL_SIZES: Tuple[int, ...] = (0, 1, 2, 4, 8)

#: (SAB count, window regions) grid.
SAB_GRID: Tuple[Tuple[int, int], ...] = ((1, 3), (2, 3), (4, 3), (4, 5),
                                         (4, 7), (8, 3))

#: Index capacities swept (entries).
INDEX_SIZES: Tuple[int, ...] = (256, 1024, 4096, 16384)

#: L1 replacement policies compared.
REPLACEMENT_POLICIES: Tuple[str, ...] = ("lru", "fifo", "random")


@dataclass(slots=True)
class AblationResult:
    """One named sweep: {workload: {setting label: coverage}}."""

    name: str
    config: ExperimentConfig
    coverage: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_table(self) -> str:
        """The sweep as an ASCII table."""
        settings = list(next(iter(self.coverage.values())).keys())
        headers = ["workload"] + settings
        rows = [
            [workload] + [percent(row[s]) for s in settings]
            for workload, row in self.coverage.items()
        ]
        return format_table(headers, rows, title=f"Ablation: {self.name}")


def _sweep(config: ExperimentConfig, workload: str,
           make_engines: Callable[[], Sequence[Tuple[str, Prefetcher]]],
           cache_configs: Optional[Sequence[Optional[CacheConfig]]] = None,
           ) -> Dict[str, float]:
    """Mean coverage per setting label, one shared walk per trace.

    ``make_engines`` builds a fresh ``[(label, engine), ...]`` list per
    trace (engines carry state and must not leak between cores).
    """
    per_label: Dict[str, List[float]] = {}
    for trace in traces_for(config, workload):
        labeled = list(make_engines())
        sims = run_multi_prefetch_simulation(
            trace.bundle, [engine for _, engine in labeled],
            cache_config=config.cache,
            warmup_fraction=config.warmup_fraction,
            cache_configs=cache_configs)
        for (label, _), sim in zip(labeled, sims):
            per_label.setdefault(label, []).append(sim.coverage())
    return {label: mean(values) for label, values in per_label.items()}


def _pif(config: ExperimentConfig, **overrides) -> ProactiveInstructionFetch:
    pif_config = replace(config.pif, **overrides) if overrides else config.pif
    return ProactiveInstructionFetch(pif_config,
                                     block_bytes=config.cache.block_bytes)


def _temporal_workload(config: ExperimentConfig, workload: str
                       ) -> Dict[str, float]:
    return _sweep(config, workload, lambda: [
        (str(size), _pif(config, temporal_compactor_entries=size))
        for size in TEMPORAL_SIZES
    ])


def _sab_workload(config: ExperimentConfig, workload: str) -> Dict[str, float]:
    return _sweep(config, workload, lambda: [
        (f"{count}x{window}",
         _pif(config, sab_count=count, sab_window_regions=window))
        for count, window in SAB_GRID
    ])


def _index_workload(config: ExperimentConfig, workload: str
                    ) -> Dict[str, float]:
    def make_engines() -> List[Tuple[str, Prefetcher]]:
        labeled: List[Tuple[str, Prefetcher]] = [
            (str(entries), _pif(config, index_entries=entries))
            for entries in INDEX_SIZES
        ]
        labeled.append(("unbounded", ProactiveInstructionFetch(
            config.pif, block_bytes=config.cache.block_bytes,
            unbounded_index=True)))
        return labeled

    return _sweep(config, workload, make_engines)


def _source_workload(config: ExperimentConfig, workload: str
                     ) -> Dict[str, float]:
    return _sweep(config, workload, lambda: [
        ("retire", _pif(config)),
        ("fetch", AccessOrderPIF(config.pif,
                                 block_bytes=config.cache.block_bytes)),
    ])


def _replacement_workload(config: ExperimentConfig, workload: str
                          ) -> Dict[str, float]:
    cache_configs = [replace(config.cache, replacement=policy)
                     for policy in REPLACEMENT_POLICIES]
    return _sweep(
        config, workload,
        lambda: [(policy, _pif(config)) for policy in REPLACEMENT_POLICIES],
        cache_configs=cache_configs)


def _run_ablation(name: str, slice_func, config: ExperimentConfig,
                  pool: Optional[ExperimentPool] = None) -> AblationResult:
    result = AblationResult(name, config)
    for workload, row in run_workload_grid(slice_func, config, pool):
        result.coverage[workload] = row
    return result


def run_temporal_ablation(config: ExperimentConfig,
                          pool: Optional[ExperimentPool] = None
                          ) -> AblationResult:
    """Temporal compactor size sweep (0 = spatial-only compaction)."""
    return _run_ablation("temporal compactor entries", _temporal_workload,
                         config, pool)


def run_sab_ablation(config: ExperimentConfig,
                     pool: Optional[ExperimentPool] = None) -> AblationResult:
    """SAB count x window grid (reproduces the footnote 2 tuning)."""
    return _run_ablation("SAB count x window", _sab_workload, config, pool)


def run_index_ablation(config: ExperimentConfig,
                       pool: Optional[ExperimentPool] = None
                       ) -> AblationResult:
    """Bounded index capacity sweep plus the unbounded reference."""
    return _run_ablation("index table entries", _index_workload, config, pool)


def run_source_ablation(config: ExperimentConfig,
                        pool: Optional[ExperimentPool] = None
                        ) -> AblationResult:
    """Retire-order vs fetch-order input to identical PIF hardware."""
    return _run_ablation("record source (retire vs fetch order)",
                         _source_workload, config, pool)


def run_replacement_ablation(config: ExperimentConfig,
                             pool: Optional[ExperimentPool] = None
                             ) -> AblationResult:
    """PIF coverage under different L1 replacement policies."""
    return _run_ablation("L1 replacement policy", _replacement_workload,
                         config, pool)


def run_all_ablations(config: ExperimentConfig,
                      pool: Optional[ExperimentPool] = None
                      ) -> List[AblationResult]:
    """Every ablation, in DESIGN.md order."""
    return [
        run_temporal_ablation(config, pool),
        run_sab_ablation(config, pool),
        run_index_ablation(config, pool),
        run_source_ablation(config, pool),
        run_replacement_ablation(config, pool),
    ]
