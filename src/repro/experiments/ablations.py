"""Ablation studies beyond the paper's headline figures.

Each ablation varies exactly one design decision DESIGN.md calls out:

* ``temporal``   — temporal compactor size 0/1/2/4/8 (0 disables it);
* ``sab``        — SAB count x window-depth grid (the paper's footnote 2
                   empirically tuned these; we reproduce the tuning curve);
* ``index``      — bounded index-table capacity sweep;
* ``source``     — the same PIF hardware fed retire-order vs fetch-order
                   streams (the paper's central claim, isolated);
* ``replacement``— L1 replacement policy interaction (LRU/FIFO/random).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from ..common.config import CacheConfig, PIFConfig
from ..core.pif import AccessOrderPIF, ProactiveInstructionFetch
from ..sim.tracesim import run_prefetch_simulation
from .common import ExperimentConfig, format_table, mean, percent, traces_for

#: Temporal compactor sizes swept.
TEMPORAL_SIZES: Tuple[int, ...] = (0, 1, 2, 4, 8)

#: (SAB count, window regions) grid.
SAB_GRID: Tuple[Tuple[int, int], ...] = ((1, 3), (2, 3), (4, 3), (4, 5),
                                         (4, 7), (8, 3))

#: Index capacities swept (entries).
INDEX_SIZES: Tuple[int, ...] = (256, 1024, 4096, 16384)

#: L1 replacement policies compared.
REPLACEMENT_POLICIES: Tuple[str, ...] = ("lru", "fifo", "random")


@dataclass(slots=True)
class AblationResult:
    """One named sweep: {workload: {setting label: coverage}}."""

    name: str
    config: ExperimentConfig
    coverage: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_table(self) -> str:
        """The sweep as an ASCII table."""
        settings = list(next(iter(self.coverage.values())).keys())
        headers = ["workload"] + settings
        rows = [
            [workload] + [percent(row[s]) for s in settings]
            for workload, row in self.coverage.items()
        ]
        return format_table(headers, rows, title=f"Ablation: {self.name}")


def _simulate(config: ExperimentConfig, workload: str, engine_factory,
              cache: CacheConfig = None) -> float:
    cache_config = cache if cache is not None else config.cache
    coverages: List[float] = []
    for trace in traces_for(config, workload):
        sim = run_prefetch_simulation(
            trace.bundle, engine_factory(), cache_config=cache_config,
            warmup_fraction=config.warmup_fraction)
        coverages.append(sim.coverage())
    return mean(coverages)


def run_temporal_ablation(config: ExperimentConfig) -> AblationResult:
    """Temporal compactor size sweep (0 = spatial-only compaction)."""
    result = AblationResult("temporal compactor entries", config)
    for workload in config.workloads:
        row: Dict[str, float] = {}
        for size in TEMPORAL_SIZES:
            pif_config = replace(config.pif, temporal_compactor_entries=size)
            row[str(size)] = _simulate(
                config, workload,
                lambda: ProactiveInstructionFetch(
                    pif_config, block_bytes=config.cache.block_bytes))
        result.coverage[workload] = row
    return result


def run_sab_ablation(config: ExperimentConfig) -> AblationResult:
    """SAB count x window grid (reproduces the footnote 2 tuning)."""
    result = AblationResult("SAB count x window", config)
    for workload in config.workloads:
        row: Dict[str, float] = {}
        for count, window in SAB_GRID:
            pif_config = replace(config.pif, sab_count=count,
                                 sab_window_regions=window)
            row[f"{count}x{window}"] = _simulate(
                config, workload,
                lambda: ProactiveInstructionFetch(
                    pif_config, block_bytes=config.cache.block_bytes))
        result.coverage[workload] = row
    return result


def run_index_ablation(config: ExperimentConfig) -> AblationResult:
    """Bounded index capacity sweep plus the unbounded reference."""
    result = AblationResult("index table entries", config)
    for workload in config.workloads:
        row: Dict[str, float] = {}
        for entries in INDEX_SIZES:
            pif_config = replace(config.pif, index_entries=entries)
            row[str(entries)] = _simulate(
                config, workload,
                lambda: ProactiveInstructionFetch(
                    pif_config, block_bytes=config.cache.block_bytes))
        row["unbounded"] = _simulate(
            config, workload,
            lambda: ProactiveInstructionFetch(
                config.pif, block_bytes=config.cache.block_bytes,
                unbounded_index=True))
        result.coverage[workload] = row
    return result


def run_source_ablation(config: ExperimentConfig) -> AblationResult:
    """Retire-order vs fetch-order input to identical PIF hardware."""
    result = AblationResult("record source (retire vs fetch order)", config)
    for workload in config.workloads:
        retire = _simulate(
            config, workload,
            lambda: ProactiveInstructionFetch(
                config.pif, block_bytes=config.cache.block_bytes))
        access = _simulate(
            config, workload,
            lambda: AccessOrderPIF(
                config.pif, block_bytes=config.cache.block_bytes))
        result.coverage[workload] = {"retire": retire, "fetch": access}
    return result


def run_replacement_ablation(config: ExperimentConfig) -> AblationResult:
    """PIF coverage under different L1 replacement policies."""
    result = AblationResult("L1 replacement policy", config)
    for workload in config.workloads:
        row: Dict[str, float] = {}
        for policy in REPLACEMENT_POLICIES:
            cache = replace(config.cache, replacement=policy)
            row[policy] = _simulate(
                config, workload,
                lambda: ProactiveInstructionFetch(
                    config.pif, block_bytes=config.cache.block_bytes),
                cache=cache)
        result.coverage[workload] = row
    return result


def run_all_ablations(config: ExperimentConfig) -> List[AblationResult]:
    """Every ablation, in DESIGN.md order."""
    return [
        run_temporal_ablation(config),
        run_sab_ablation(config),
        run_index_ablation(config),
        run_source_ablation(config),
        run_replacement_ablation(config),
    ]
