"""Experiment harness: one module per paper figure, plus ablations."""

from .ablations import (
    AblationResult,
    run_all_ablations,
    run_index_ablation,
    run_replacement_ablation,
    run_sab_ablation,
    run_source_ablation,
    run_temporal_ablation,
)
from .common import (
    EXPERIMENT_CACHE,
    EXPERIMENT_PIF,
    ExperimentConfig,
    QUICK_CONFIG,
    traces_for,
)
from .fig2 import Fig2Result, run_fig2
from .fig3 import Fig3Result, run_fig3
from .fig7 import Fig7Result, run_fig7
from .fig8 import Fig8Result, geometry_for_size, run_fig8
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .parallel import ExperimentPool, parallel_map, run_workload_grid
from .runner import run_all

__all__ = [
    "AblationResult",
    "run_all_ablations",
    "run_index_ablation",
    "run_replacement_ablation",
    "run_sab_ablation",
    "run_source_ablation",
    "run_temporal_ablation",
    "EXPERIMENT_CACHE",
    "EXPERIMENT_PIF",
    "QUICK_CONFIG",
    "ExperimentConfig",
    "traces_for",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "run_fig3",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "geometry_for_size",
    "run_fig8",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "ExperimentPool",
    "parallel_map",
    "run_workload_grid",
    "run_all",
]
