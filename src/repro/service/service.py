"""The sweep service: bounded queue, background worker, crash recovery.

:class:`SweepService` is the daemon's engine, deliberately independent
of HTTP (the :mod:`repro.service.http` layer is a thin adapter over it,
and tests drive it directly).  One background worker thread drains the
queue one job at a time — parallelism belongs *inside* a sweep (the
``jobs`` fan-out over :func:`repro.experiments.parallel.shared_pool`),
not across sweeps, which keeps every job's results store byte-identical
to the same sweep run from the CLI with the same ``--jobs``.

Lifecycle guarantees:

* **Backpressure** — :meth:`submit` refuses (``QueueFullError``) once
  ``queue_depth`` jobs are queued; the HTTP layer maps that to 429.
* **Graceful shutdown** — :meth:`stop` sets the stop event, which
  :func:`repro.scenarios.runner.run_sweep` polls between trace groups
  (the cooperative-stop hook): the in-flight group finishes, its
  records are checkpointed to the store, the job is persisted back to
  ``queued``, and the worker exits.  Nothing computed is lost.
* **Crash recovery** — :meth:`start` re-enqueues every persisted
  ``running``/``queued`` job (interrupted ones first).  Re-running a
  sweep against its existing store recomputes nothing (the PR 4 resume
  contract), so even a ``kill -9`` costs at most the records of the
  trace group that was mid-flight.
"""

from __future__ import annotations

import collections
import json
import sys
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..faults import fire
from ..scenarios import ResultsStore, parse_spec, run_sweep, status_summary
from .jobs import (CANCELLED, DEGRADED, DONE, FAILED, QUEUED, RUNNING,
                   TERMINAL_STATES, Job, JobStore)

#: Default bound on the number of *queued* (not yet running) jobs.
DEFAULT_QUEUE_DEPTH = 16

#: Default cap on a submitted spec body, in bytes (a scenario file is
#: a few KB; a megabyte of YAML is a client bug, not a sweep).
DEFAULT_MAX_BODY_BYTES = 1 << 20


class QueueFullError(RuntimeError):
    """The queue already holds ``queue_depth`` jobs (HTTP 429)."""


class UnknownJobError(KeyError):
    """No job with the requested id exists (HTTP 404)."""


class JobConflictError(RuntimeError):
    """The operation is invalid for the job's current state (HTTP 409)."""


@dataclass(slots=True)
class ServiceConfig:
    """Everything a daemon instance is configured by (CLI flags map
    one-to-one onto these fields; see ``repro serve --help``)."""

    data_dir: str
    jobs: int = 1                 #: worker processes per sweep
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    kernel: Optional[str] = None  #: simulation kernel override

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            raise ValueError("jobs must be positive")
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")


def _stderr_log(event: Dict[str, Any]) -> None:
    print(json.dumps(event, sort_keys=True), file=sys.stderr)


class SweepService:
    """Queue + worker + persistence glue (see module docstring).

    ``log`` receives one dict per structured event (job transitions,
    sweep progress lines, recovery actions); the default serializes each
    to a JSON line on stderr.  Tests pass a collector or a no-op.
    """

    def __init__(self, config: ServiceConfig,
                 log: Optional[Callable[[Dict[str, Any]], None]] = None
                 ) -> None:
        self.config = config
        self.store = JobStore(config.data_dir)
        self._log = log if log is not None else _stderr_log
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: "collections.deque[str]" = collections.deque()
        self._registry: Dict[str, Job] = {}
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        #: Set while the worker is inside run_sweep (id of that job).
        self._active: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Recover persisted jobs, then start the worker thread."""
        with self._lock:
            if self._worker is not None:
                raise RuntimeError("service already started")
            for job in self.store.load_all():
                self._registry[job.id] = job
            for job in self.store.recoverable():
                if job.state == RUNNING:
                    # The previous process died mid-sweep; its store
                    # holds every checkpointed point, so re-running is
                    # pure resume.
                    job.state = QUEUED
                    self.store.save(job)
                    self._event("job-recovered", job=job.id)
                self._queue.append(job.id)
            self._worker = threading.Thread(target=self._drain,
                                            name="sweep-worker",
                                            daemon=True)
        self._worker.start()

    def request_stop(self) -> None:
        """Begin a graceful shutdown without waiting (signal-handler
        safe): the in-flight trace group finishes and checkpoints."""
        self._stop.set()
        with self._wake:
            self._wake.notify_all()

    def stop(self, wait: bool = True) -> None:
        """Graceful shutdown; with ``wait`` blocks until the worker has
        checkpointed and exited."""
        self.request_stop()
        worker = self._worker
        if wait and worker is not None:
            worker.join()

    def stopping(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    # operations (called from HTTP handler threads)

    def submit(self, raw_spec: Dict[str, Any]) -> Job:
        """Validate and enqueue one sweep; returns the queued job.

        Raises :class:`repro.scenarios.SpecError` on a bad spec (the
        caller's 400) and :class:`QueueFullError` on backpressure (429).
        Validation happens *here*, at the boundary, so the worker can
        never pick up a spec that does not parse.
        """
        spec = parse_spec(raw_spec)  # SpecError propagates to the caller
        with self._lock:
            if len(self._queue) >= self.config.queue_depth:
                raise QueueFullError(
                    f"queue is full ({self.config.queue_depth} jobs "
                    "queued); retry after one finishes")
            job = self.store.create(raw_spec, spec.name, self.config.jobs)
            self._registry[job.id] = job
            self._queue.append(job.id)
            self._wake.notify_all()
        self._event("job-queued", job=job.id, scenario=job.scenario)
        return job

    def get(self, job_id: str) -> Job:
        """The job, or :class:`UnknownJobError`."""
        with self._lock:
            try:
                return self._registry[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return sorted(self._registry.values(), key=lambda job: job.seq)

    def counts(self) -> Dict[str, int]:
        """``{state: job count}`` over every known job."""
        with self._lock:
            counter: Dict[str, int] = {}
            for job in self._registry.values():
                counter[job.state] = counter.get(job.state, 0) + 1
            return counter

    def queue_available(self) -> int:
        """Free queue slots (what health reports)."""
        with self._lock:
            return max(0, self.config.queue_depth - len(self._queue))

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job.  Raises :class:`UnknownJobError` for
        unknown ids and :class:`JobConflictError` when the job is
        already running or terminal (a running sweep is not torn down
        mid-walk; it keeps its resume guarantee instead)."""
        with self._lock:
            job = self._registry.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            if job.state != QUEUED:
                raise JobConflictError(
                    f"job {job_id} is {job.state}; only queued jobs "
                    "can be cancelled")
            self._queue.remove(job_id)
            job.state = CANCELLED
            self.store.save(job)
        self._event("job-cancelled", job=job_id)
        return job

    def sweep_summary(self, job: Job) -> Dict[str, Any]:
        """The job's ``status_summary`` document (live completion
        accounting against its results store — exactly the ``repro
        sweep status --format json`` payload)."""
        spec = parse_spec(job.raw_spec)
        return status_summary(spec, ResultsStore(self.store.sweep_dir(job.id)))

    def wait_idle(self, timeout: float) -> bool:
        """Testing/operator helper: block until no job is queued or
        running (True) or ``timeout`` seconds elapsed (False)."""
        deadline_event = threading.Event()
        # Polling keeps this free of extra bookkeeping in the hot worker
        # loop; the granularity only affects how fast tests return.
        waited = 0.0
        step = 0.02
        while waited <= timeout:
            with self._lock:
                idle = not self._queue and self._active is None
            if idle:
                return True
            deadline_event.wait(step)
            waited += step
        return False

    # ------------------------------------------------------------------
    # worker

    def _drain(self) -> None:
        """Worker thread: pop → run (resumably) → persist outcome."""
        while True:
            with self._wake:
                while not self._queue and not self._stop.is_set():
                    self._wake.wait()
                if self._stop.is_set():
                    return
                job = self._registry[self._queue.popleft()]
                job.state = RUNNING
                self.store.save(job)
                self._active = job.id
            self._event("job-started", job=job.id, scenario=job.scenario)
            try:
                self._run_job(job)
            finally:
                with self._lock:
                    self._active = None

    def _run_job(self, job: Job) -> None:
        out = self.store.sweep_dir(job.id)

        def sweep_log(line: str) -> None:
            self._event("sweep-progress", job=job.id, line=line)

        try:
            fire("service.job", job.id)
            summary = run_sweep(parse_spec(job.raw_spec), out,
                                jobs=job.jobs, kernel=self.config.kernel,
                                log=sweep_log,
                                should_stop=self._stop.is_set)
        except Exception as error:  # reprolint: disable=RL009 - last-resort job boundary: the worker thread must survive any job; the failure is recorded on the job, never swallowed
            with self._lock:
                job.state = FAILED
                job.error = f"{type(error).__name__}: {error}"
                self.store.save(job)
            self._event("job-failed", job=job.id, error=job.error)
            return
        with self._lock:
            job.computed += summary.computed
            job.failed_points = summary.failed
            if summary.degraded():
                # Complete, but some points were quarantined (DESIGN.md
                # "Failure model"): terminal, resubmittable — a rerun of
                # the same spec retries exactly the quarantined set.
                job.state = DEGRADED
                job.error = ("sweep completed degraded: quarantined "
                             + ", ".join(summary.quarantined))
            elif summary.complete():
                job.state = DONE
            elif self._stop.is_set():
                # Graceful shutdown checkpointed mid-sweep: back on the
                # queue so the next start resumes it.
                job.state = QUEUED
            else:
                job.state = FAILED
                job.error = (f"sweep stopped with {summary.remaining} "
                             "points remaining")
            self.store.save(job)
        self._event("job-finished", job=job.id, state=job.state,
                    computed=summary.computed, remaining=summary.remaining,
                    failed=summary.failed)

    # ------------------------------------------------------------------

    def log_event(self, kind: str, **fields: Any) -> None:
        """Emit one structured log event (the HTTP layer logs its
        per-request lines through here too, so one ``log`` callable
        captures the daemon's whole stream)."""
        event = {"event": kind}
        event.update(fields)
        self._log(event)

    _event = log_event


def terminal(job: Job) -> bool:
    """True when ``job`` can never change state again."""
    return job.state in TERMINAL_STATES
