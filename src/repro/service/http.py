"""HTTP adapter for the sweep service: routing, limits, logging.

A deliberately thin layer over :class:`repro.service.service.SweepService`
built on the stdlib ``http.server`` (``ThreadingHTTPServer``) — no new
dependencies, one thread per connection, all shared state behind the
service's own lock.  Responsibilities:

* resolve requests against the documented route table
  (:data:`repro.service.schemas.ROUTES`) — 404 for unknown paths, 405
  (with ``Allow``) for known paths with the wrong method;
* enforce the request-body limits *before* reading: 411 without a
  ``Content-Length``, 413 over ``max_body_bytes``;
* decode scenario specs from JSON (default) or YAML (any
  ``Content-Type`` containing ``yaml``), mapping parse and validation
  failures to 400 with the validator's message;
* map service errors to status codes: ``UnknownJobError`` → 404,
  ``JobConflictError`` → 409, ``QueueFullError`` → 429;
* convert any *unexpected* handler exception into the structured
  ``internal_error`` document (500) plus a ``request-error`` log event
  — never a raw traceback on the socket;
* emit one structured log event per request (method, path, status,
  response bytes, wall-clock milliseconds).

Every JSON response is built through the ``payload_*`` helpers in
:mod:`repro.service.schemas`, so responses cannot drift from the
documented schemas tier-1 validates.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..scenarios import (ResultsStore, SpecError, format_csv,
                         format_markdown, parse_spec, summarize)
from ..scenarios.results import current_generator
from .schemas import (match_route, payload_error, payload_health,
                      payload_internal_error, payload_job, payload_jobs)
from .service import (JobConflictError, QueueFullError, SweepService,
                      UnknownJobError)


class SweepServer(ThreadingHTTPServer):
    """The daemon's HTTP server, bound to one :class:`SweepService`."""

    #: Connection threads die with the process; shutdown() is driven by
    #: the service lifecycle, not by per-connection joins.
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SweepService
                 ) -> None:
        super().__init__(address, SweepRequestHandler)
        self.service = service


def build_server(host: str, port: int, service: SweepService) -> SweepServer:
    """Bind the daemon's server (port 0 picks a free port — tests)."""
    return SweepServer((host, port), service)


class SweepRequestHandler(BaseHTTPRequestHandler):
    """Dispatches requests through the documented route table."""

    server: SweepServer
    #: Keep-alive responses; every send sets Content-Length explicitly.
    protocol_version = "HTTP/1.1"

    # -------------------------------------------------------------- verbs

    def do_GET(self) -> None:           # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:          # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:        # noqa: N802 - http.server API
        self._dispatch("DELETE")

    # -------------------------------------------------------- dispatching

    def _dispatch(self, method: str) -> None:
        started = time.monotonic()
        split = urlsplit(self.path)
        self._query = parse_qs(split.query)
        route, params, path_known = match_route(method, split.path)
        try:
            if route is None:
                if path_known:
                    allowed = sorted({r.method for r in _routes_for(
                        split.path)})
                    status, body, content_type = self._json_response(
                        405, payload_error(
                            f"method {method} not allowed here; "
                            f"allowed: {', '.join(allowed)}"),
                        extra_headers={"Allow": ", ".join(allowed)})
                else:
                    status, body, content_type = self._json_response(
                        404, payload_error(f"no route for {split.path}"))
            else:
                status, body, content_type = getattr(
                    self, route.handler)(params)
        except UnknownJobError as error:
            status, body, content_type = self._json_response(
                404, payload_error(f"unknown job {error.args[0]!r}"))
        except JobConflictError as error:
            status, body, content_type = self._json_response(
                409, payload_error(str(error)))
        except QueueFullError as error:
            status, body, content_type = self._json_response(
                429, payload_error(str(error)))
        except SpecError as error:  # reprolint: disable=RL007 - HTTP boundary: surfaced to the client as a 400 with the validator's message
            status, body, content_type = self._json_response(
                400, payload_error(f"invalid scenario: {error}"))
        except Exception as error:  # reprolint: disable=RL009 - last-resort HTTP boundary: an unexpected handler bug becomes a structured 500 plus a request-error event instead of a raw traceback on the socket
            status, body, content_type = self._json_response(
                500, payload_internal_error(error))
            self.server.service._event(
                "request-error", method=method, path=split.path,
                error=f"{type(error).__name__}: {error}")
        self._respond(status, body, content_type)
        elapsed_ms = (time.monotonic() - started) * 1000.0
        self.server.service._event(
            "request", method=method, path=split.path, status=status,
            bytes=len(body), ms=round(elapsed_ms, 3))

    # ----------------------------------------------------------- handlers

    def handle_healthz(self, params: Dict[str, str]) -> "_Prepared":
        service = self.server.service
        return self._json_response(200, payload_health(
            version=__version__, generator=current_generator(),
            counts=service.counts(),
            capacity=service.config.queue_depth,
            available=service.queue_available()))

    def handle_jobs(self, params: Dict[str, str]) -> "_Prepared":
        return self._json_response(
            200, payload_jobs(self.server.service.jobs()))

    def handle_submit(self, params: Dict[str, str]) -> "_Prepared":
        raw_spec, problem = self._read_spec_body()
        if problem is not None:
            return problem
        job = self.server.service.submit(raw_spec)
        return self._json_response(
            202, payload_job(job, self.server.service.sweep_summary(job)))

    def handle_job_detail(self, params: Dict[str, str]) -> "_Prepared":
        service = self.server.service
        job = service.get(params["id"])
        return self._json_response(
            200, payload_job(job, service.sweep_summary(job)))

    def handle_job_report(self, params: Dict[str, str]) -> "_Prepared":
        service = self.server.service
        job = service.get(params["id"])
        form = self._query.get("format", ["markdown"])[-1]
        if form not in ("markdown", "csv"):
            return self._json_response(400, payload_error(
                f"unknown report format {form!r}; "
                "use 'markdown' or 'csv'"))
        spec = parse_spec(job.raw_spec)
        summary = summarize(spec, ResultsStore(service.store.sweep_dir(
            job.id)))
        if form == "csv":
            return 200, format_csv(summary).encode(), "text/csv"
        return (200, format_markdown(summary).encode(),
                "text/markdown; charset=utf-8")

    def handle_cancel(self, params: Dict[str, str]) -> "_Prepared":
        service = self.server.service
        job = service.cancel(params["id"])
        return self._json_response(
            200, payload_job(job, service.sweep_summary(job)))

    # The /v1/dist/* routes live in the shared route table so the docs
    # and schema tests cover them, but they are served by a sweep
    # *coordinator* (repro sweep run --transport local|http), not by
    # this daemon — a worker pointed here gets a 409 explaining that.

    _DIST_NOT_HERE = ("distributed-sweep endpoints are served by a sweep "
                      "coordinator (repro sweep run --transport "
                      "local|http), not by this daemon")

    def handle_dist_lease(self, params: Dict[str, str]) -> "_Prepared":
        return self._json_response(409, payload_error(self._DIST_NOT_HERE))

    def handle_dist_records(self, params: Dict[str, str]) -> "_Prepared":
        return self._json_response(409, payload_error(self._DIST_NOT_HERE))

    def handle_dist_heartbeat(self, params: Dict[str, str]) -> "_Prepared":
        return self._json_response(409, payload_error(self._DIST_NOT_HERE))

    def handle_dist_traces(self, params: Dict[str, str]) -> "_Prepared":
        return self._json_response(409, payload_error(self._DIST_NOT_HERE))

    def handle_dist_trace_fetch(self, params: Dict[str, str]
                                ) -> "_Prepared":
        return self._json_response(409, payload_error(self._DIST_NOT_HERE))

    # ------------------------------------------------------------ plumbing

    def _read_spec_body(self
                        ) -> Tuple[Optional[Dict[str, Any]],
                                   Optional["_Prepared"]]:
        """Read and decode the submitted spec; (spec, None) on success,
        (None, prepared error response) otherwise."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return None, self._json_response(411, payload_error(
                "Content-Length required"))
        try:
            length = int(length_header)
        except ValueError:
            return None, self._json_response(400, payload_error(
                f"bad Content-Length {length_header!r}"))
        limit = self.server.service.config.max_body_bytes
        if length > limit:
            return None, self._json_response(413, payload_error(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit"))
        body = self.rfile.read(length)
        content_type = (self.headers.get("Content-Type") or "").lower()
        if "yaml" in content_type:
            try:
                import yaml
            except ImportError:
                return None, self._json_response(400, payload_error(
                    "YAML specs need pyyaml on the server; "
                    "submit JSON instead"))
            try:
                raw = yaml.safe_load(body.decode("utf-8", "replace"))
            except yaml.YAMLError as error:
                return None, self._json_response(400, payload_error(
                    f"body is not valid YAML: {error}"))
        else:
            try:
                raw = json.loads(body.decode("utf-8", "replace"))
            except json.JSONDecodeError as error:
                return None, self._json_response(400, payload_error(
                    f"body is not valid JSON: {error}"))
        if not isinstance(raw, dict):
            return None, self._json_response(400, payload_error(
                "spec body must decode to an object (the scenario "
                "mapping)"))
        return raw, None

    def _json_response(self, status: int, payload: Dict[str, Any],
                       extra_headers: Optional[Dict[str, str]] = None
                       ) -> "_Prepared":
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                ).encode()
        self._extra_headers = extra_headers or {}
        return status, body, "application/json"

    def _respond(self, status: int, body: bytes, content_type: str
                 ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in getattr(self, "_extra_headers", {}).items():
            self.send_header(name, value)
        self._extra_headers = {}
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence BaseHTTPRequestHandler's per-request stderr lines;
        the structured ``request`` event in ``_dispatch`` replaces
        them."""


#: (status, body bytes, content type) — a prepared response.
_Prepared = Tuple[int, bytes, str]


def _routes_for(path: str):
    from .schemas import ROUTES

    return [route for route in ROUTES if route.regex().match(path)]
