"""The sweep service's HTTP contract: route table and response schemas.

This module is the single source of truth the rest of the repo checks
itself against:

* :data:`ROUTES` — every (method, path pattern) the daemon serves.
  ``docs/api.md`` documents exactly these routes, and
  ``tests/test_docs.py`` asserts the two sets are equal, so a route
  added (or renamed) in code without a docs update fails tier-1 — the
  same parse-the-docs rigor the README command test applies.
* :data:`RESPONSE_SCHEMAS` — the exact top-level key set of every JSON
  payload the daemon emits, by schema name.  Handlers build payloads
  through the ``payload_*`` helpers here (so they cannot drift from the
  schema), service tests validate live responses with
  :func:`validate_payload`, and the docs test validates every JSON
  example in ``docs/api.md`` against the same schemas — giving the
  transitive guarantee *documented example ⇔ schema ⇔ live response*.

Path patterns use ``{id}`` placeholders; :func:`match_route` resolves a
concrete request path against the table.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

#: Characters a job id may contain (what :func:`repro.service.jobs`
#: generates); the route regex refuses anything else so traversal-ish
#: paths (``/v1/sweeps/../x``) fall through to 404.
_ID_PATTERN = r"[A-Za-z0-9][A-Za-z0-9_.-]*"


class Route(NamedTuple):
    """One service endpoint: HTTP method, documented path pattern, and
    the :class:`~repro.service.http` handler method name."""

    method: str
    pattern: str     #: e.g. ``/v1/sweeps/{id}/report``
    handler: str     #: handler method name on the HTTP layer
    schema: str      #: RESPONSE_SCHEMAS name of the success payload

    def regex(self) -> "re.Pattern[str]":
        parts = []
        for piece in re.split(r"(\{[a-z]+\})", self.pattern):
            if piece.startswith("{") and piece.endswith("}"):
                parts.append(f"(?P<{piece[1:-1]}>{_ID_PATTERN})")
            else:
                parts.append(re.escape(piece))
        return re.compile("^" + "".join(parts) + "$")


#: The complete route table, in documentation order.  The ``/v1/dist/*``
#: rows are the distributed-sweep coordinator's routes
#: (:mod:`repro.dist.http` — served by ``repro sweep run --transport
#: local|http``, not by the daemon, which answers them with 409); they
#: live in this table so the docs/schema/test coupling covers the whole
#: wire surface.
ROUTES: Tuple[Route, ...] = (
    Route("GET", "/v1/healthz", "handle_healthz", "health"),
    Route("GET", "/v1/jobs", "handle_jobs", "jobs"),
    Route("POST", "/v1/sweeps", "handle_submit", "job"),
    Route("GET", "/v1/sweeps/{id}", "handle_job_detail", "job"),
    Route("GET", "/v1/sweeps/{id}/report", "handle_job_report", "report"),
    Route("DELETE", "/v1/sweeps/{id}", "handle_cancel", "job"),
    Route("POST", "/v1/dist/lease", "handle_dist_lease", "lease"),
    Route("POST", "/v1/dist/records", "handle_dist_records", "ack"),
    Route("POST", "/v1/dist/heartbeat", "handle_dist_heartbeat", "ack"),
    Route("GET", "/v1/dist/traces", "handle_dist_traces", "traces"),
    Route("GET", "/v1/dist/traces/{key}", "handle_dist_trace_fetch",
          "trace-archive"),
)


def match_route(method: str, path: str
                ) -> Tuple[Optional[Route], Dict[str, str], bool]:
    """Resolve a request against :data:`ROUTES`.

    Returns ``(route, path_params, path_known)``: ``route`` is None when
    nothing matches; ``path_known`` is True when the *path* matches some
    route but the method does not (the 405 case, as opposed to 404).
    """
    path_known = False
    for route in ROUTES:
        found = route.regex().match(path)
        if found is None:
            continue
        path_known = True
        if route.method == method:
            return route, found.groupdict(), True
    return None, {}, path_known


# ---------------------------------------------------------------------------
# response schemas

#: Per-state job counts embedded in health and job payloads.
JOB_STATE_KEYS = frozenset({"queued", "running", "done", "degraded",
                            "failed", "cancelled"})

#: Key set of the nested ``sweep`` object of a job payload — exactly
#: the fields of :func:`repro.scenarios.report.status_summary` (the
#: ``repro sweep status --format json`` document).
SWEEP_SUMMARY_KEYS = frozenset({
    "scenario", "store", "points", "cores", "engine_variants",
    "computed", "failed", "missing", "stale", "foreign", "complete",
})

#: Exact top-level key set of every JSON document the daemon emits.
RESPONSE_SCHEMAS: Dict[str, frozenset] = {
    # one job: POST /v1/sweeps (202), GET/DELETE /v1/sweeps/{id}
    "job": frozenset({"id", "scenario", "state", "seq", "jobs", "error",
                      "failed_points", "sweep"}),
    # GET /v1/jobs
    "jobs": frozenset({"jobs", "count"}),
    # GET /v1/healthz
    "health": frozenset({"status", "version", "generator", "jobs",
                         "queue"}),
    # expected non-2xx bodies (validation, 404/405/409, bad JSON)
    "error": frozenset({"error"}),
    # unexpected handler exceptions (500): the structured last-resort
    # document, paired with a ``request-error`` service event
    "internal_error": frozenset({"error", "detail"}),
    # POST /v1/dist/lease — the coordinator's answer to a worker's
    # lease request ("granted" carries a task-lease wire document)
    "lease": frozenset({"state", "lease"}),
    # POST /v1/dist/records, POST /v1/dist/heartbeat — the
    # coordinator's acknowledgement ("stale" means the lease expired
    # and the task was requeued; the worker drops its copy)
    "ack": frozenset({"status", "lease"}),
    # GET /v1/dist/traces — the coordinator's trace-store listing
    # (every advertised archive's transfer identity, so a replica can
    # be audited against it).  GET /v1/dist/traces/{key} returns the
    # archive *bytes* (the "trace-archive" schema), which — like the
    # text "report" route — is deliberately not a JSON schema here.
    "traces": frozenset({"traces", "count", "generator"}),
}

#: Values of the "lease" document's ``state`` field: a task was leased,
#: nothing is available right now (poll again), or the sweep is over.
LEASE_STATES = frozenset({"granted", "idle", "drained"})

#: Values of the "ack" document's ``status`` field.
ACK_STATUSES = frozenset({"ok", "stale"})

#: Key set of the nested task-lease wire document of a granted "lease"
#: payload (:mod:`repro.dist.protocol` validates its interior).
LEASE_DOCUMENT_KEYS = frozenset({"type", "lease", "generator", "task"})

#: Key set of one entry of the ``jobs`` list in the "jobs" schema.
JOB_LIST_ENTRY_KEYS = frozenset({"id", "scenario", "state", "seq"})

#: Key set of one entry of the ``traces`` list in the "traces" schema:
#: the archive's store filename, byte size, and transfer SHA-256
#: (validated against :mod:`repro.dist.protocol`'s TraceAd decoder by
#: the fetch client).
TRACE_AD_KEYS = frozenset({"key", "size", "sha256"})

#: Key set of the ``queue`` object in the "health" schema.
QUEUE_KEYS = frozenset({"capacity", "available"})


class SchemaError(ValueError):
    """A payload does not match its declared response schema."""


def _require_keys(label: str, payload: Any, keys: frozenset) -> None:
    if not isinstance(payload, dict):
        raise SchemaError(f"{label} must be an object, got "
                          f"{type(payload).__name__}")
    actual = frozenset(payload)
    if actual != keys:
        missing = sorted(keys - actual)
        extra = sorted(actual - keys)
        raise SchemaError(f"{label} keys mismatch: missing {missing}, "
                          f"unexpected {extra}")


def validate_payload(schema: str, payload: Any) -> None:
    """Assert ``payload`` matches ``RESPONSE_SCHEMAS[schema]`` exactly
    (top-level keys, plus the documented nested objects).  Raises
    :class:`SchemaError` naming the divergence.  The "report" schema is
    text and "trace-archive" is raw archive bytes, not JSON —
    validating either here is a usage error.
    """
    if schema == "report":
        raise SchemaError("the report endpoint returns text, not JSON")
    if schema == "trace-archive":
        raise SchemaError("the trace-archive endpoint returns archive "
                          "bytes, not JSON")
    try:
        keys = RESPONSE_SCHEMAS[schema]
    except KeyError:
        raise SchemaError(f"unknown schema {schema!r}; known: "
                          f"{sorted(RESPONSE_SCHEMAS)}") from None
    _require_keys(schema, payload, keys)
    if schema == "job":
        if payload["sweep"] is not None:
            _require_keys("job.sweep", payload["sweep"], SWEEP_SUMMARY_KEYS)
        if payload["state"] not in JOB_STATE_KEYS:
            raise SchemaError(f"job.state {payload['state']!r} is not one "
                              f"of {sorted(JOB_STATE_KEYS)}")
    elif schema == "jobs":
        for index, entry in enumerate(payload["jobs"]):
            _require_keys(f"jobs[{index}]", entry, JOB_LIST_ENTRY_KEYS)
    elif schema == "health":
        _require_keys("health.jobs", payload["jobs"], JOB_STATE_KEYS)
        _require_keys("health.queue", payload["queue"], QUEUE_KEYS)
    elif schema == "lease":
        if payload["state"] not in LEASE_STATES:
            raise SchemaError(f"lease.state {payload['state']!r} is not "
                              f"one of {sorted(LEASE_STATES)}")
        if payload["state"] == "granted":
            _require_keys("lease.lease", payload["lease"],
                          LEASE_DOCUMENT_KEYS)
        elif payload["lease"] is not None:
            raise SchemaError("lease.lease must be null unless granted")
    elif schema == "ack":
        if payload["status"] not in ACK_STATUSES:
            raise SchemaError(f"ack.status {payload['status']!r} is not "
                              f"one of {sorted(ACK_STATUSES)}")
        if not isinstance(payload["lease"], str):
            raise SchemaError("ack.lease must be a lease-id string")
    elif schema == "traces":
        entries = payload["traces"]
        if not isinstance(entries, list):
            raise SchemaError("traces.traces must be a list")
        for index, entry in enumerate(entries):
            _require_keys(f"traces[{index}]", entry, TRACE_AD_KEYS)
        if payload["count"] != len(entries):
            raise SchemaError(f"traces.count {payload['count']!r} does "
                              f"not match the {len(entries)} entries")
        if not isinstance(payload["generator"], str):
            raise SchemaError("traces.generator must be the "
                              "coordinator's 12-char generator prefix")


# ---------------------------------------------------------------------------
# payload builders (handlers go through these, so they cannot drift)


def payload_error(message: str) -> Dict[str, Any]:
    return {"error": message}


def payload_internal_error(error: BaseException) -> Dict[str, Any]:
    """The "internal_error" document for an unexpected handler
    exception: a stable marker plus the exception type and message (no
    traceback — that goes to the server log, not the wire)."""
    return {
        "error": "internal server error",
        "detail": f"{type(error).__name__}: {error}",
    }


def payload_job(job: Any, sweep: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The "job" document for one :class:`repro.service.jobs.Job`."""
    return {
        "id": job.id,
        "scenario": job.scenario,
        "state": job.state,
        "seq": job.seq,
        "jobs": job.jobs,
        "error": job.error,
        "failed_points": job.failed_points,
        "sweep": sweep,
    }


def payload_jobs(jobs: List[Any]) -> Dict[str, Any]:
    """The "jobs" document over a seq-ordered job list."""
    return {
        "jobs": [
            {"id": job.id, "scenario": job.scenario, "state": job.state,
             "seq": job.seq}
            for job in jobs
        ],
        "count": len(jobs),
    }


def payload_lease(state: str, lease: Optional[Dict[str, Any]]
                  ) -> Dict[str, Any]:
    """The "lease" document: ``state`` ∈ :data:`LEASE_STATES`, with the
    task-lease wire document nested when granted."""
    return {"state": state, "lease": lease}


def payload_ack(status: str, lease: str) -> Dict[str, Any]:
    """The "ack" document: ``status`` ∈ :data:`ACK_STATUSES` for the
    named lease."""
    return {"status": status, "lease": lease}


def payload_traces(ads: List[Dict[str, Any]],
                   generator: str) -> Dict[str, Any]:
    """The "traces" document: every advertised archive's transfer
    identity (:data:`TRACE_AD_KEYS` entries) plus the coordinator's
    generator prefix."""
    return {"traces": ads, "count": len(ads), "generator": generator}


def payload_health(version: str, generator: str, counts: Dict[str, int],
                   capacity: int, available: int) -> Dict[str, Any]:
    """The "health" document."""
    return {
        "status": "ok",
        "version": version,
        "generator": generator,
        "jobs": {state: counts.get(state, 0)
                 for state in sorted(JOB_STATE_KEYS)},
        "queue": {"capacity": capacity, "available": available},
    }
