"""Job model and on-disk persistence for the sweep service.

One daemon *data directory* holds everything the service needs to
survive any kind of death::

    <data-dir>/
      jobs/<job-id>.json    one file per job: raw spec + state + error
      sweeps/<job-id>/      the job's sweep output directory — the very
                            same resumable append-only store layout
                            `repro sweep run --out` writes (results.jsonl,
                            baselines.jsonl, scenario.json)

Because the results store *is* the PR 4/5 content-hash-keyed resumable
store, crash recovery costs nothing extra: a daemon killed hard
(``kill -9``) and restarted on the same data directory re-enqueues
every job whose file says ``queued`` or ``running``, and re-running the
sweep skips every point that already has a record — zero recomputation,
by the same mechanism that makes a Ctrl-C'd CLI sweep resume.

Job identity is deterministic given submission order: a monotonically
increasing sequence number (max existing + 1, persisted in the job
file) plus a short content hash of the canonical spec JSON —
``job-000003-5f1c2ab4`` — so ids are stable across restarts, sortable,
and carry no wall-clock or ambient randomness.

State machine (also documented in docs/api.md)::

    queued --> running --> done
       |          |-----> degraded   (complete, but some points were
       |          |-----> failed      quarantined — see failed_points)
       |          '-----> queued     (graceful shutdown: checkpointed,
       '--> cancelled                 re-enqueued on the next start)

Writes are atomic (scratch file + ``os.replace``) so a torn job file
cannot exist; an unreadable job file is surfaced at load time rather
than silently dropped.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: The legal job states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
DEGRADED = "degraded"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, DEGRADED, FAILED, CANCELLED)

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, DEGRADED, FAILED, CANCELLED})


def spec_digest(raw_spec: Dict[str, Any]) -> str:
    """Short content hash of a raw spec dict (canonical JSON, 8 hex)."""
    payload = json.dumps(raw_spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:8]


@dataclass(slots=True)
class Job:
    """One submitted sweep: identity, raw spec, lifecycle state."""

    id: str
    seq: int                  #: submission sequence number (1-based)
    scenario: str             #: the spec's ``name`` field
    state: str
    raw_spec: Dict[str, Any]  #: the spec exactly as submitted
    jobs: int                 #: worker processes the sweep runs with
    error: Optional[str] = None
    #: Points computed across this job's run() invocations (operator
    #: visibility only; the store is the source of truth).
    computed: int = field(default=0)
    #: Points quarantined by the last run (``degraded`` terminal state;
    #: a resubmitted or rerun sweep retries exactly those points).
    failed_points: int = field(default=0)

    def to_json(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "seq": self.seq,
            "scenario": self.scenario,
            "state": self.state,
            "spec": self.raw_spec,
            "jobs": self.jobs,
            "error": self.error,
            "computed": self.computed,
            "failed_points": self.failed_points,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "Job":
        return cls(id=raw["id"], seq=raw["seq"], scenario=raw["scenario"],
                   state=raw["state"], raw_spec=raw["spec"],
                   jobs=raw["jobs"], error=raw.get("error"),
                   computed=raw.get("computed", 0),
                   failed_points=raw.get("failed_points", 0))


class JobStoreError(RuntimeError):
    """A job file exists but cannot be read back as a job."""


class JobStore:
    """The ``jobs/`` and ``sweeps/`` halves of a service data directory.

    Pure persistence — no locking, no queue semantics; the
    :class:`~repro.service.service.SweepService` serializes access.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def sweeps_dir(self) -> Path:
        return self.root / "sweeps"

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def sweep_dir(self, job_id: str) -> Path:
        """The job's sweep output directory (the resumable store root)."""
        return self.sweeps_dir / job_id

    # ------------------------------------------------------------------

    def create(self, raw_spec: Dict[str, Any], scenario: str,
               jobs: int) -> Job:
        """Mint a new queued job for ``raw_spec`` and persist it."""
        seq = self.next_seq()
        job_id = f"job-{seq:06d}-{spec_digest(raw_spec)}"
        job = Job(id=job_id, seq=seq, scenario=scenario, state=QUEUED,
                  raw_spec=raw_spec, jobs=jobs)
        self.save(job)
        return job

    def next_seq(self) -> int:
        """One past the highest sequence number on disk (1 when empty)."""
        highest = 0
        for job in self.load_all():
            highest = max(highest, job.seq)
        return highest + 1

    def save(self, job: Job) -> None:
        """Persist ``job`` atomically (scratch + replace)."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self.job_path(job.id)
        scratch = path.with_suffix(".json.tmp")
        scratch.write_text(json.dumps(job.to_json(), indent=2,
                                      sort_keys=True) + "\n")
        scratch.replace(path)

    def load(self, job_id: str) -> Optional[Job]:
        """The persisted job, or None when no such file exists."""
        try:
            text = self.job_path(job_id).read_text()
        except FileNotFoundError:
            return None
        return self._parse(self.job_path(job_id), text)

    def load_all(self) -> List[Job]:
        """Every persisted job, ordered by sequence number."""
        if not self.jobs_dir.is_dir():
            return []
        jobs = []
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            jobs.append(self._parse(path, path.read_text()))
        jobs.sort(key=lambda job: job.seq)
        return jobs

    @staticmethod
    def _parse(path: Path, text: str) -> Job:
        # A job file is written atomically, so a parse failure is real
        # corruption (disk fault, hand edit) — surface it loudly instead
        # of silently dropping a user's submitted sweep.
        try:
            raw = json.loads(text)
            job = Job.from_json(raw)
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise JobStoreError(f"unreadable job file {path}: "
                                f"{error}") from error
        if job.state not in STATES:
            raise JobStoreError(f"job file {path} has unknown state "
                                f"{job.state!r}")
        return job

    def recoverable(self) -> List[Job]:
        """Jobs a (re)starting daemon must put back on its queue:
        ``running`` first (they were in flight when the last process
        died — their stores already hold every checkpointed point),
        then ``queued``, each group in submission order."""
        pending = [job for job in self.load_all()
                   if job.state in (QUEUED, RUNNING)]
        pending.sort(key=lambda job: (0 if job.state == RUNNING else 1,
                                      job.seq))
        return pending
