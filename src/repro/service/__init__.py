"""``repro serve``: the resumable sweep-service daemon.

A long-running HTTP service that turns the scenario-sweep engine into
an operable evaluation service: submit a YAML/JSON scenario spec over
HTTP, get a job id, poll status, fetch the markdown/CSV report — while
a background worker drains the queue through the same resumable runner
(:func:`repro.scenarios.runner.run_sweep`) and persistent worker pool
the CLI uses, so a job's results store is byte-identical to the same
sweep run with ``repro sweep run``.

Layering (stdlib only — no new dependencies):

* :mod:`repro.service.schemas` — the HTTP contract: route table and
  response schemas, validated against ``docs/api.md`` by tier-1;
* :mod:`repro.service.jobs` — job model + on-disk persistence (one
  JSON file per job, sweep output in the PR 4/5 resumable store);
* :mod:`repro.service.service` — bounded queue, background worker,
  graceful shutdown, crash recovery;
* :mod:`repro.service.http` — ``ThreadingHTTPServer`` adapter: routing,
  body limits, error mapping, structured request logging.

The complete API reference (routes, payloads, state machine, error
codes, curl walkthrough) is ``docs/api.md``; design rationale is in
DESIGN.md ("Sweep service").
"""

from .http import SweepRequestHandler, SweepServer, build_server
from .jobs import Job, JobStore, JobStoreError
from .schemas import (ROUTES, RESPONSE_SCHEMAS, Route, SchemaError,
                      match_route, validate_payload)
from .service import (JobConflictError, QueueFullError, ServiceConfig,
                      SweepService, UnknownJobError)

__all__ = [
    "Job",
    "JobConflictError",
    "JobStore",
    "JobStoreError",
    "QueueFullError",
    "RESPONSE_SCHEMAS",
    "ROUTES",
    "Route",
    "SchemaError",
    "ServiceConfig",
    "SweepRequestHandler",
    "SweepServer",
    "SweepService",
    "UnknownJobError",
    "build_server",
    "match_route",
    "validate_payload",
]
