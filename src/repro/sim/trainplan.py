"""Precomputed PIF training schedule, shared across lanes of one trace.

PIF's training side runs the collapsed retire stream through a spatial
compactor and a temporal compactor before anything reaches the history
buffer (:mod:`repro.core.spatial`, :mod:`repro.core.temporal`).  The key
observation this module exploits: *every decision on that path is
independent of the lane*.  Region boundaries depend only on the retire
PC sequence, channel routing only on the retire trap levels, and the
temporal compactor's discard test only on (trigger PC, bit vector) —
never on the ``tagged`` flag, which is the single lane-dependent input
(it records whether the lane's cache covered the trigger fetch, and
decides index insertion plus the flag stored in the history record).

A sweep group replays one trace against N PIF lanes; recomputing the
compaction pipeline N times is therefore pure waste.  The *train plan*
runs that pipeline **once per (bundle, training configuration)** and
records, per retire index, what the training side will do there:

* ``open`` — a new spatial region opens; the lane must capture its
  current tagged flag for the eventual record;
* ``emit`` — the previously open region closes with a known
  (trigger PC, bit vector); the temporal verdict (record vs. discard)
  is precomputed, and the lane only has to append the record (with its
  captured tagged flag) to the history and, when tagged, insert the
  index entry.

The fused PIF walker in :mod:`repro.sim.engine` replays the plan with a
cursor, reducing per-retire training work from two compactor calls to an
integer comparison.  Bit-identity with the reference ``on_retire`` path
is locked by ``tests/sim/test_engine.py`` (PIF rides the standard
kernel-differential matrix) and ``tests/sim/test_trainplan.py``.

Plans are memoized in the bundle's :meth:`TraceBundle.derived_cache`
keyed by the training configuration, so shards and sweep points sharing
a trace inside one worker process build the plan once.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..common.addressing import RegionGeometry
from ..core.spatial import SpatialRegionRecord
from ..trace.bundle import TraceBundle


class PIFTrainPlan(NamedTuple):
    """The lane-independent training schedule of one retire stream.

    Parallel event arrays, one entry per retire index at which the
    training side acts (sorted ascending by ``at``; at most one event
    per retire index, since one retire record feeds one channel):

    * ``at`` — retire index the event fires at;
    * ``key`` — channel key (trap level, or 0 without separation);
    * ``trigger`` — closing region's trigger PC, or ``None`` for a pure
      *open* event (the first retire record a channel ever sees);
    * ``survives`` — temporal-compactor verdict for the closing region
      (always False for opens);
    * ``record_untagged`` / ``record_tagged`` — the history record the
      emission appends, prebuilt for both values of the lane-dependent
      tagged flag (``None`` for opens and for discarded emissions).
      Prebuilding shares the immutable record objects across every lane
      of a trace group, which also makes the SABs' shared block-decode
      memo hit across lanes.

    Every emit event implicitly re-opens a region at the same retire
    index (mirroring ``SpatialCompactor.feed``), so the replaying walker
    refreshes the channel's pending tagged flag on *every* event.
    """

    at: List[int]
    key: List[int]
    trigger: List[Optional[int]]
    survives: List[bool]
    record_untagged: List[Optional[SpatialRegionRecord]]
    record_tagged: List[Optional[SpatialRegionRecord]]


def build_train_plan(retire_pcs: List[int], retire_traps: List[int],
                     geometry: RegionGeometry, block_bytes: int,
                     separate_trap_levels: bool,
                     temporal_entries: int) -> PIFTrainPlan:
    """Run the spatial/temporal compaction pipeline once, recording the
    schedule (see module docstring).  ``tagged`` is fed as a constant
    because no decision on this path reads it.

    The compactor fast paths (:meth:`SpatialCompactor.feed`'s three-int
    geometry test, :meth:`TemporalCompactor.feed`'s peek/subset/promote)
    are inlined over per-channel local state — this builder runs once
    per (trace, training configuration) but still walks a couple of
    hundred thousand retire records; its output is locked against the
    real compactor objects by ``tests/sim/test_trainplan.py``.
    """
    from ..common.addressing import block_bits_for
    from ..common.lru import LRUCache

    block_bits = block_bits_for(block_bytes)
    preceding = geometry.preceding
    succeeding = geometry.succeeding
    #: channel key -> [trigger_pc, trigger_block, bits, LRU of recent
    #: records] (the spatial compactor's open region + temporal state).
    channels: Dict[int, List] = {}
    at: List[int] = []
    key: List[int] = []
    trigger: List[Optional[int]] = []
    survives: List[bool] = []
    record_untagged: List[Optional[SpatialRegionRecord]] = []
    record_tagged: List[Optional[SpatialRegionRecord]] = []
    at_append = at.append
    key_append = key.append
    trigger_append = trigger.append
    survives_append = survives.append
    untagged_append = record_untagged.append
    tagged_append = record_tagged.append
    index = -1
    for pc, trap_level in zip(retire_pcs, retire_traps):
        index += 1
        channel_key = trap_level if separate_trap_levels else 0
        state = channels.get(channel_key)
        if state is None:
            # First retire record of the channel: open-only event.
            channels[channel_key] = [pc, pc >> block_bits, 0,
                                     LRUCache(temporal_entries)]
            at_append(index)
            key_append(channel_key)
            trigger_append(None)
            survives_append(False)
            untagged_append(None)
            tagged_append(None)
            continue
        block = pc >> block_bits
        offset = block - state[1]
        if offset == 0:
            continue
        if -preceding <= offset <= succeeding:
            if offset > 0:
                offset -= 1
            state[2] |= 1 << (offset + preceding)
            continue
        # Region closes: emit (temporal verdict inlined), then re-open.
        region = SpatialRegionRecord(state[0], state[2], False)
        recent = state[3]
        if temporal_entries == 0:
            survived = True
        else:
            tracked = recent.peek(region.trigger_pc)
            if tracked is not None and region.bits & ~tracked.bits == 0:
                recent.promote(region.trigger_pc)
                survived = False
            else:
                recent.put(region.trigger_pc, region)
                survived = True
        at_append(index)
        key_append(channel_key)
        trigger_append(region.trigger_pc)
        survives_append(survived)
        if survived:
            untagged_append(region)
            tagged_append(SpatialRegionRecord(region.trigger_pc,
                                              region.bits, True))
        else:
            untagged_append(None)
            tagged_append(None)
        state[0] = pc
        state[1] = block
        state[2] = 0
    return PIFTrainPlan(at=at, key=key, trigger=trigger, survives=survives,
                        record_untagged=record_untagged,
                        record_tagged=record_tagged)


def train_plan_for(bundle: TraceBundle, geometry: RegionGeometry,
                   block_bytes: int, separate_trap_levels: bool,
                   temporal_entries: int) -> PIFTrainPlan:
    """The (memoized) train plan of ``bundle`` for one training
    configuration.

    Lookup order: the bundle's derived-value cache (all lanes, shards,
    and sweep points replaying this trace in one process share a single
    compaction pass), then the trace store's plan sidecar (warm sweeps
    across processes and runs skip the pass entirely), then a fresh
    build — which is persisted back to the sidecar.
    """
    params = (geometry.preceding, geometry.succeeding, block_bytes,
              separate_trap_levels, temporal_entries)
    cache_key = ("pif-train-plan",) + params
    derived = bundle.derived_cache()
    plan = derived.get(cache_key)
    if plan is None:
        plan = _load_sidecar(bundle, params)
    if plan is None:
        _, _, _, _, retire_pcs, retire_traps = bundle.decoded_columns()
        plan = build_train_plan(retire_pcs, retire_traps, geometry,
                                block_bytes, separate_trap_levels,
                                temporal_entries)
        _save_sidecar(bundle, params, plan)
    derived[cache_key] = plan
    return plan


# ---------------------------------------------------------------------------
# On-disk plan sidecar (under the trace store's ``plans/`` directory).
#
# Plans are pure derivations of the retire columns, so they are keyed by
# the bundle's *content hash* plus the training parameters — no
# generator-version stamp is needed (a regenerated trace has a new
# content hash, and identical content yields an identical plan).  The
# arrays are persisted as a compressed ``.npz`` (records rebuilt on
# load, which costs a fraction of the compaction pass); any unreadable
# or shape-inconsistent sidecar is deleted and treated as a miss.
# ``repro traces gc --all`` clears the directory (see trace/store.py).

#: Subdirectory of the trace store root holding plan sidecars.
PLANS_DIR = "plans"

_derivation_hash_cache: Optional[str] = None


def plan_derivation_hash() -> str:
    """Short digest over the sources that define the training schedule
    (the two compactors and this module).  Folded into every sidecar
    filename so a persisted plan can never outlive the compaction
    algorithm that derived it — editing those files makes old sidecars
    silently stop matching, like the trace store's generator hash."""
    global _derivation_hash_cache
    if _derivation_hash_cache is None:
        import hashlib
        from pathlib import Path

        here = Path(__file__).resolve()
        core = here.parent.parent / "core"
        digest = hashlib.sha256()
        for source in (core / "spatial.py", core / "temporal.py", here):
            digest.update(source.read_bytes())
            digest.update(b"\x00")
        _derivation_hash_cache = digest.hexdigest()[:8]
    return _derivation_hash_cache


def _plan_path(bundle: TraceBundle, params: tuple):
    """Sidecar path (a ``pathlib.Path``) for (bundle, params), or None
    when the trace store is disabled or the region shape cannot be
    packed (``trigger`` uses -1 as its None sentinel; ``bits`` must fit
    an int64)."""
    from ..trace.store import TraceStore

    preceding, succeeding = params[0], params[1]
    if preceding + succeeding > 62:
        return None
    store = TraceStore.from_env()
    if store is None:
        return None
    digest = ("-".join(str(part) for part in params)).replace(" ", "")
    return (store.root / PLANS_DIR
            / (f"{bundle.content_hash()[:24]}__{digest}"
               f"__d{plan_derivation_hash()}.npz"))


def _save_sidecar(bundle: TraceBundle, params: tuple,
                  plan: PIFTrainPlan) -> None:
    """Persist ``plan`` (atomic rename; best-effort — failures only
    cost the next process a rebuild)."""
    import os

    import numpy as np

    path = _plan_path(bundle, params)
    if path is None:
        return
    trigger = np.asarray([-1 if value is None else value
                          for value in plan.trigger], dtype=np.int64)
    bits = np.asarray([0 if record is None else record.bits
                       for record in plan.record_untagged], dtype=np.int64)
    scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(scratch, "wb") as handle:
            np.savez_compressed(
                handle,
                at=np.asarray(plan.at, dtype=np.int64),
                key=np.asarray(plan.key, dtype=np.int16),
                trigger=trigger,
                survives=np.asarray(plan.survives, dtype=np.bool_),
                bits=bits,
            )
        os.replace(scratch, path)
    except OSError:
        return
    finally:
        scratch.unlink(missing_ok=True)


def _load_sidecar(bundle: TraceBundle,
                  params: tuple) -> Optional[PIFTrainPlan]:
    """Load a persisted plan, rebuilding the record objects; unreadable
    or inconsistent sidecars are removed and reported as misses."""
    import numpy as np

    path = _plan_path(bundle, params)
    if path is None or not path.exists():
        return None
    from ..faults import fire

    fault = fire("plans.load", path.name)
    if fault is not None and fault.action == "corrupt":
        # Damage the cached plan in place: the load below must treat it
        # as a miss and the rebuild must overwrite it (self-heal).
        path.write_bytes(b"corrupted-by-fault-plan")
    try:
        with np.load(path) as archive:
            at = archive["at"].tolist()
            key = archive["key"].tolist()
            raw_trigger = archive["trigger"].tolist()
            survives = archive["survives"].tolist()
            bits = archive["bits"].tolist()
    except Exception:
        path.unlink(missing_ok=True)
        return None
    if not (len(at) == len(key) == len(raw_trigger) == len(survives)
            == len(bits)):
        path.unlink(missing_ok=True)
        return None
    # Rebuild the record objects at C speed: construct every row via
    # the tuple fast path (`_make`), then mask non-survivors/opens to
    # None.  ~10x faster than row-by-row keyword construction, which
    # would otherwise rival the compaction pass the sidecar replaces.
    from itertools import repeat

    make = SpatialRegionRecord._make
    all_untagged = list(map(make, zip(raw_trigger, bits, repeat(False))))
    all_tagged = list(map(make, zip(raw_trigger, bits, repeat(True))))
    trigger: List[Optional[int]] = [
        None if trigger_pc < 0 else trigger_pc
        for trigger_pc in raw_trigger]
    record_untagged: List[Optional[SpatialRegionRecord]] = [
        record if survived and record[0] >= 0 else None
        for record, survived in zip(all_untagged, survives)]
    record_tagged: List[Optional[SpatialRegionRecord]] = [
        record if survived and record[0] >= 0 else None
        for record, survived in zip(all_tagged, survives)]
    return PIFTrainPlan(at=at, key=key, trigger=trigger, survives=survives,
                        record_untagged=record_untagged,
                        record_tagged=record_tagged)
