"""Spatial-region characterization (Figures 3 and 8 left).

These studies run the retire stream through a *wide* observation
geometry — wider than the hardware would ever use — and histogram what
the regions look like: how many blocks each region touches (density),
whether the touched blocks are contiguous (discontinuity), and where
accesses fall relative to the trigger (the offset profile that justifies
the 2-preceding/5-succeeding skew).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from ..common.addressing import RegionGeometry
from ..core.spatial import SpatialRegionRecord, compact_stream
from ..trace.records import RetiredInstruction

#: Wide geometry used for characterization: 4 blocks preceding, 27
#: succeeding (32-block window, matching Figure 3's largest bucket).
WIDE_GEOMETRY = RegionGeometry(preceding=4, succeeding=27)

#: Geometry for the Figure 8 (left) offset profile: -4 .. +12.
OFFSET_GEOMETRY = RegionGeometry(preceding=4, succeeding=12)

#: Figure 3 density buckets: (label, lowest count, highest count).
DENSITY_BUCKETS: Tuple[Tuple[str, int, int], ...] = (
    ("1", 1, 1),
    ("2", 2, 2),
    ("3-4", 3, 4),
    ("5-8", 5, 8),
    ("9-16", 9, 16),
    ("17-32", 17, 32),
)

#: Figure 3 (right) discontinuity buckets over contiguous-group counts.
GROUP_BUCKETS: Tuple[Tuple[str, int, int], ...] = (
    ("1", 1, 1),
    ("2", 2, 2),
    ("3-4", 3, 4),
    ("5-8", 5, 8),
    ("9-16", 9, 16),
)


def regions_of(retires: Sequence[RetiredInstruction],
               geometry: RegionGeometry) -> List[SpatialRegionRecord]:
    """Compact a retire stream into region records under ``geometry``."""
    return list(compact_stream(((r.pc, False) for r in retires), geometry))


def _bucket_label(count: int,
                  buckets: Tuple[Tuple[str, int, int], ...]) -> str:
    for label, low, high in buckets:
        if low <= count <= high:
            return label
    return buckets[-1][0]


def density_distribution(retires: Sequence[RetiredInstruction],
                         geometry: RegionGeometry = WIDE_GEOMETRY
                         ) -> Dict[str, float]:
    """Figure 3 (left): fraction of regions per unique-block-count bucket."""
    counts: Counter = Counter()
    total = 0
    for record in regions_of(retires, geometry):
        blocks = record.block_count(geometry)
        counts[_bucket_label(blocks, DENSITY_BUCKETS)] += 1
        total += 1
    if total == 0:
        return {label: 0.0 for label, _, _ in DENSITY_BUCKETS}
    return {label: counts.get(label, 0) / total
            for label, _, _ in DENSITY_BUCKETS}


def contiguous_groups(record: SpatialRegionRecord,
                      geometry: RegionGeometry) -> int:
    """Number of contiguous block groups in a region (trigger included).

    A region touching blocks {-1, 0, 1, 4, 5} has two groups:
    [-1..1] and [4..5].  One group means a purely sequential region that
    a next-line prefetcher could cover; more groups are the carefully
    crafted skips of Figure 3 (right).
    """
    offsets = sorted(
        [0] + [geometry.offset_for_bit(i)
               for i in record.bit_vector(geometry).set_bits()])
    groups = 1
    for previous, current in zip(offsets, offsets[1:]):
        if current != previous + 1:
            groups += 1
    return groups


def discontinuity_distribution(retires: Sequence[RetiredInstruction],
                               geometry: RegionGeometry = WIDE_GEOMETRY
                               ) -> Dict[str, float]:
    """Figure 3 (right): fraction of regions per contiguous-group bucket."""
    counts: Counter = Counter()
    total = 0
    for record in regions_of(retires, geometry):
        groups = contiguous_groups(record, geometry)
        counts[_bucket_label(groups, GROUP_BUCKETS)] += 1
        total += 1
    if total == 0:
        return {label: 0.0 for label, _, _ in GROUP_BUCKETS}
    return {label: counts.get(label, 0) / total
            for label, _, _ in GROUP_BUCKETS}


def trigger_offset_profile(retires: Sequence[RetiredInstruction],
                           geometry: RegionGeometry = OFFSET_GEOMETRY
                           ) -> Dict[int, float]:
    """Figure 8 (left): access frequency by offset from the trigger.

    Returns {offset: fraction of all non-trigger region references},
    offsets from ``-geometry.preceding`` to ``+geometry.succeeding``
    excluding 0 (the trigger itself, by definition always accessed).
    """
    counts: Counter = Counter()
    total = 0
    for record in regions_of(retires, geometry):
        for bit in record.bit_vector(geometry).set_bits():
            offset = geometry.offset_for_bit(bit)
            counts[offset] += 1
            total += 1
    profile: Dict[int, float] = {}
    for offset in geometry.offsets():
        profile[offset] = counts.get(offset, 0) / total if total else 0.0
    return profile


def merge_distributions(distributions: Iterable[Dict[str, float]]
                        ) -> Dict[str, float]:
    """Average several per-core distributions into one."""
    merged: Dict[str, float] = {}
    count = 0
    for distribution in distributions:
        count += 1
        for key, value in distribution.items():
            merged[key] = merged.get(key, 0.0) + value
    if count == 0:
        return merged
    return {key: value / count for key, value in merged.items()}
