"""Single-pass multi-prefetcher simulation engine.

:func:`repro.sim.tracesim.run_prefetch_simulation` replays the whole
trace once per engine.  Every figure that compares N prefetchers (or N
sweep settings of one prefetcher) over the same trace therefore walked
the identical access stream N times — the dominant cost of the full
evaluation, since the walk is pure Python.

This module replays one trace bundle against N independent *lanes* in a
single walk.  Each lane owns its test cache and prefetch engine; lanes
never observe each other, and every lane sees exactly the request
sequence a standalone :func:`run_prefetch_simulation` call would feed
it, so the per-lane results are **bit-identical** to N sequential runs
(the equivalence test in ``tests/sim/test_engine.py`` locks this).

Two interchangeable kernels drive the lane walk:

* ``"fast"`` (the default) — the flat-array hot path.  The trace
  columns are decoded to plain Python lists once, then each lane runs a
  locals-bound walker over them: the 2-way LRU/FIFO geometry (the
  paper's L1-I) gets :func:`_walk_lane_inline2`, which inlines the
  cache probe/fill/prefetch directly over the cache's slot arrays with
  every counter in a local int, and every other geometry gets
  :func:`_walk_lane_generic` over the allocation-free ``access_fast``
  (an int result code — ``MISS``/``HIT``/``HIT_PREFETCHED`` — instead
  of an ``AccessResult`` object).  Prefetchers are driven through the
  buffer-reuse hook ``on_demand_access_into`` with a per-lane scratch
  list, so the steady-state loop allocates nothing per access.
* ``"reference"`` — the original object-model walk over
  :class:`~repro.cache.reference.ReferenceInstructionCache` with
  ``access()``/``on_demand_access()``, kept as the differentially
  tested semantics oracle (and the baseline the lane-walk benchmark
  measures speedup against).

Both kernels are locked bit-identical for every prefetcher × replacement
policy by ``tests/sim/test_engine.py``; ``REPRO_SIM_KERNEL`` overrides
the default for A/B runs of unmodified callers.

The no-prefetch baseline depends only on the access stream and the
cache configuration, so it does not ride the lane walk at all: each
distinct configuration is replayed once through the specialized
:func:`repro.sim.baseline.replay_baseline` pass over the bundle's raw
columns, with the warmup/per-level miss accounting vectorized by
:func:`repro.sim.baseline.count_measured_misses`.  Lanes sharing a
configuration share the one replay (and its ``CacheStats`` instance).
The lane walk itself iterates the columnar arrays as plain Python
scalars — no record objects are materialized.

Counter windows: ``prefetches_issued`` counts every issue over the whole
trace — the same (unwindowed) accounting as ``prefetcher.stats`` and the
caches' :class:`~repro.cache.stats.CacheStats` — while the miss counts
remain restricted to the post-warmup measurement window.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from ..cache.icache import InstructionCache
from ..cache.reference import ReferenceInstructionCache
from ..common.config import CacheConfig
from ..common.profiling import STAGE_BASELINE, STAGE_LANE_WALK, stage
from ..prefetch.base import Prefetcher, demand_access_hook
from ..prefetch.discontinuity import DiscontinuityPrefetcher
from ..prefetch.nextline import NextLinePrefetcher
from ..prefetch.stride import StridePrefetcher
from ..trace.bundle import TraceBundle
from .baseline import count_measured_misses, replay_baseline
from .tracesim import PrefetchSimResult

#: Lane-walk kernels; ``REPRO_SIM_KERNEL`` selects the default.
KERNELS = ("fast", "reference")


def resolve_kernel(kernel: Optional[str]) -> str:
    """Normalize a kernel selector (None -> environment -> "fast")."""
    if kernel is None:
        kernel = os.environ.get("REPRO_SIM_KERNEL") or "fast"
    if kernel not in KERNELS:
        raise ValueError(f"unknown simulation kernel {kernel!r}; "
                         f"choices: {KERNELS}")
    return kernel


class _Lane:
    """One (prefetcher, test cache) pair riding the shared trace walk."""

    __slots__ = ("prefetcher", "cache", "baseline", "remaining_misses",
                 "per_level_remaining", "prefetches_issued")

    def __init__(self, prefetcher: Prefetcher, cache,
                 baseline: "_Baseline") -> None:
        self.prefetcher = prefetcher
        self.cache = cache
        self.baseline = baseline
        self.remaining_misses = 0
        self.per_level_remaining: Dict[int, int] = {}
        self.prefetches_issued = 0


class _Baseline:
    """The no-prefetch miss accounting shared by every lane with one
    configuration, computed by the vectorized baseline replay."""

    __slots__ = ("stats", "misses", "per_level")

    def __init__(self, bundle: TraceBundle, config: CacheConfig,
                 warmup_fraction: float) -> None:
        replay = replay_baseline(bundle, config)
        self.stats = replay.stats
        self.misses, self.per_level = count_measured_misses(
            bundle, replay.hits, warmup_fraction)


def _retire_hook(prefetcher: Prefetcher):
    """The prefetcher's retire hook, or None when it is the base no-op
    (saving a Python call per correct-path access for fetch-side
    engines)."""
    if type(prefetcher).on_retire is Prefetcher.on_retire:
        return None
    return prefetcher.on_retire


def _walk_lane_inline2(lane: _Lane, blocks, pcs, trap_levels, wrong_paths,
                       retire_pcs, retire_traps,
                       retire_cursor: int, measuring: bool) -> int:
    """One lane's walk over an access slice, 2-way LRU/FIFO cache inlined.

    This is the innermost loop of the whole reproduction, specialized
    for the paper's cache geometry (2 ways, MRU-byte recency): the
    demand probe, fill, and prefetch install operate directly on the
    cache's flat slot arrays as local variables, and every counter
    accumulates in a local int, flushed into ``CacheStats`` once per
    slice.  State layout and transition order mirror
    ``InstructionCache.access_fast``/``prefetch`` exactly; the
    differential suite pins this walker to the reference engine for
    every prefetcher.

    ``measuring`` folds the warmup window out of the per-access branch
    work: the caller runs the warmup slice with it False and the
    measurement slice with it True.  Returns the advanced retire cursor.
    """
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    into = demand_access_hook(prefetcher)
    on_retire = _retire_hook(prefetcher)
    out: List[int] = []
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued_total = 0
    for block, pc, trap_level, wrong_path in zip(blocks, pcs, trap_levels,
                                                 wrong_paths):
        # -- demand access (InstructionCache.access_fast, inlined) --
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
                code = 2
            else:
                flags[slot] = state | 2
                code = 1
        else:
            demand_misses += 1
            code = 0
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        # -- prefetcher hook + prefetch installs (prefetch(), inlined) --
        count = into(block, pc, trap_level, code != 0, code == 2, out)
        if count:
            issued_total += count
            for candidate in out:
                requests += 1
                cindex = candidate % n_sets
                cslot = cindex + cindex
                if tags[cslot] == candidate or tags[cslot + 1] == candidate:
                    drops += 1
                    continue
                if tags[cslot] is not None:
                    if tags[cslot + 1] is not None:
                        cslot += 1 - mru[cindex]
                        evictions += 1
                        if flags[cslot] == 1:
                            evicted_unused += 1
                    else:
                        cslot += 1
                tags[cslot] = candidate
                flags[cslot] = 1
                mru[cindex] = cslot & 1
                fills += 1
            del out[:]
        if not wrong_path:
            if on_retire is not None:
                on_retire(retire_pcs[retire_cursor],
                          retire_traps[retire_cursor], code != 2)
            retire_cursor += 1
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued_total
    return retire_cursor


def _walk_lane_inline2_nextline(lane: _Lane, blocks, pcs, trap_levels,
                                wrong_paths, retire_pcs, retire_traps,
                                retire_cursor: int, measuring: bool) -> int:
    """:func:`_walk_lane_inline2` with the next-line engine fused in.

    The three classic fetch-side baselines (next-line, stride,
    discontinuity) have per-access bodies of a few lines and no retire
    hook, so the walk inlines them next to the cache operations instead
    of paying a Python call per access; their learned state lives in
    locals for the slice and is written back at the end.  Semantics are
    exactly :meth:`NextLinePrefetcher.on_demand_access_into`.
    """
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    degree = prefetcher.degree
    miss_only = prefetcher._miss_only
    last_triggered = prefetcher._last_triggered
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued = triggers = 0
    for block, trap_level, wrong_path in zip(blocks, trap_levels,
                                             wrong_paths):
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            hit = True
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
            else:
                flags[slot] = state | 2
        else:
            hit = False
            demand_misses += 1
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        if not (hit and miss_only) and block != last_triggered:
            last_triggered = block
            triggers += 1
            issued += degree
            for candidate in range(block + 1, block + degree + 1):
                requests += 1
                cindex = candidate % n_sets
                cslot = cindex + cindex
                if tags[cslot] == candidate or tags[cslot + 1] == candidate:
                    drops += 1
                    continue
                if tags[cslot] is not None:
                    if tags[cslot + 1] is not None:
                        cslot += 1 - mru[cindex]
                        evictions += 1
                        if flags[cslot] == 1:
                            evicted_unused += 1
                    else:
                        cslot += 1
                tags[cslot] = candidate
                flags[cslot] = 1
                mru[cindex] = cslot & 1
                fills += 1
        if not wrong_path:
            retire_cursor += 1
    prefetcher._last_triggered = last_triggered
    pf_stats = prefetcher.stats
    pf_stats.triggers += triggers
    pf_stats.issued += issued
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued
    return retire_cursor


def _walk_lane_inline2_stride(lane: _Lane, blocks, pcs, trap_levels,
                              wrong_paths, retire_pcs, retire_traps,
                              retire_cursor: int, measuring: bool) -> int:
    """:func:`_walk_lane_inline2` with the stride engine fused in
    (semantics of :meth:`StridePrefetcher.on_demand_access_into`)."""
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    degree = prefetcher.degree
    last_block = prefetcher._last_block
    last_stride = prefetcher._last_stride
    confirmed = prefetcher._confirmed
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued = triggers = 0
    for block, trap_level, wrong_path in zip(blocks, trap_levels,
                                             wrong_paths):
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
            else:
                flags[slot] = state | 2
        else:
            demand_misses += 1
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        if block != last_block:
            if last_block is not None:
                stride = block - last_block
                if stride == last_stride and stride != 0:
                    confirmed = True
                elif last_stride is not None:
                    confirmed = False
                last_stride = stride
                if confirmed:
                    triggers += 1
                    issued += degree
                    for step in range(1, degree + 1):
                        candidate = block + stride * step
                        requests += 1
                        cindex = candidate % n_sets
                        cslot = cindex + cindex
                        if (tags[cslot] == candidate
                                or tags[cslot + 1] == candidate):
                            drops += 1
                            continue
                        if tags[cslot] is not None:
                            if tags[cslot + 1] is not None:
                                cslot += 1 - mru[cindex]
                                evictions += 1
                                if flags[cslot] == 1:
                                    evicted_unused += 1
                            else:
                                cslot += 1
                        tags[cslot] = candidate
                        flags[cslot] = 1
                        mru[cindex] = cslot & 1
                        fills += 1
            last_block = block
        if not wrong_path:
            retire_cursor += 1
    prefetcher._last_block = last_block
    prefetcher._last_stride = last_stride
    prefetcher._confirmed = confirmed
    pf_stats = prefetcher.stats
    pf_stats.triggers += triggers
    pf_stats.issued += issued
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued
    return retire_cursor


def _walk_lane_inline2_discontinuity(lane: _Lane, blocks, pcs, trap_levels,
                                     wrong_paths, retire_pcs, retire_traps,
                                     retire_cursor: int,
                                     measuring: bool) -> int:
    """:func:`_walk_lane_inline2` with the discontinuity engine fused in
    (semantics of :meth:`DiscontinuityPrefetcher.on_demand_access_into`)."""
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    nl_degree = prefetcher.next_line_degree
    table_get = prefetcher._table.get
    table_put = prefetcher._table.put
    previous = prefetcher._previous_block
    out: List[int] = []
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued = triggers = 0
    for block, trap_level, wrong_path in zip(blocks, trap_levels,
                                             wrong_paths):
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            hit = True
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
            else:
                flags[slot] = state | 2
        else:
            hit = False
            demand_misses += 1
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        if previous is not None and previous != block:
            if not hit and block != previous + 1:
                table_put(previous, block)
            target = table_get(block)
            triggers += 1
            for candidate in range(block + 1, block + nl_degree + 1):
                out.append(candidate)
            if target is not None:
                out.append(target)
                out.append(target + 1)
            issued += len(out)
            for candidate in out:
                requests += 1
                cindex = candidate % n_sets
                cslot = cindex + cindex
                if tags[cslot] == candidate or tags[cslot + 1] == candidate:
                    drops += 1
                    continue
                if tags[cslot] is not None:
                    if tags[cslot + 1] is not None:
                        cslot += 1 - mru[cindex]
                        evictions += 1
                        if flags[cslot] == 1:
                            evicted_unused += 1
                    else:
                        cslot += 1
                tags[cslot] = candidate
                flags[cslot] = 1
                mru[cindex] = cslot & 1
                fills += 1
            del out[:]
        previous = block
        if not wrong_path:
            retire_cursor += 1
    prefetcher._previous_block = previous
    pf_stats = prefetcher.stats
    pf_stats.triggers += triggers
    pf_stats.issued += issued
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued
    return retire_cursor


#: Fetch-side engines whose per-access logic is fused into a
#: specialized 2-way walker.  Exact types only: a subclass may change
#: behaviour, so it falls back to the hook-driven walker.
_FUSED_WALKERS = {
    NextLinePrefetcher: _walk_lane_inline2_nextline,
    StridePrefetcher: _walk_lane_inline2_stride,
    DiscontinuityPrefetcher: _walk_lane_inline2_discontinuity,
}


def _select_walker(lane: _Lane):
    """Pick the most specialized fast walker this lane supports."""
    if lane.cache._mru is None:
        return _walk_lane_generic
    return _FUSED_WALKERS.get(type(lane.prefetcher), _walk_lane_inline2)


def _walk_lane_generic(lane: _Lane, blocks, pcs, trap_levels, wrong_paths,
                       retire_pcs, retire_traps,
                       retire_cursor: int, measuring: bool) -> int:
    """One lane's walk for any cache geometry/policy, through the
    allocation-free ``access_fast``/``prefetch`` methods."""
    cache = lane.cache
    access_fast = cache.access_fast
    prefetch = cache.prefetch
    prefetcher = lane.prefetcher
    into = demand_access_hook(prefetcher)
    on_retire = _retire_hook(prefetcher)
    out: List[int] = []
    per_level = lane.per_level_remaining
    for block, pc, trap_level, wrong_path in zip(blocks, pcs, trap_levels,
                                                 wrong_paths):
        code = access_fast(block)
        if code == 0 and measuring and not wrong_path:
            lane.remaining_misses += 1
            per_level[trap_level] = per_level.get(trap_level, 0) + 1
        count = into(block, pc, trap_level, code != 0, code == 2, out)
        if count:
            lane.prefetches_issued += count
            for candidate in out:
                prefetch(candidate)
            del out[:]
        if not wrong_path:
            if on_retire is not None:
                on_retire(retire_pcs[retire_cursor],
                          retire_traps[retire_cursor], code != 2)
            retire_cursor += 1
    return retire_cursor


def _walk_reference(lanes: List[_Lane], blocks, pcs, trap_levels,
                    wrong_paths, retire_pcs, retire_traps,
                    warmup_boundary: int) -> int:
    """The original object-model lane walk (semantics oracle)."""
    retire_cursor = 0
    for position, (block, pc, trap_level, wrong_path) in enumerate(
            zip(blocks, pcs, trap_levels, wrong_paths)):
        measuring = position >= warmup_boundary
        correct_path = not wrong_path
        retire_pc = retire_trap = None
        if correct_path:
            retire_pc = retire_pcs[retire_cursor]
            retire_trap = retire_traps[retire_cursor]
            retire_cursor += 1
        for lane in lanes:
            test_result = lane.cache.access(block)
            if correct_path and measuring and not test_result.hit:
                lane.remaining_misses += 1
                lane.per_level_remaining[trap_level] = (
                    lane.per_level_remaining.get(trap_level, 0) + 1)
            candidates = lane.prefetcher.on_demand_access(
                block, pc, trap_level,
                test_result.hit, test_result.was_prefetched)
            for candidate in candidates:
                lane.prefetches_issued += 1
                lane.cache.prefetch(candidate)
            if retire_pc is not None:
                lane.prefetcher.on_retire(retire_pc, retire_trap,
                                          tagged=test_result.tagged)
    return retire_cursor


def run_multi_prefetch_simulation(
    bundle: TraceBundle,
    prefetchers: Sequence[Prefetcher],
    cache_config: Optional[CacheConfig] = None,
    warmup_fraction: float = 0.25,
    cache_configs: Optional[Sequence[Optional[CacheConfig]]] = None,
    kernel: Optional[str] = None,
) -> List[PrefetchSimResult]:
    """Simulate every prefetcher over ``bundle`` in one trace walk.

    Arguments mirror :func:`repro.sim.tracesim.run_prefetch_simulation`;
    ``cache_config`` applies to every lane unless ``cache_configs``
    supplies a per-lane override (``None`` entries fall back to
    ``cache_config``).  ``kernel`` selects the lane-walk implementation
    (``"fast"``/``"reference"``; None reads ``REPRO_SIM_KERNEL`` and
    falls back to the fast kernel — results are bit-identical either
    way).  Returns one :class:`PrefetchSimResult` per prefetcher, in
    input order, each identical to what a standalone sequential run of
    that engine would have produced.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if cache_configs is not None and len(cache_configs) != len(prefetchers):
        raise ValueError("cache_configs must match prefetchers in length")
    kernel = resolve_kernel(kernel)
    cache_class = (InstructionCache if kernel == "fast"
                   else ReferenceInstructionCache)
    default_config = cache_config if cache_config is not None else CacheConfig()

    baselines: Dict[CacheConfig, _Baseline] = {}
    lanes: List[_Lane] = []
    with stage(STAGE_BASELINE):
        for position, prefetcher in enumerate(prefetchers):
            lane_config = default_config
            if cache_configs is not None and cache_configs[position] is not None:
                lane_config = cache_configs[position]
            baseline = baselines.get(lane_config)
            if baseline is None:
                baseline = _Baseline(bundle, lane_config, warmup_fraction)
                baselines[lane_config] = baseline
            lanes.append(_Lane(prefetcher, cache_class(lane_config),
                               baseline))

    blocks = bundle.access_block.tolist()
    pcs = bundle.access_pc.tolist()
    trap_levels = bundle.access_trap.tolist()
    wrong_paths = bundle.access_wrong_path.tolist()
    retire_pcs = bundle.retire_pc.tolist()
    retire_traps = bundle.retire_trap.tolist()
    warmup_boundary = int(len(blocks) * warmup_fraction)

    if lanes:
        with stage(STAGE_LANE_WALK):
            if kernel == "fast":
                warm = (blocks[:warmup_boundary], pcs[:warmup_boundary],
                        trap_levels[:warmup_boundary],
                        wrong_paths[:warmup_boundary])
                measured = (blocks[warmup_boundary:], pcs[warmup_boundary:],
                            trap_levels[warmup_boundary:],
                            wrong_paths[warmup_boundary:])
                for lane in lanes:
                    walker = _select_walker(lane)
                    retire_cursor = walker(lane, *warm, retire_pcs,
                                           retire_traps, 0, False)
                    retire_cursor = walker(lane, *measured, retire_pcs,
                                           retire_traps, retire_cursor, True)
                    if retire_cursor != len(retire_pcs):
                        raise RuntimeError(
                            "access/retire alignment broken: lane "
                            f"{lane.prefetcher.name!r} consumed "
                            f"{retire_cursor} of {len(retire_pcs)} "
                            "retire records"
                        )
            else:
                retire_cursor = _walk_reference(
                    lanes, blocks, pcs, trap_levels, wrong_paths,
                    retire_pcs, retire_traps, warmup_boundary)
                if retire_cursor != len(retire_pcs):
                    raise RuntimeError(
                        "access/retire alignment broken: consumed "
                        f"{retire_cursor} of {len(retire_pcs)} retire records"
                    )

    return [
        PrefetchSimResult(
            workload=bundle.workload,
            prefetcher=lane.prefetcher.name,
            instructions=bundle.instructions,
            baseline_misses=lane.baseline.misses,
            remaining_misses=lane.remaining_misses,
            per_level_baseline=dict(lane.baseline.per_level),
            per_level_remaining=lane.per_level_remaining,
            prefetches_issued=lane.prefetches_issued,
            cache_stats=lane.cache.stats,
            baseline_stats=lane.baseline.stats,
        )
        for lane in lanes
    ]
