"""Single-pass multi-prefetcher simulation engine.

:func:`repro.sim.tracesim.run_prefetch_simulation` replays the whole
trace once per engine.  Every figure that compares N prefetchers (or N
sweep settings of one prefetcher) over the same trace therefore walked
the identical access stream N times — the dominant cost of the full
evaluation, since the walk is pure Python.

This module replays one trace bundle against N independent *lanes* in a
single walk.  Each lane owns its test cache and prefetch engine; lanes
never observe each other, and every lane sees exactly the request
sequence a standalone :func:`run_prefetch_simulation` call would feed
it, so the per-lane results are **bit-identical** to N sequential runs
(the equivalence test in ``tests/sim/test_engine.py`` locks this).

The no-prefetch baseline depends only on the access stream and the
cache configuration, so it does not ride the lane walk at all: each
distinct configuration is replayed once through the specialized
:func:`repro.sim.baseline.replay_baseline` pass over the bundle's raw
columns, with the warmup/per-level miss accounting vectorized by
:func:`repro.sim.baseline.count_measured_misses`.  Lanes sharing a
configuration share the one replay (and its ``CacheStats`` instance).
The lane walk itself iterates the columnar arrays as plain Python
scalars — no record objects are materialized.

Counter windows: ``prefetches_issued`` counts every issue over the whole
trace — the same (unwindowed) accounting as ``prefetcher.stats`` and the
caches' :class:`~repro.cache.stats.CacheStats` — while the miss counts
remain restricted to the post-warmup measurement window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cache.icache import InstructionCache
from ..common.config import CacheConfig
from ..prefetch.base import Prefetcher
from ..trace.bundle import TraceBundle
from .baseline import count_measured_misses, replay_baseline
from .tracesim import PrefetchSimResult


class _Lane:
    """One (prefetcher, test cache) pair riding the shared trace walk."""

    __slots__ = ("prefetcher", "cache", "baseline", "remaining_misses",
                 "per_level_remaining", "prefetches_issued")

    def __init__(self, prefetcher: Prefetcher, cache: InstructionCache,
                 baseline: "_Baseline") -> None:
        self.prefetcher = prefetcher
        self.cache = cache
        self.baseline = baseline
        self.remaining_misses = 0
        self.per_level_remaining: Dict[int, int] = {}
        self.prefetches_issued = 0


class _Baseline:
    """The no-prefetch miss accounting shared by every lane with one
    configuration, computed by the vectorized baseline replay."""

    __slots__ = ("stats", "misses", "per_level")

    def __init__(self, bundle: TraceBundle, config: CacheConfig,
                 warmup_fraction: float) -> None:
        replay = replay_baseline(bundle, config)
        self.stats = replay.stats
        self.misses, self.per_level = count_measured_misses(
            bundle, replay.hits, warmup_fraction)


def run_multi_prefetch_simulation(
    bundle: TraceBundle,
    prefetchers: Sequence[Prefetcher],
    cache_config: Optional[CacheConfig] = None,
    warmup_fraction: float = 0.25,
    cache_configs: Optional[Sequence[Optional[CacheConfig]]] = None,
) -> List[PrefetchSimResult]:
    """Simulate every prefetcher over ``bundle`` in one trace walk.

    Arguments mirror :func:`repro.sim.tracesim.run_prefetch_simulation`;
    ``cache_config`` applies to every lane unless ``cache_configs``
    supplies a per-lane override (``None`` entries fall back to
    ``cache_config``).  Returns one :class:`PrefetchSimResult` per
    prefetcher, in input order, each identical to what a standalone
    sequential run of that engine would have produced.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if cache_configs is not None and len(cache_configs) != len(prefetchers):
        raise ValueError("cache_configs must match prefetchers in length")
    default_config = cache_config if cache_config is not None else CacheConfig()

    baselines: Dict[CacheConfig, _Baseline] = {}
    lanes: List[_Lane] = []
    for position, prefetcher in enumerate(prefetchers):
        lane_config = default_config
        if cache_configs is not None and cache_configs[position] is not None:
            lane_config = cache_configs[position]
        baseline = baselines.get(lane_config)
        if baseline is None:
            baseline = _Baseline(bundle, lane_config, warmup_fraction)
            baselines[lane_config] = baseline
        lanes.append(_Lane(prefetcher, InstructionCache(lane_config),
                           baseline))

    blocks = bundle.access_block.tolist()
    pcs = bundle.access_pc.tolist()
    trap_levels = bundle.access_trap.tolist()
    wrong_paths = bundle.access_wrong_path.tolist()
    retire_pcs = bundle.retire_pc.tolist()
    retire_traps = bundle.retire_trap.tolist()
    warmup_boundary = int(len(blocks) * warmup_fraction)

    retire_cursor = 0
    if lanes:
        for position, (block, pc, trap_level, wrong_path) in enumerate(
                zip(blocks, pcs, trap_levels, wrong_paths)):
            measuring = position >= warmup_boundary
            correct_path = not wrong_path
            retire_pc = retire_trap = None
            if correct_path:
                retire_pc = retire_pcs[retire_cursor]
                retire_trap = retire_traps[retire_cursor]
                retire_cursor += 1
            for lane in lanes:
                test_result = lane.cache.access(block)
                if correct_path and measuring and not test_result.hit:
                    lane.remaining_misses += 1
                    lane.per_level_remaining[trap_level] = (
                        lane.per_level_remaining.get(trap_level, 0) + 1)
                candidates = lane.prefetcher.on_demand_access(
                    block, pc, trap_level,
                    test_result.hit, test_result.was_prefetched)
                for candidate in candidates:
                    lane.prefetches_issued += 1
                    lane.cache.prefetch(candidate)
                if retire_pc is not None:
                    lane.prefetcher.on_retire(retire_pc, retire_trap,
                                              tagged=test_result.tagged)

        if retire_cursor != len(retire_pcs):
            raise RuntimeError(
                "access/retire alignment broken: consumed "
                f"{retire_cursor} of {len(retire_pcs)} retire records"
            )

    return [
        PrefetchSimResult(
            workload=bundle.workload,
            prefetcher=lane.prefetcher.name,
            instructions=bundle.instructions,
            baseline_misses=lane.baseline.misses,
            remaining_misses=lane.remaining_misses,
            per_level_baseline=dict(lane.baseline.per_level),
            per_level_remaining=lane.per_level_remaining,
            prefetches_issued=lane.prefetches_issued,
            cache_stats=lane.cache.stats,
            baseline_stats=lane.baseline.stats,
        )
        for lane in lanes
    ]
