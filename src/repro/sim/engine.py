"""Single-pass multi-prefetcher simulation engine.

:func:`repro.sim.tracesim.run_prefetch_simulation` replays the whole
trace once per engine.  Every figure that compares N prefetchers (or N
sweep settings of one prefetcher) over the same trace therefore walked
the identical access stream N times — the dominant cost of the full
evaluation, since the walk is pure Python.

This module replays one trace bundle against N independent *lanes* in a
single walk.  Each lane owns its test cache and prefetch engine; lanes
never observe each other, and every lane sees exactly the request
sequence a standalone :func:`run_prefetch_simulation` call would feed
it, so the per-lane results are **bit-identical** to N sequential runs
(the equivalence test in ``tests/sim/test_engine.py`` locks this).

Two interchangeable kernels drive the lane walk:

* ``"fast"`` (the default) — the flat-array hot path.  The trace
  columns are decoded to plain Python lists once per bundle (cached in
  the bundle's derived-value cache, so lane shards re-walking one trace
  share the decode), then each lane runs a locals-bound walker over
  them: the 2-way LRU/FIFO geometry (the paper's L1-I) gets
  :func:`_walk_lane_inline2`, which inlines the cache
  probe/fill/prefetch directly over the cache's slot arrays with
  every counter in a local int; the classic fetch-side engines and PIF
  get walkers with the engine fused in (PIF's replays the shared
  :mod:`~repro.sim.trainplan` schedule instead of running the
  compactors per lane); and every other geometry gets
  :func:`_walk_lane_generic` over the allocation-free ``access_fast``
  (an int result code — ``MISS``/``HIT``/``HIT_PREFETCHED`` — instead
  of an ``AccessResult`` object).  Prefetchers are driven through the
  buffer-reuse hook ``on_demand_access_into`` with a per-lane scratch
  list, so the steady-state loop allocates nothing per access.
* ``"reference"`` — the original object-model walk over
  :class:`~repro.cache.reference.ReferenceInstructionCache` with
  ``access()``/``on_demand_access()``, kept as the differentially
  tested semantics oracle (and the baseline the lane-walk benchmark
  measures speedup against).

Both kernels are locked bit-identical for every prefetcher × replacement
policy by ``tests/sim/test_engine.py``; ``REPRO_SIM_KERNEL`` overrides
the default for A/B runs of unmodified callers.

The no-prefetch baseline depends only on the access stream and the
cache configuration, so it does not ride the lane walk at all: each
distinct configuration is served by the *memoized*
:func:`repro.sim.baseline.measured_baseline` (a vectorized replay keyed
by trace content hash + geometry + warmup, shared across lanes, shards,
sweep points, and — through the sweep runner's sidecar — across runs).
Lanes sharing a configuration share the one replay.  The lane walk
itself iterates the columnar arrays as plain Python scalars — no record
objects are materialized.

Counter windows: ``prefetches_issued`` counts every issue over the whole
trace — the same (unwindowed) accounting as ``prefetcher.stats`` and the
caches' :class:`~repro.cache.stats.CacheStats` — while the miss counts
remain restricted to the post-warmup measurement window.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

from ..cache.icache import InstructionCache
from ..cache.reference import ReferenceInstructionCache
from ..common.config import CacheConfig
from ..common.profiling import STAGE_BASELINE, STAGE_LANE_WALK, stage
from ..core.pif import ProactiveInstructionFetch
from ..prefetch.base import Prefetcher, demand_access_hook
from ..prefetch.discontinuity import DiscontinuityPrefetcher
from ..prefetch.nextline import NextLinePrefetcher
from ..prefetch.stride import StridePrefetcher
from ..trace.bundle import TraceBundle
from .baseline import measured_baseline
from .trainplan import train_plan_for
from .tracesim import PrefetchSimResult

#: Lane-walk kernels; ``REPRO_SIM_KERNEL`` selects the default.
KERNELS = ("fast", "reference")


def resolve_kernel(kernel: Optional[str]) -> str:
    """Normalize a kernel selector (None -> environment -> "fast").

    The one sanctioned ``REPRO_SIM_KERNEL`` resolution point.  Callers
    that fan work out must resolve *before* building tasks (see
    :func:`repro.scenarios.runner.run_sweep`) so a worker never consults
    its own environment; both kernels produce bit-identical metrics, so
    the selector only ever changes provenance fields and speed.
    """
    if kernel is None:
        # reprolint: disable=RL004 - sanctioned kernel-selector resolution point
        kernel = os.environ.get("REPRO_SIM_KERNEL") or "fast"
    if kernel not in KERNELS:
        raise ValueError(f"unknown simulation kernel {kernel!r}; "
                         f"choices: {KERNELS}")
    return kernel


class _Lane:
    """One (prefetcher, test cache) pair riding the shared trace walk.

    ``train_plan``/``pif_pending`` are populated only for lanes taking
    the fused PIF walker: the precomputed training schedule and the
    per-channel tagged flag captured at the open of the current spatial
    region (carried across the warmup/measurement slice boundary).
    """

    __slots__ = ("prefetcher", "cache", "baseline", "remaining_misses",
                 "per_level_remaining", "prefetches_issued",
                 "train_plan", "pif_pending")

    def __init__(self, prefetcher: Prefetcher, cache,
                 baseline: _Baseline) -> None:
        self.prefetcher = prefetcher
        self.cache = cache
        self.baseline = baseline
        self.remaining_misses = 0
        self.per_level_remaining: Dict[int, int] = {}
        self.prefetches_issued = 0
        self.train_plan = None
        self.pif_pending: Dict[int, bool] = {}


class _Baseline:
    """The no-prefetch miss accounting shared by every lane with one
    configuration, served by the memoized baseline replay
    (:func:`repro.sim.baseline.measured_baseline`), so sweep points and
    lane shards replaying one (trace, geometry) pay the replay once per
    process — or never, when a sidecar entry was seeded."""

    __slots__ = ("stats", "misses", "per_level")

    def __init__(self, bundle: TraceBundle, config: CacheConfig,
                 warmup_fraction: float) -> None:
        measured = measured_baseline(bundle, config, warmup_fraction)
        self.stats = measured.stats()
        self.misses = measured.misses
        self.per_level = dict(measured.per_level)


def _retire_hook(prefetcher: Prefetcher):
    """The prefetcher's retire hook, or None when it is the base no-op
    (saving a Python call per correct-path access for fetch-side
    engines)."""
    if type(prefetcher).on_retire is Prefetcher.on_retire:
        return None
    return prefetcher.on_retire


# reprolint: hot
def _walk_lane_inline2(lane: _Lane, blocks, pcs, trap_levels, wrong_paths,
                       retire_pcs, retire_traps,
                       retire_cursor: int, measuring: bool) -> int:
    """One lane's walk over an access slice, 2-way LRU/FIFO cache inlined.

    This is the innermost loop of the whole reproduction, specialized
    for the paper's cache geometry (2 ways, MRU-byte recency): the
    demand probe, fill, and prefetch install operate directly on the
    cache's flat slot arrays as local variables, and every counter
    accumulates in a local int, flushed into ``CacheStats`` once per
    slice.  State layout and transition order mirror
    ``InstructionCache.access_fast``/``prefetch`` exactly; the
    differential suite pins this walker to the reference engine for
    every prefetcher.

    ``measuring`` folds the warmup window out of the per-access branch
    work: the caller runs the warmup slice with it False and the
    measurement slice with it True.  Returns the advanced retire cursor.
    """
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    into = demand_access_hook(prefetcher)
    on_retire = _retire_hook(prefetcher)
    out: List[int] = []
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued_total = 0
    for block, pc, trap_level, wrong_path in zip(blocks, pcs, trap_levels,
                                                 wrong_paths):
        # -- demand access (InstructionCache.access_fast, inlined) --
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
                code = 2
            else:
                flags[slot] = state | 2
                code = 1
        else:
            demand_misses += 1
            code = 0
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        # -- prefetcher hook + prefetch installs (prefetch(), inlined) --
        count = into(block, pc, trap_level, code != 0, code == 2, out)
        if count:
            issued_total += count
            for candidate in out:
                requests += 1
                cindex = candidate % n_sets
                cslot = cindex + cindex
                if tags[cslot] == candidate or tags[cslot + 1] == candidate:
                    drops += 1
                    continue
                if tags[cslot] is not None:
                    if tags[cslot + 1] is not None:
                        cslot += 1 - mru[cindex]
                        evictions += 1
                        if flags[cslot] == 1:
                            evicted_unused += 1
                    else:
                        cslot += 1
                tags[cslot] = candidate
                flags[cslot] = 1
                mru[cindex] = cslot & 1
                fills += 1
            del out[:]
        if not wrong_path:
            if on_retire is not None:
                on_retire(retire_pcs[retire_cursor],
                          retire_traps[retire_cursor], code != 2)
            retire_cursor += 1
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued_total
    return retire_cursor


# reprolint: hot
def _walk_lane_inline2_nextline(lane: _Lane, blocks, pcs, trap_levels,
                                wrong_paths, retire_pcs, retire_traps,
                                retire_cursor: int, measuring: bool) -> int:
    """:func:`_walk_lane_inline2` with the next-line engine fused in.

    The three classic fetch-side baselines (next-line, stride,
    discontinuity) have per-access bodies of a few lines and no retire
    hook, so the walk inlines them next to the cache operations instead
    of paying a Python call per access; their learned state lives in
    locals for the slice and is written back at the end.  Semantics are
    exactly :meth:`NextLinePrefetcher.on_demand_access_into`.
    """
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    degree = prefetcher.degree
    miss_only = prefetcher._miss_only
    last_triggered = prefetcher._last_triggered
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued = triggers = 0
    for block, trap_level, wrong_path in zip(blocks, trap_levels,
                                             wrong_paths):
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            hit = True
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
            else:
                flags[slot] = state | 2
        else:
            hit = False
            demand_misses += 1
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        if not (hit and miss_only) and block != last_triggered:
            last_triggered = block
            triggers += 1
            issued += degree
            for candidate in range(block + 1, block + degree + 1):
                requests += 1
                cindex = candidate % n_sets
                cslot = cindex + cindex
                if tags[cslot] == candidate or tags[cslot + 1] == candidate:
                    drops += 1
                    continue
                if tags[cslot] is not None:
                    if tags[cslot + 1] is not None:
                        cslot += 1 - mru[cindex]
                        evictions += 1
                        if flags[cslot] == 1:
                            evicted_unused += 1
                    else:
                        cslot += 1
                tags[cslot] = candidate
                flags[cslot] = 1
                mru[cindex] = cslot & 1
                fills += 1
        if not wrong_path:
            retire_cursor += 1
    prefetcher._last_triggered = last_triggered
    pf_stats = prefetcher.stats
    pf_stats.triggers += triggers
    pf_stats.issued += issued
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued
    return retire_cursor


# reprolint: hot
def _walk_lane_inline2_stride(lane: _Lane, blocks, pcs, trap_levels,
                              wrong_paths, retire_pcs, retire_traps,
                              retire_cursor: int, measuring: bool) -> int:
    """:func:`_walk_lane_inline2` with the stride engine fused in
    (semantics of :meth:`StridePrefetcher.on_demand_access_into`)."""
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    degree = prefetcher.degree
    last_block = prefetcher._last_block
    last_stride = prefetcher._last_stride
    confirmed = prefetcher._confirmed
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued = triggers = 0
    for block, trap_level, wrong_path in zip(blocks, trap_levels,
                                             wrong_paths):
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
            else:
                flags[slot] = state | 2
        else:
            demand_misses += 1
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        if block != last_block:
            if last_block is not None:
                stride = block - last_block
                if stride == last_stride and stride != 0:
                    confirmed = True
                elif last_stride is not None:
                    confirmed = False
                last_stride = stride
                if confirmed:
                    triggers += 1
                    issued += degree
                    for step in range(1, degree + 1):
                        candidate = block + stride * step
                        requests += 1
                        cindex = candidate % n_sets
                        cslot = cindex + cindex
                        if (tags[cslot] == candidate
                                or tags[cslot + 1] == candidate):
                            drops += 1
                            continue
                        if tags[cslot] is not None:
                            if tags[cslot + 1] is not None:
                                cslot += 1 - mru[cindex]
                                evictions += 1
                                if flags[cslot] == 1:
                                    evicted_unused += 1
                            else:
                                cslot += 1
                        tags[cslot] = candidate
                        flags[cslot] = 1
                        mru[cindex] = cslot & 1
                        fills += 1
            last_block = block
        if not wrong_path:
            retire_cursor += 1
    prefetcher._last_block = last_block
    prefetcher._last_stride = last_stride
    prefetcher._confirmed = confirmed
    pf_stats = prefetcher.stats
    pf_stats.triggers += triggers
    pf_stats.issued += issued
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued
    return retire_cursor


# reprolint: hot
def _walk_lane_inline2_discontinuity(lane: _Lane, blocks, pcs, trap_levels,
                                     wrong_paths, retire_pcs, retire_traps,
                                     retire_cursor: int,
                                     measuring: bool) -> int:
    """:func:`_walk_lane_inline2` with the discontinuity engine fused in
    (semantics of :meth:`DiscontinuityPrefetcher.on_demand_access_into`)."""
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    nl_degree = prefetcher.next_line_degree
    table_get = prefetcher._table.get
    table_put = prefetcher._table.put
    previous = prefetcher._previous_block
    out: List[int] = []
    per_level = lane.per_level_remaining
    demand_accesses = demand_hits = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued = triggers = 0
    for block, trap_level, wrong_path in zip(blocks, trap_levels,
                                             wrong_paths):
        demand_accesses += 1
        index = block % n_sets
        slot = index + index
        if tags[slot] != block:
            if tags[slot + 1] == block:
                slot += 1
            else:
                slot = -1
        if slot >= 0:
            hit = True
            demand_hits += 1
            if mru_on_access:
                mru[index] = slot & 1
            state = flags[slot]
            if state == 1:
                flags[slot] = 3
                useful += 1
            else:
                flags[slot] = state | 2
        else:
            hit = False
            demand_misses += 1
            slot = index + index
            if tags[slot] is not None:
                if tags[slot + 1] is not None:
                    slot += 1 - mru[index]
                    evictions += 1
                    if flags[slot] == 1:
                        evicted_unused += 1
                else:
                    slot += 1
            tags[slot] = block
            flags[slot] = 0
            mru[index] = slot & 1
            if measuring and not wrong_path:
                remaining += 1
                per_level[trap_level] = per_level.get(trap_level, 0) + 1
        if previous is not None and previous != block:
            if not hit and block != previous + 1:
                table_put(previous, block)
            target = table_get(block)
            triggers += 1
            for candidate in range(block + 1, block + nl_degree + 1):
                out.append(candidate)
            if target is not None:
                out.append(target)
                out.append(target + 1)
            issued += len(out)
            for candidate in out:
                requests += 1
                cindex = candidate % n_sets
                cslot = cindex + cindex
                if tags[cslot] == candidate or tags[cslot + 1] == candidate:
                    drops += 1
                    continue
                if tags[cslot] is not None:
                    if tags[cslot + 1] is not None:
                        cslot += 1 - mru[cindex]
                        evictions += 1
                        if flags[cslot] == 1:
                            evicted_unused += 1
                    else:
                        cslot += 1
                tags[cslot] = candidate
                flags[cslot] = 1
                mru[cindex] = cslot & 1
                fills += 1
            del out[:]
        previous = block
        if not wrong_path:
            retire_cursor += 1
    prefetcher._previous_block = previous
    pf_stats = prefetcher.stats
    pf_stats.triggers += triggers
    pf_stats.issued += issued
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_hits
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued
    return retire_cursor


# reprolint: hot
def _walk_lane_inline2_pif(lane: _Lane, segments, retire_pcs, retire_traps,
                           retire_cursor: int, measuring: bool) -> int:
    """:func:`_walk_lane_inline2` with the PIF engine fused in.

    Unlike the other walkers this one iterates *trap-level segments* —
    maximal runs of constant access trap level, precomputed per bundle
    (:meth:`TraceBundle.access_trap_segments`) and sliced once per walk
    for all lanes — so the per-access loop carries no trap unpacking or
    channel re-resolution; the channel's hot structures are rebound in
    locals at segment boundaries only (a few hundred per trace).

    The predict side inlines :meth:`ProactiveInstructionFetch.
    on_demand_access_into` (SAB window probe, tagged-miss stream
    allocation, candidate dedup); the window slide itself
    (``StreamAddressBuffer.advance_into``'s slice + map rebuild +
    refill) is fused into the match branch, producing exactly the
    window/map/pointer state the method calls would.  The train side
    replays the lane's precomputed
    :class:`~repro.sim.trainplan.PIFTrainPlan` instead of driving the
    spatial/temporal compactors: per retire record it costs one integer
    comparison, and on the (precomputed) region emissions it performs
    exactly the history append / index insert the reference ``on_retire``
    path would, with the lane-dependent tagged flag captured at region
    open.  All engine counters (prefetch stats, channel stats, compactor
    counters) are maintained to reference-exact values; the kernel
    differential matrix in ``tests/sim/test_engine.py`` locks the whole
    construction against the reference object walk.
    """
    cache = lane.cache
    tags = cache._tags
    flags = cache._flags
    mru = cache._mru
    mru_on_access = cache._mru_on_access
    n_sets = cache._n_sets
    prefetcher = lane.prefetcher
    separate = prefetcher.separate_trap_levels
    channels = prefetcher._channels
    make_channel = prefetcher._channel
    scratch = prefetcher._scratch
    seen = prefetcher._seen
    plan = lane.train_plan
    ev_at = plan.at
    ev_key = plan.key
    ev_trigger = plan.trigger
    ev_survives = plan.survives
    ev_record_untagged = plan.record_untagged
    ev_record_tagged = plan.record_tagged
    n_events = len(ev_at)
    ev_index = bisect_left(ev_at, retire_cursor)
    next_event_at = ev_at[ev_index] if ev_index < n_events else -1
    pending = lane.pif_pending
    #: channel key -> [regions emitted, temporal passed, temporal
    #: discarded] this slice, flushed into the compactor counters once.
    compaction: Dict[int, List[int]] = {}

    # Per-segment predict-side channel locals.  ``cur_maps`` mirrors
    # ``cur_sabs`` as each SAB's ``_block_map`` and is refreshed at
    # every point the maps or their order can change (slide,
    # allocation, MRU move, channel switch).
    cur_key = -1
    cur_channel = None
    cur_sabs: List = []
    cur_maps: List = []
    cur_history = None
    cur_hring = None
    cur_hcap = 0
    cur_index = None
    cur_index_sets = None
    cur_chstats = None
    # Train-side channel locals, swapped on the (rare) event-channel
    # change; emissions overwhelmingly hit the application channel.
    tr_key = -1
    tr_channel = None
    tr_history = None
    tr_index = None
    tr_chstats = None
    tr_counters: List[int] = [0, 0, 0]

    per_level = lane.per_level_remaining
    demand_accesses = demand_misses = useful = 0
    requests = fills = drops = evictions = evicted_unused = 0
    remaining = issued_total = stream_allocs = 0
    #: Blocks of a dedup-free single-region slide burst on the current
    #: *miss* access (reset on every miss — allocation bursts, which
    #: only fire on misses, seed their dedup set from it).
    slide_burst = None
    for seg_blocks, seg_pcs, seg_wrongs, trap_level in segments:
        demand_accesses += len(seg_blocks)
        key = trap_level if separate else 0
        if key != cur_key:
            cur_channel = channels.get(key)
            if cur_channel is None:
                cur_channel = make_channel(key)
            cur_key = key
            cur_sabs = cur_channel.sabs._sabs
            cur_maps = [sab._block_map for sab in cur_sabs]  # reprolint: disable=RL006 - rebuilt only on channel switch
            cur_history = cur_channel.history
            cur_hring = cur_history._ring
            cur_hcap = cur_history.capacity
            cur_index = cur_channel.index
            cur_index_sets = cur_index._sets
            cur_chstats = cur_channel.stats
        for block, pc, wrong_path in zip(seg_blocks, seg_pcs, seg_wrongs):
            # -- demand access (InstructionCache.access_fast, inlined;
            #    accesses/hits/triggers are derived after the loop) --
            index = block % n_sets
            slot = index + index
            if tags[slot] != block:
                if tags[slot + 1] == block:
                    slot += 1
                else:
                    slot = -1
            if slot >= 0:
                if mru_on_access:
                    mru[index] = slot & 1
                state = flags[slot]
                if state == 1:
                    flags[slot] = 3
                    useful += 1
                    code = 2
                else:
                    if state < 2:
                        flags[slot] = state | 2
                    code = 1
            else:
                demand_misses += 1
                code = 0
                slide_burst = None
                slot = index + index
                if tags[slot] is not None:
                    if tags[slot + 1] is not None:
                        slot += 1 - mru[index]
                        evictions += 1
                        if flags[slot] == 1:
                            evicted_unused += 1
                    else:
                        slot += 1
                tags[slot] = block
                flags[slot] = 0
                mru[index] = slot & 1
                if measuring and not wrong_path:
                    remaining += 1
                    per_level[trap_level] = per_level.get(trap_level,
                                                          0) + 1
            # -- PIF predict side (on_demand_access_into, inlined) --
            if cur_maps:
                position = 0
                matched = None
                for sab_map in cur_maps:
                    if block in sab_map:
                        matched = sab_map
                        break
                    position += 1
                if matched is not None:
                    sab = cur_sabs[position]
                    sab.matches += 1
                    sab_slot = matched[block]
                    if sab_slot:
                        # -- window slide: slice + map rebuild + refill
                        #    (StreamAddressBuffer.advance_into, fused) --
                        window = sab.window[sab_slot:]
                        sab.window = window
                        block_map: Dict[int, int] = {}  # reprolint: disable=RL006 - rebuilt only on window slide
                        map_setdefault = block_map.setdefault
                        cache_get = sab._block_cache.get
                        decode = sab._blocks_of
                        window_slot = 0
                        for _, record in window:
                            record_blocks = cache_get(record)
                            if record_blocks is None:
                                record_blocks = decode(record)
                            for candidate in record_blocks:
                                map_setdefault(candidate, window_slot)
                            window_slot += 1
                        needed = sab.window_regions - window_slot
                        if needed > 0:
                            pointer = sab.pointer
                            # -- HistoryBuffer.read_run_values, inlined
                            #    over the ring (bounded history) --
                            tail = cur_history._next_position
                            if (pointer < tail
                                    and pointer >= tail - cur_hcap):
                                end = pointer + needed
                                if end > tail:
                                    end = tail
                                start_slot = pointer % cur_hcap
                                length = end - pointer
                                if start_slot + length <= cur_hcap:
                                    run = cur_hring[start_slot:
                                                    start_slot + length]
                                else:
                                    run = (cur_hring[start_slot:]
                                           + cur_hring[:start_slot + length
                                                       - cur_hcap])
                            else:
                                run = ()
                            if len(run) == 1:
                                # Dominant refill shape: one region
                                # slides in.  Its blocks are distinct by
                                # construction (trigger + unique
                                # offsets), so the dedup set is skipped;
                                # the blocks are remembered in
                                # ``slide_burst`` so a same-access
                                # allocation burst can seed its dedup
                                # set from them.
                                record = run[0]
                                window.append((pointer, record))
                                record_blocks = cache_get(record)
                                if record_blocks is None:
                                    record_blocks = decode(record)
                                slide_burst = record_blocks
                                issued_total += len(record_blocks)
                                requests += len(record_blocks)
                                for candidate in record_blocks:
                                    map_setdefault(candidate, window_slot)
                                    cindex = candidate % n_sets
                                    cslot = cindex + cindex
                                    if (tags[cslot] == candidate
                                            or tags[cslot + 1]
                                            == candidate):
                                        drops += 1
                                        continue
                                    if tags[cslot] is not None:
                                        if tags[cslot + 1] is not None:
                                            cslot += 1 - mru[cindex]
                                            evictions += 1
                                            if flags[cslot] == 1:
                                                evicted_unused += 1
                                        else:
                                            cslot += 1
                                    tags[cslot] = candidate
                                    flags[cslot] = 1
                                    mru[cindex] = cslot & 1
                                    fills += 1
                                sab.pointer = pointer + 1
                                sab.regions_replayed += 1
                            elif run:
                                for record in run:
                                    window.append((pointer, record))
                                    pointer += 1
                                    record_blocks = cache_get(record)
                                    if record_blocks is None:
                                        record_blocks = decode(record)
                                    for candidate in record_blocks:
                                        map_setdefault(candidate,
                                                       window_slot)
                                        # -- dedup + install, fused
                                        #    (identical order: slide
                                        #    bursts precede allocation
                                        #    bursts) --
                                        if candidate in seen:
                                            continue
                                        seen.add(candidate)
                                        issued_total += 1
                                        requests += 1
                                        cindex = candidate % n_sets
                                        cslot = cindex + cindex
                                        if (tags[cslot] == candidate
                                                or tags[cslot + 1]
                                                == candidate):
                                            drops += 1
                                            continue
                                        if tags[cslot] is not None:
                                            if tags[cslot + 1] is not None:
                                                cslot += 1 - mru[cindex]
                                                evictions += 1
                                                if flags[cslot] == 1:
                                                    evicted_unused += 1
                                            else:
                                                cslot += 1
                                        tags[cslot] = candidate
                                        flags[cslot] = 1
                                        mru[cindex] = cslot & 1
                                        fills += 1
                                    window_slot += 1
                                sab.pointer = pointer
                                sab.regions_replayed += len(run)
                        sab._block_map = block_map
                        if position:
                            del cur_sabs[position]
                            cur_sabs.insert(0, sab)
                            del cur_maps[position]
                            cur_maps.insert(0, block_map)
                        else:
                            cur_maps[0] = block_map
                    elif position:
                        del cur_sabs[position]
                        cur_sabs.insert(0, sab)
                        cur_maps.insert(0, cur_maps.pop(position))
                    cur_chstats.window_advances += 1
            if code == 0:
                # -- IndexTable.lookup, inlined (per-set LRU get
                #    promotes; index values are ints, so a plain None
                #    test suffices) --
                if cur_index_sets:
                    folded = (pc >> 2) ^ (pc >> 9) ^ (pc >> 17)
                    entries = cur_index_sets[
                        folded % len(cur_index_sets)]._entries
                    start = entries.get(pc)
                    if start is None:
                        cur_index.misses += 1
                    else:
                        entries.move_to_end(pc)
                        cur_index.hits += 1
                else:
                    start = cur_index._unbounded.get(pc)
                    if start is None:
                        cur_index.misses += 1
                    else:
                        cur_index.hits += 1
                if start is not None:
                    if slide_burst is not None:
                        # A dedup-free slide burst preceded this
                        # allocation in the same access: seed the dedup
                        # set with it.
                        seen.update(slide_burst)
                    cur_channel.sabs.allocate_into(cur_history, start,
                                                   scratch)
                    cur_chstats.stream_allocations += 1
                    stream_allocs += 1
                    cur_maps = [sab._block_map for sab in cur_sabs]  # reprolint: disable=RL006 - rebuilt only on stream allocation
                    # Allocation burst: dedup (against any slide burst
                    # of this access) + install, same pass as above.
                    for candidate in scratch:
                        if candidate in seen:
                            continue
                        seen.add(candidate)
                        issued_total += 1
                        requests += 1
                        cindex = candidate % n_sets
                        cslot = cindex + cindex
                        if (tags[cslot] == candidate
                                or tags[cslot + 1] == candidate):
                            drops += 1
                            continue
                        if tags[cslot] is not None:
                            if tags[cslot + 1] is not None:
                                cslot += 1 - mru[cindex]
                                evictions += 1
                                if flags[cslot] == 1:
                                    evicted_unused += 1
                            else:
                                cslot += 1
                        tags[cslot] = candidate
                        flags[cslot] = 1
                        mru[cindex] = cslot & 1
                        fills += 1
                    scratch.clear()
            if seen:
                seen.clear()
            # -- PIF train side: replay the precomputed schedule --
            if not wrong_path:
                if retire_cursor == next_event_at:
                    event_key = ev_key[ev_index]
                    if ev_trigger[ev_index] is not None:
                        if event_key != tr_key:
                            tr_channel = channels.get(event_key)
                            if tr_channel is None:
                                tr_channel = make_channel(event_key)
                            tr_key = event_key
                            tr_history = tr_channel.history
                            tr_index = tr_channel.index
                            tr_chstats = tr_channel.stats
                            tr_counters = compaction.get(event_key)
                            if tr_counters is None:
                                tr_counters = compaction[event_key] = \
                                    [0, 0, 0]  # reprolint: disable=RL006 - one counter cell per event key
                        tr_counters[0] += 1
                        if ev_survives[ev_index]:
                            tr_counters[1] += 1
                            tagged = pending[event_key]
                            record = (ev_record_tagged[ev_index] if tagged
                                      else ev_record_untagged[ev_index])
                            # -- HistoryBuffer.append, inlined --
                            history_position = tr_history._next_position
                            tr_history._ring[
                                history_position
                                % tr_history.capacity] = record
                            tr_history._next_position = \
                                history_position + 1
                            tr_chstats.regions_recorded += 1
                            if tagged:
                                # -- IndexTable.insert + LRUCache.put,
                                #    inlined (bounded, per-set LRU) --
                                event_trigger = ev_trigger[ev_index]
                                tr_index.insertions += 1
                                tr_sets = tr_index._sets
                                if tr_sets:
                                    folded = ((event_trigger >> 2)
                                              ^ (event_trigger >> 9)
                                              ^ (event_trigger >> 17))
                                    lru = tr_sets[folded % len(tr_sets)]
                                    entries = lru._entries
                                    if event_trigger in entries:
                                        entries.move_to_end(event_trigger)
                                    entries[event_trigger] = \
                                        history_position
                                    if len(entries) > lru._capacity:
                                        entries.popitem(last=False)
                                else:
                                    tr_index._unbounded[event_trigger] = \
                                        history_position
                                tr_chstats.index_insertions += 1
                        else:
                            tr_counters[2] += 1
                    pending[event_key] = code != 2
                    ev_index += 1
                    next_event_at = (ev_at[ev_index]
                                     if ev_index < n_events else -1)
                retire_cursor += 1
    pf_stats = prefetcher.stats
    # A PIF trigger is exactly a demand miss (tagged misses probe the
    # index; prefetched hits never reach the trigger path).
    pf_stats.triggers += demand_misses
    pf_stats.issued += issued_total
    pf_stats.stream_allocations += stream_allocs
    for channel_key, (emitted, passed, discarded) in compaction.items():
        channel = channels[channel_key]
        channel.spatial.regions_emitted += emitted
        channel.temporal.passed += passed
        channel.temporal.discarded += discarded
    stats = cache.stats
    stats.demand_accesses += demand_accesses
    stats.demand_hits += demand_accesses - demand_misses
    stats.demand_misses += demand_misses
    stats.useful_prefetches += useful
    stats.prefetch_requests += requests
    stats.prefetch_fills += fills
    stats.prefetch_drops_present += drops
    stats.evictions += evictions
    stats.evicted_unused_prefetches += evicted_unused
    lane.remaining_misses += remaining
    lane.prefetches_issued += issued_total
    return retire_cursor


#: Fetch-side engines whose per-access logic is fused into a
#: specialized 2-way walker.  Exact types only: a subclass may change
#: behaviour, so it falls back to the hook-driven walker.
_FUSED_WALKERS = {
    NextLinePrefetcher: _walk_lane_inline2_nextline,
    StridePrefetcher: _walk_lane_inline2_stride,
    DiscontinuityPrefetcher: _walk_lane_inline2_discontinuity,
    ProactiveInstructionFetch: _walk_lane_inline2_pif,
}


def _select_walker(lane: _Lane):
    """Pick the most specialized fast walker this lane supports."""
    if lane.cache._mru is None:
        return _walk_lane_generic
    return _FUSED_WALKERS.get(type(lane.prefetcher), _walk_lane_inline2)


# reprolint: hot
def _walk_lane_generic(lane: _Lane, blocks, pcs, trap_levels, wrong_paths,
                       retire_pcs, retire_traps,
                       retire_cursor: int, measuring: bool) -> int:
    """One lane's walk for any cache geometry/policy, through the
    allocation-free ``access_fast``/``prefetch`` methods."""
    cache = lane.cache
    access_fast = cache.access_fast
    prefetch = cache.prefetch
    prefetcher = lane.prefetcher
    into = demand_access_hook(prefetcher)
    on_retire = _retire_hook(prefetcher)
    out: List[int] = []
    per_level = lane.per_level_remaining
    for block, pc, trap_level, wrong_path in zip(blocks, pcs, trap_levels,
                                                 wrong_paths):
        code = access_fast(block)
        if code == 0 and measuring and not wrong_path:
            lane.remaining_misses += 1
            per_level[trap_level] = per_level.get(trap_level, 0) + 1
        count = into(block, pc, trap_level, code != 0, code == 2, out)
        if count:
            lane.prefetches_issued += count
            for candidate in out:
                prefetch(candidate)
            del out[:]
        if not wrong_path:
            if on_retire is not None:
                on_retire(retire_pcs[retire_cursor],
                          retire_traps[retire_cursor], code != 2)
            retire_cursor += 1
    return retire_cursor


def _sliced_segments(bundle: TraceBundle, blocks, pcs, wrong_paths,
                     low: int, high: int):
    """The bundle's trap-level segments clipped to ``[low, high)`` and
    materialized as (block slice, pc slice, wrong-path slice, trap)
    tuples — computed once per walk and shared by every PIF lane."""
    sliced = []
    for start, end, trap_level in bundle.access_trap_segments():
        begin = start if start > low else low
        stop = end if end < high else high
        if begin >= stop:
            continue
        sliced.append((blocks[begin:stop], pcs[begin:stop],
                       wrong_paths[begin:stop], trap_level))
    return sliced


def _walk_reference(lanes: List[_Lane], blocks, pcs, trap_levels,
                    wrong_paths, retire_pcs, retire_traps,
                    warmup_boundary: int) -> int:
    """The original object-model lane walk (semantics oracle)."""
    retire_cursor = 0
    for position, (block, pc, trap_level, wrong_path) in enumerate(
            zip(blocks, pcs, trap_levels, wrong_paths)):
        measuring = position >= warmup_boundary
        correct_path = not wrong_path
        retire_pc = retire_trap = None
        if correct_path:
            retire_pc = retire_pcs[retire_cursor]
            retire_trap = retire_traps[retire_cursor]
            retire_cursor += 1
        for lane in lanes:
            test_result = lane.cache.access(block)
            if correct_path and measuring and not test_result.hit:
                lane.remaining_misses += 1
                lane.per_level_remaining[trap_level] = (
                    lane.per_level_remaining.get(trap_level, 0) + 1)
            candidates = lane.prefetcher.on_demand_access(
                block, pc, trap_level,
                test_result.hit, test_result.was_prefetched)
            for candidate in candidates:
                lane.prefetches_issued += 1
                lane.cache.prefetch(candidate)
            if retire_pc is not None:
                lane.prefetcher.on_retire(retire_pc, retire_trap,
                                          tagged=test_result.tagged)
    return retire_cursor


def run_multi_prefetch_simulation(
    bundle: TraceBundle,
    prefetchers: Sequence[Prefetcher],
    cache_config: Optional[CacheConfig] = None,
    warmup_fraction: float = 0.25,
    cache_configs: Optional[Sequence[Optional[CacheConfig]]] = None,
    kernel: Optional[str] = None,
) -> List[PrefetchSimResult]:
    """Simulate every prefetcher over ``bundle`` in one trace walk.

    Arguments mirror :func:`repro.sim.tracesim.run_prefetch_simulation`;
    ``cache_config`` applies to every lane unless ``cache_configs``
    supplies a per-lane override (``None`` entries fall back to
    ``cache_config``).  ``kernel`` selects the lane-walk implementation
    (``"fast"``/``"reference"``; None reads ``REPRO_SIM_KERNEL`` and
    falls back to the fast kernel — results are bit-identical either
    way).  Returns one :class:`PrefetchSimResult` per prefetcher, in
    input order, each identical to what a standalone sequential run of
    that engine would have produced.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if cache_configs is not None and len(cache_configs) != len(prefetchers):
        raise ValueError("cache_configs must match prefetchers in length")
    kernel = resolve_kernel(kernel)
    cache_class = (InstructionCache if kernel == "fast"
                   else ReferenceInstructionCache)
    default_config = cache_config if cache_config is not None else CacheConfig()

    baselines: Dict[CacheConfig, _Baseline] = {}
    lanes: List[_Lane] = []
    with stage(STAGE_BASELINE):
        for position, prefetcher in enumerate(prefetchers):
            lane_config = default_config
            if cache_configs is not None and cache_configs[position] is not None:
                lane_config = cache_configs[position]
            baseline = baselines.get(lane_config)
            if baseline is None:
                baseline = _Baseline(bundle, lane_config, warmup_fraction)
                baselines[lane_config] = baseline
            lanes.append(_Lane(prefetcher, cache_class(lane_config),
                               baseline))

    (blocks, pcs, trap_levels, wrong_paths,
     retire_pcs, retire_traps) = bundle.decoded_columns()
    warmup_boundary = int(len(blocks) * warmup_fraction)

    if lanes:
        with stage(STAGE_LANE_WALK):
            if kernel == "fast":
                warm = measured = None
                warm_segments = measured_segments = None
                for lane in lanes:
                    walker = _select_walker(lane)
                    if walker is _walk_lane_inline2_pif:
                        engine = lane.prefetcher
                        lane.train_plan = train_plan_for(
                            bundle, engine.config.geometry,
                            engine.block_bytes,
                            engine.separate_trap_levels,
                            engine.config.temporal_compactor_entries)
                        if warm_segments is None:
                            warm_segments = _sliced_segments(
                                bundle, blocks, pcs, wrong_paths,
                                0, warmup_boundary)
                            measured_segments = _sliced_segments(
                                bundle, blocks, pcs, wrong_paths,
                                warmup_boundary, len(blocks))
                        retire_cursor = walker(lane, warm_segments,
                                               retire_pcs, retire_traps,
                                               0, False)
                        retire_cursor = walker(lane, measured_segments,
                                               retire_pcs, retire_traps,
                                               retire_cursor, True)
                    else:
                        if warm is None:
                            warm = (blocks[:warmup_boundary],
                                    pcs[:warmup_boundary],
                                    trap_levels[:warmup_boundary],
                                    wrong_paths[:warmup_boundary])
                            measured = (blocks[warmup_boundary:],
                                        pcs[warmup_boundary:],
                                        trap_levels[warmup_boundary:],
                                        wrong_paths[warmup_boundary:])
                        retire_cursor = walker(lane, *warm, retire_pcs,
                                               retire_traps, 0, False)
                        retire_cursor = walker(lane, *measured, retire_pcs,
                                               retire_traps, retire_cursor,
                                               True)
                    if retire_cursor != len(retire_pcs):
                        raise RuntimeError(
                            "access/retire alignment broken: lane "
                            f"{lane.prefetcher.name!r} consumed "
                            f"{retire_cursor} of {len(retire_pcs)} "
                            "retire records"
                        )
            else:
                retire_cursor = _walk_reference(
                    lanes, blocks, pcs, trap_levels, wrong_paths,
                    retire_pcs, retire_traps, warmup_boundary)
                if retire_cursor != len(retire_pcs):
                    raise RuntimeError(
                        "access/retire alignment broken: consumed "
                        f"{retire_cursor} of {len(retire_pcs)} retire records"
                    )

    return [
        PrefetchSimResult(
            workload=bundle.workload,
            prefetcher=lane.prefetcher.name,
            instructions=bundle.instructions,
            baseline_misses=lane.baseline.misses,
            remaining_misses=lane.remaining_misses,
            per_level_baseline=dict(lane.baseline.per_level),
            per_level_remaining=lane.per_level_remaining,
            prefetches_issued=lane.prefetches_issued,
            cache_stats=lane.cache.stats,
            baseline_stats=lane.baseline.stats,
        )
        for lane in lanes
    ]
