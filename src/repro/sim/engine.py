"""Single-pass multi-prefetcher simulation engine.

:func:`repro.sim.tracesim.run_prefetch_simulation` replays the whole
trace once per engine.  Every figure that compares N prefetchers (or N
sweep settings of one prefetcher) over the same trace therefore walked
the identical access stream N times — the dominant cost of the full
evaluation, since the walk is pure Python.

This module replays one trace bundle against N independent *lanes* in a
single walk.  Each lane owns its test cache and prefetch engine; lanes
never observe each other, and every lane sees exactly the request
sequence a standalone :func:`run_prefetch_simulation` call would feed
it, so the per-lane results are **bit-identical** to N sequential runs
(the equivalence test in ``tests/sim/test_engine.py`` locks this).  The
no-prefetch baseline depends only on the access stream and the cache
configuration, so lanes sharing a configuration share one baseline
cache instead of re-simulating it per engine.

Counter windows: ``prefetches_issued`` counts every issue over the whole
trace — the same (unwindowed) accounting as ``prefetcher.stats`` and the
caches' :class:`~repro.cache.stats.CacheStats` — while the miss counts
remain restricted to the post-warmup measurement window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cache.icache import InstructionCache
from ..common.config import CacheConfig
from ..prefetch.base import Prefetcher
from ..trace.bundle import TraceBundle
from .tracesim import PrefetchSimResult


class _Lane:
    """One (prefetcher, test cache) pair riding the shared trace walk."""

    __slots__ = ("prefetcher", "cache", "baseline", "remaining_misses",
                 "per_level_remaining", "prefetches_issued")

    def __init__(self, prefetcher: Prefetcher, cache: InstructionCache,
                 baseline: "_Baseline") -> None:
        self.prefetcher = prefetcher
        self.cache = cache
        self.baseline = baseline
        self.remaining_misses = 0
        self.per_level_remaining: Dict[int, int] = {}
        self.prefetches_issued = 0


class _Baseline:
    """The no-prefetch cache shared by every lane with one configuration."""

    __slots__ = ("cache", "misses", "per_level")

    def __init__(self, config: CacheConfig) -> None:
        self.cache = InstructionCache(config)
        self.misses = 0
        self.per_level: Dict[int, int] = {}


def run_multi_prefetch_simulation(
    bundle: TraceBundle,
    prefetchers: Sequence[Prefetcher],
    cache_config: Optional[CacheConfig] = None,
    warmup_fraction: float = 0.25,
    cache_configs: Optional[Sequence[Optional[CacheConfig]]] = None,
) -> List[PrefetchSimResult]:
    """Simulate every prefetcher over ``bundle`` in one trace walk.

    Arguments mirror :func:`repro.sim.tracesim.run_prefetch_simulation`;
    ``cache_config`` applies to every lane unless ``cache_configs``
    supplies a per-lane override (``None`` entries fall back to
    ``cache_config``).  Returns one :class:`PrefetchSimResult` per
    prefetcher, in input order, each identical to what a standalone
    sequential run of that engine would have produced.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if cache_configs is not None and len(cache_configs) != len(prefetchers):
        raise ValueError("cache_configs must match prefetchers in length")
    default_config = cache_config if cache_config is not None else CacheConfig()

    baselines: Dict[CacheConfig, _Baseline] = {}
    lanes: List[_Lane] = []
    for position, prefetcher in enumerate(prefetchers):
        lane_config = default_config
        if cache_configs is not None and cache_configs[position] is not None:
            lane_config = cache_configs[position]
        baseline = baselines.get(lane_config)
        if baseline is None:
            baseline = _Baseline(lane_config)
            baselines[lane_config] = baseline
        lanes.append(_Lane(prefetcher, InstructionCache(lane_config),
                           baseline))

    accesses = bundle.accesses
    retires = bundle.retires
    warmup_boundary = int(len(accesses) * warmup_fraction)
    baseline_list = list(baselines.values())

    retire_cursor = 0
    for position, access in enumerate(accesses):
        measuring = position >= warmup_boundary
        block = access.block
        correct_path = not access.wrong_path
        for baseline in baseline_list:
            baseline_hit = baseline.cache.access(block).hit
            if correct_path and measuring and not baseline_hit:
                baseline.misses += 1
                baseline.per_level[access.trap_level] = (
                    baseline.per_level.get(access.trap_level, 0) + 1)
        retire = None
        if correct_path:
            retire = retires[retire_cursor]
            retire_cursor += 1
        for lane in lanes:
            test_result = lane.cache.access(block)
            if correct_path and measuring and not test_result.hit:
                lane.remaining_misses += 1
                lane.per_level_remaining[access.trap_level] = (
                    lane.per_level_remaining.get(access.trap_level, 0) + 1)
            candidates = lane.prefetcher.on_demand_access(
                block, access.pc, access.trap_level,
                test_result.hit, test_result.was_prefetched)
            for candidate in candidates:
                lane.prefetches_issued += 1
                lane.cache.prefetch(candidate)
            if retire is not None:
                lane.prefetcher.on_retire(retire.pc, retire.trap_level,
                                          tagged=test_result.tagged)

    if retire_cursor != len(retires):
        raise RuntimeError(
            "access/retire alignment broken: consumed "
            f"{retire_cursor} of {len(retires)} retire records"
        )

    return [
        PrefetchSimResult(
            workload=bundle.workload,
            prefetcher=lane.prefetcher.name,
            instructions=bundle.instructions,
            baseline_misses=lane.baseline.misses,
            remaining_misses=lane.remaining_misses,
            per_level_baseline=dict(lane.baseline.per_level),
            per_level_remaining=lane.per_level_remaining,
            prefetches_issued=lane.prefetches_issued,
            cache_stats=lane.cache.stats,
            baseline_stats=lane.baseline.cache.stats,
        )
        for lane in lanes
    ]
