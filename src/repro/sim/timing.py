"""Block-granularity timing model: UIPC and speedup (Figure 10 right).

The paper's performance claim rests on two terms this model preserves:
how many correct-path fetches stall (prefetcher coverage), and how much
of each stall's latency is exposed (prefetch timeliness).  Rather than a
cycle-accurate out-of-order core — noted as infeasibly slow in Python by
the reproduction calibration — the model charges:

* a base cost of ``1/retire_width`` cycles per retired instruction;
* per correct-path fetch miss, the fill latency minus a fixed overlap
  allowance (the work the fetch queue + ROB can cover), floored at 0;
* per fetch that hits an *in-flight* prefetch, only the residual
  latency (a late prefetch still helps — MSHR merge behaviour);
* no overlap allowance for the first fetch after a trap-level change,
  modelling the empty-ROB returns the paper calls out (Section 2.3);
* wrong-path fetches perturb the cache but cost no cycles (they overlap
  the resolution shadow by construction).

Fill latency is the L2 hit latency for warm blocks and the memory
latency for never-before-touched blocks.

Like the lane walk in :mod:`repro.sim.engine`, the fetch loop runs on
the flat-array kernel by default: it iterates the bundle's raw columns
(no ``FetchAccess`` objects), probes the cache through ``access_fast``
result codes, and drives the prefetcher through the buffer-reuse
``on_demand_access_into`` hook with one scratch list.  ``kernel=
"reference"`` keeps the original object-model loop (over
:class:`~repro.cache.reference.ReferenceInstructionCache` and the
list-returning prefetcher API) as the differentially tested oracle —
``tests/sim/test_timing.py`` locks every ``TimingResult`` field across
the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cache.icache import InstructionCache
from ..cache.reference import ReferenceInstructionCache
from ..common.config import SystemConfig
from ..common.profiling import STAGE_TIMING_WALK, stage
from ..prefetch.base import NullPrefetcher, Prefetcher, demand_access_hook
from ..trace.bundle import TraceBundle
from .engine import resolve_kernel


@dataclass(slots=True)
class TimingResult:
    """UIPC measurement for one (trace, prefetcher) timing run."""

    workload: str
    prefetcher: str
    instructions: int
    cycles: float
    stall_cycles: float
    fetch_misses: int
    late_prefetch_hits: int

    def uipc(self) -> float:
        """User instructions committed per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    def stall_fraction(self) -> float:
        """Fraction of cycles spent stalled on instruction fetch."""
        if self.cycles <= 0:
            return 0.0
        return self.stall_cycles / self.cycles


def run_timing_simulation(
    bundle: TraceBundle,
    prefetcher: Optional[Prefetcher] = None,
    system: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.25,
    perfect_cache: bool = False,
    kernel: Optional[str] = None,
) -> TimingResult:
    """Timing-simulate one prefetcher over one trace bundle.

    ``perfect_cache=True`` models the paper's perfect-latency L1-I
    (every fetch returns at hit latency; all other behaviour unchanged).
    ``kernel`` mirrors :func:`repro.sim.engine.run_multi_prefetch_simulation`:
    ``"fast"`` (default, or via ``REPRO_SIM_KERNEL``) runs the columnar
    result-code loop, ``"reference"`` the original object walk; the two
    produce identical results.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    engine = prefetcher if prefetcher is not None else NullPrefetcher()
    cfg = system if system is not None else SystemConfig()
    if not len(bundle.retire_pc):
        raise ValueError("cannot time an empty trace")
    with stage(STAGE_TIMING_WALK):
        if resolve_kernel(kernel) == "fast":
            return _run_timing_fast(bundle, engine, cfg, warmup_fraction,
                                    perfect_cache)
        return _run_timing_reference(bundle, engine, cfg, warmup_fraction,
                                     perfect_cache)


# reprolint: hot
def _run_timing_fast(bundle: TraceBundle, engine: Prefetcher,
                     cfg: SystemConfig, warmup_fraction: float,
                     perfect_cache: bool) -> TimingResult:
    """Columnar fetch loop over the flat-array cache kernel."""
    cache = InstructionCache(cfg.l1i)
    access_fast = cache.access_fast
    cache_fill = cache.fill
    contains = cache.contains
    cache_prefetch = cache.prefetch
    into = demand_access_hook(engine)
    on_retire = engine.on_retire

    blocks = bundle.access_block.tolist()
    pcs = bundle.access_pc.tolist()
    trap_levels = bundle.access_trap.tolist()
    wrong_paths = bundle.access_wrong_path.tolist()
    retire_pcs = bundle.retire_pc.tolist()
    retire_traps = bundle.retire_trap.tolist()

    instructions_per_retire = bundle.instructions / len(retire_pcs)
    width = cfg.pipeline.retire_width
    overlap = cfg.pipeline.fetch_queue_entries / width
    l2_latency = float(cfg.memory.l2_hit_latency)
    memory_latency = float(cfg.memory.memory_latency)
    warmup_boundary = int(len(blocks) * warmup_fraction)
    base = instructions_per_retire / width

    now = 0.0
    measured_cycles = 0.0
    measured_instructions = 0.0
    measured_stalls = 0.0
    fetch_misses = 0
    late_hits = 0

    in_flight: Dict[int, float] = {}
    touched: set = set()
    touched_add = touched.add
    previous_tl: Optional[int] = None
    issue_queue_free_at = 0.0
    retire_cursor = 0
    out: List[int] = []
    position = 0

    for block, pc, trap_level, wrong_path in zip(blocks, pcs, trap_levels,
                                                 wrong_paths):
        measuring = position >= warmup_boundary
        position += 1
        if wrong_path:
            # Wrong-path fetches overlap resolution: cache effects only.
            code = access_fast(block)
            touched_add(block)
            if into(block, pc, trap_level, code != 0, code == 2, out):
                issue_queue_free_at = _issue_prefetches(
                    out, contains, cache_prefetch, in_flight, now,
                    issue_queue_free_at, touched_add, touched,
                    l2_latency, memory_latency)
                del out[:]
            continue

        # Base pipeline cost of the instructions this fetch feeds.
        start = now
        now += base

        hide = overlap
        if previous_tl is not None and trap_level != previous_tl:
            # Returning from / entering a handler drains the ROB.
            hide = 0.0
        previous_tl = trap_level

        code = access_fast(block, False)
        stall = 0.0
        if perfect_cache:
            if code == 0:
                cache_fill(block, False)
        elif code:
            ready = in_flight.get(block)
            if ready is not None and ready > now:
                # Prefetch in flight: expose only the residual latency.
                stall = (ready - now) - hide
                if stall < 0.0:
                    stall = 0.0
                late_hits += 1
            if ready is not None and ready <= now + stall:
                del in_flight[block]
        else:
            if measuring:
                fetch_misses += 1
            ready = in_flight.pop(block, None)
            if ready is not None:
                stall = (ready - now) - hide
                late_hits += 1
            else:
                latency = l2_latency if block in touched else memory_latency
                stall = latency - hide
            if stall < 0.0:
                stall = 0.0
            cache_fill(block, False)
        now += stall
        touched_add(block)

        if into(block, pc, trap_level, code != 0, code == 2, out):
            issue_queue_free_at = _issue_prefetches(
                out, contains, cache_prefetch, in_flight, now,
                issue_queue_free_at, touched_add, touched,
                l2_latency, memory_latency)
            del out[:]

        on_retire(retire_pcs[retire_cursor], retire_traps[retire_cursor],
                  code != 2)
        retire_cursor += 1

        if measuring:
            measured_cycles += now - start
            measured_instructions += instructions_per_retire
            measured_stalls += stall

    if retire_cursor != len(retire_pcs):
        raise RuntimeError("access/retire alignment broken in timing model")

    return TimingResult(
        workload=bundle.workload,
        prefetcher="perfect" if perfect_cache else engine.name,
        instructions=int(measured_instructions),
        cycles=measured_cycles,
        stall_cycles=measured_stalls,
        fetch_misses=fetch_misses,
        late_prefetch_hits=late_hits,
    )


# reprolint: hot
def _issue_prefetches(candidates, contains, cache_prefetch,
                      in_flight: Dict[int, float], now: float,
                      queue_free_at: float, touched_add, touched,
                      l2_latency: float, memory_latency: float) -> float:
    """Issue prefetches one per cycle through a shared port.

    Blocks already resident or already in flight are filtered (the
    Section 4.3 probe).  The cache is filled immediately — functional
    state — while ``in_flight`` carries the arrival time that demand
    fetches pay if they arrive early.  Issued blocks join ``touched``:
    the fill installs them in the L2 as well, so a later refetch after
    L1 eviction pays the L2 latency, not memory latency.
    """
    issue_at = max(now, queue_free_at)
    for block in candidates:
        if contains(block) or block in in_flight:
            continue
        issue_at += 1.0
        latency = l2_latency if block in touched else memory_latency
        in_flight[block] = issue_at + latency
        touched_add(block)
        cache_prefetch(block)
    return issue_at


def _run_timing_reference(bundle: TraceBundle, engine: Prefetcher,
                          cfg: SystemConfig, warmup_fraction: float,
                          perfect_cache: bool) -> TimingResult:
    """The original object-model fetch loop (semantics oracle)."""
    cache = ReferenceInstructionCache(cfg.l1i)

    accesses = bundle.accesses
    retires = bundle.retires
    instructions_per_retire = bundle.instructions / len(retires)
    width = cfg.pipeline.retire_width
    overlap = cfg.pipeline.fetch_queue_entries / width
    l2_latency = float(cfg.memory.l2_hit_latency)
    memory_latency = float(cfg.memory.memory_latency)
    warmup_boundary = int(len(accesses) * warmup_fraction)

    now = 0.0
    measured_cycles = 0.0
    measured_instructions = 0.0
    measured_stalls = 0.0
    fetch_misses = 0
    late_hits = 0

    in_flight: Dict[int, float] = {}
    touched: set = set()
    previous_tl: Optional[int] = None
    issue_queue_free_at = 0.0
    retire_cursor = 0

    def fill_latency(block: int) -> float:
        if block in touched:
            return l2_latency
        return memory_latency

    def issue(candidates, queue_free_at: float) -> float:
        issue_at = max(now, queue_free_at)
        for block in candidates:
            if cache.contains(block) or block in in_flight:
                continue
            issue_at += 1.0
            in_flight[block] = issue_at + fill_latency(block)
            touched.add(block)
            cache.prefetch(block)
        return issue_at

    for position, access in enumerate(accesses):
        measuring = position >= warmup_boundary
        block = access.block
        if access.wrong_path:
            # Wrong-path fetches overlap resolution: cache effects only.
            outcome = cache.access(block)
            touched.add(block)
            candidates = engine.on_demand_access(
                block, access.pc, access.trap_level,
                outcome.hit, outcome.was_prefetched)
            issue_queue_free_at = issue(candidates, issue_queue_free_at)
            continue

        # Base pipeline cost of the instructions this fetch feeds.
        base = instructions_per_retire / width
        start = now
        now += base

        hide = overlap
        if previous_tl is not None and access.trap_level != previous_tl:
            # Returning from / entering a handler drains the ROB.
            hide = 0.0
        previous_tl = access.trap_level

        outcome = cache.access(block, fill_on_miss=False)
        stall = 0.0
        if perfect_cache:
            if not outcome.hit:
                cache.fill(block, prefetched=False)
        elif outcome.hit:
            ready = in_flight.get(block)
            if ready is not None and ready > now:
                # Prefetch in flight: expose only the residual latency.
                stall = max(0.0, (ready - now) - hide)
                late_hits += 1
            if ready is not None and ready <= now + stall:
                del in_flight[block]
        else:
            fetch_misses += 1 if measuring else 0
            ready = in_flight.get(block)
            if ready is not None:
                stall = max(0.0, (ready - now) - hide)
                late_hits += 1
                del in_flight[block]
            else:
                stall = max(0.0, fill_latency(block) - hide)
            cache.fill(block, prefetched=False)
        now += stall
        touched.add(block)

        candidates = engine.on_demand_access(
            block, access.pc, access.trap_level,
            outcome.hit, outcome.was_prefetched)
        issue_queue_free_at = issue(candidates, issue_queue_free_at)

        retire = retires[retire_cursor]
        retire_cursor += 1
        engine.on_retire(retire.pc, retire.trap_level, tagged=outcome.tagged)

        if measuring:
            measured_cycles += now - start
            measured_instructions += instructions_per_retire
            measured_stalls += stall

    if retire_cursor != len(retires):
        raise RuntimeError("access/retire alignment broken in timing model")

    return TimingResult(
        workload=bundle.workload,
        prefetcher="perfect" if perfect_cache else engine.name,
        instructions=int(measured_instructions),
        cycles=measured_cycles,
        stall_cycles=measured_stalls,
        fetch_misses=fetch_misses,
        late_prefetch_hits=late_hits,
    )


def speedup_comparison(
    bundle: TraceBundle,
    prefetchers: Dict[str, Prefetcher],
    system: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.25,
    include_perfect: bool = True,
    kernel: Optional[str] = None,
) -> Dict[str, float]:
    """Speedups over the no-prefetch baseline for several engines.

    Returns {engine name: speedup}; always includes ``baseline`` (1.0)
    and, when requested, ``perfect``.
    """
    baseline = run_timing_simulation(bundle, NullPrefetcher(), system,
                                     warmup_fraction, kernel=kernel)
    base_uipc = baseline.uipc()
    results: Dict[str, float] = {"baseline": 1.0}
    for name, engine in prefetchers.items():
        timed = run_timing_simulation(bundle, engine, system,
                                      warmup_fraction, kernel=kernel)
        results[name] = timed.uipc() / base_uipc if base_uipc else 0.0
    if include_perfect:
        perfect = run_timing_simulation(bundle, None, system,
                                        warmup_fraction, perfect_cache=True,
                                        kernel=kernel)
        results["perfect"] = perfect.uipc() / base_uipc if base_uipc else 0.0
    return results
