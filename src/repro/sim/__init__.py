"""Simulation layer: trace-driven prefetch sim, coverage oracles, timing."""

from .coverage import (
    OracleResult,
    PIFPredictorOracle,
    StreamEvent,
    TemporalStreamOracle,
    ViewEvents,
    build_view_events,
    measure_pif_predictability,
    measure_stream_predictability,
)
from .engine import run_multi_prefetch_simulation
from .regionstats import (
    DENSITY_BUCKETS,
    GROUP_BUCKETS,
    OFFSET_GEOMETRY,
    WIDE_GEOMETRY,
    contiguous_groups,
    density_distribution,
    discontinuity_distribution,
    merge_distributions,
    regions_of,
    trigger_offset_profile,
)
from .timing import TimingResult, run_timing_simulation, speedup_comparison
from .tracesim import PrefetchSimResult, run_prefetch_simulation

__all__ = [
    "OracleResult",
    "PIFPredictorOracle",
    "StreamEvent",
    "TemporalStreamOracle",
    "ViewEvents",
    "build_view_events",
    "measure_pif_predictability",
    "measure_stream_predictability",
    "DENSITY_BUCKETS",
    "GROUP_BUCKETS",
    "OFFSET_GEOMETRY",
    "WIDE_GEOMETRY",
    "contiguous_groups",
    "density_distribution",
    "discontinuity_distribution",
    "merge_distributions",
    "regions_of",
    "trigger_offset_profile",
    "TimingResult",
    "run_timing_simulation",
    "speedup_comparison",
    "PrefetchSimResult",
    "run_multi_prefetch_simulation",
    "run_prefetch_simulation",
]
