"""Stream-predictability oracles: the paper's trace-study methodology.

Section 2's central experiment (Figure 2) asks: *if we record temporal
streams at a given observation point and replay the most recent stream
whenever its head address recurs, what fraction of correct-path
instruction-cache misses would we predict?*  Crucially, "the processor
behavior is undisturbed by the experiment" — predictions are tracked but
nothing is prefetched, so the cache keeps missing exactly as it would
without a prefetcher.

Two oracles implement this:

* :class:`TemporalStreamOracle` — block-granularity records (one address
  per history entry, as TIFS records), used for all four Figure 2 bars
  so that only the *observed stream* differs between them.
* :class:`PIFPredictorOracle` — spatial-region-granularity records built
  with the real PIF compactor pipeline, used for the region-size
  (Figure 8), history-size (Figure 9 right) and stream-length
  (Figure 9 left) studies.

Both also instrument jump distances (Figure 7).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..common.addressing import RegionGeometry, block_bits_for
from ..common.config import CacheConfig
from ..core.history import HistoryBuffer
from ..core.spatial import SpatialCompactor, SpatialRegionRecord
from ..core.temporal import TemporalCompactor
from ..trace.bundle import TraceBundle
from ..trace.records import StreamKind
from .baseline import replay_baseline


class StreamEvent(NamedTuple):
    """One observation-point event: an address plus its cache outcome."""

    key: int
    is_miss: bool
    correct_path: bool
    trap_level: int


@dataclass(slots=True)
class OracleResult:
    """Coverage and instrumentation from one oracle run."""

    predicted_misses: int = 0
    total_misses: int = 0
    #: log2-binned jump distances, weighted by the allocated stream's
    #: subsequent correct predictions (Figure 7's measure).
    jump_histogram: Counter = field(default_factory=Counter)
    #: lengths (in records matched) of completed streams, with their
    #: correct-prediction counts (Figure 9 left's measure).
    stream_lengths: List[Tuple[int, int]] = field(default_factory=list)
    per_level_predicted: Dict[int, int] = field(default_factory=dict)
    per_level_misses: Dict[int, int] = field(default_factory=dict)

    def coverage(self) -> float:
        """Fraction of correct-path misses predicted."""
        if self.total_misses == 0:
            return 0.0
        return self.predicted_misses / self.total_misses

    def level_coverage(self, trap_level: int) -> float:
        """Coverage restricted to one trap level."""
        total = self.per_level_misses.get(trap_level, 0)
        if total == 0:
            return 0.0
        return self.per_level_predicted.get(trap_level, 0) / total

    def merge(self, other: OracleResult) -> None:
        """Accumulate ``other`` into this result (for per-level oracles)."""
        self.predicted_misses += other.predicted_misses
        self.total_misses += other.total_misses
        self.jump_histogram.update(other.jump_histogram)
        self.stream_lengths.extend(other.stream_lengths)
        for level, count in other.per_level_predicted.items():
            self.per_level_predicted[level] = (
                self.per_level_predicted.get(level, 0) + count)
        for level, count in other.per_level_misses.items():
            self.per_level_misses[level] = (
                self.per_level_misses.get(level, 0) + count)


class _ActiveStream:
    """One live replay window inside an oracle."""

    __slots__ = ("pointer", "window", "jump_bin", "matches")

    def __init__(self, pointer: int, jump_bin: int) -> None:
        self.pointer = pointer
        self.window: List[int] = []
        self.jump_bin = jump_bin
        self.matches = 0


class TemporalStreamOracle:
    """Block-granularity record/replay predictability measurement.

    ``history_entries=None`` gives the unbounded history of the trace
    studies.  ``streams`` and ``window`` bound concurrency and lookahead
    the way SAB hardware would; defaults are deliberately modest so the
    oracle does not overstate any observation point.
    """

    def __init__(self, streams: int = 4, window: int = 32,
                 history_entries: Optional[int] = None) -> None:
        if streams <= 0 or window <= 0:
            raise ValueError("streams and window must be positive")
        self.streams = streams
        self.window = window
        self._history: HistoryBuffer[int] = HistoryBuffer(history_entries)
        self._index: Dict[int, int] = {}
        self._active: List[_ActiveStream] = []
        self.result = OracleResult()
        #: When False, events train the oracle but are not counted —
        #: the warmup phase of the paper's measurement methodology.
        self.counting = True

    def process(self, events: Sequence[StreamEvent]) -> OracleResult:
        """Run the oracle over an event sequence and return the result."""
        for event in events:
            self.observe(event)
        self.finish()
        return self.result

    def observe(self, event: StreamEvent) -> None:
        """Feed one event: match, maybe trigger, then record."""
        matched = self._match(event.key)
        if self.counting and event.is_miss and event.correct_path:
            self.result.total_misses += 1
            self.result.per_level_misses[event.trap_level] = (
                self.result.per_level_misses.get(event.trap_level, 0) + 1)
            if matched:
                self.result.predicted_misses += 1
                self.result.per_level_predicted[event.trap_level] = (
                    self.result.per_level_predicted.get(event.trap_level, 0) + 1)
        if not matched and event.is_miss:
            self._trigger(event.key)
        position = self._history.append(event.key)
        self._index[event.key] = position

    def finish(self) -> None:
        """Retire all active streams into the length statistics."""
        for stream in self._active:
            self._retire_stream(stream)
        self._active = []

    # ------------------------------------------------------------------

    def _match(self, key: int) -> bool:
        for rank, stream in enumerate(self._active):
            if key in stream.window:
                offset = stream.window.index(key)
                stream.pointer += offset + 1
                stream.matches += 1
                self._refill(stream)
                if rank:
                    self._active.insert(0, self._active.pop(rank))
                return True
        return False

    def _trigger(self, key: int) -> None:
        position = self._index.get(key)
        if position is None:
            return
        live_from = self._history.oldest_live
        if position < live_from:
            return
        distance = self._history.tail - position
        jump_bin = max(0, distance.bit_length() - 1)
        stream = _ActiveStream(position + 1, jump_bin)
        self._refill(stream)
        if not stream.window:
            return
        if len(self._active) >= self.streams:
            self._retire_stream(self._active.pop())
        self._active.insert(0, stream)

    def _refill(self, stream: _ActiveStream) -> None:
        run = self._history.read_run(stream.pointer, self.window)
        stream.window = [record for _, record in run]

    def _retire_stream(self, stream: _ActiveStream) -> None:
        self.result.jump_histogram[stream.jump_bin] += stream.matches
        self.result.stream_lengths.append((stream.matches, stream.matches))


# ----------------------------------------------------------------------
# Event construction for the four Figure 2 observation points


@dataclass(slots=True)
class ViewEvents:
    """The four Figure 2 event sequences derived from one trace bundle."""

    miss: List[StreamEvent]
    access: List[StreamEvent]
    retire: List[StreamEvent]
    #: Total correct-path baseline misses (shared denominator).
    correct_path_misses: int

    def for_kind(self, kind: str) -> List[StreamEvent]:
        """Events for a :class:`~repro.trace.records.StreamKind` name.

        ``retire_sep`` shares the retire events; separation happens in
        the oracle wiring (:func:`measure_stream_predictability`).
        """
        if kind == StreamKind.MISS:
            return self.miss
        if kind == StreamKind.ACCESS:
            return self.access
        if kind in (StreamKind.RETIRE, StreamKind.RETIRE_SEP):
            return self.retire
        raise ValueError(f"unknown stream kind {kind!r}")


def build_view_events(bundle: TraceBundle,
                      cache_config: Optional[CacheConfig] = None
                      ) -> ViewEvents:
    """Replay the baseline cache once; derive all four views.

    The baseline cache sees the *full* access stream, wrong path
    included, so wrong-path fills that later serve correct-path fetches
    count as hits (the paper's footnote 1 accounting).  The replay runs
    through the vectorized no-prefetch pass
    (:func:`repro.sim.baseline.replay_baseline`) over the bundle's raw
    columns; only the event objects themselves are materialized here.
    """
    config = cache_config if cache_config is not None else CacheConfig()
    block_bits = block_bits_for(config.block_bytes)
    hits = replay_baseline(bundle, config).hits
    correct_path_misses = int(
        ((~hits) & (~bundle.access_wrong_path)).sum())

    access_events: List[StreamEvent] = []
    retire_events: List[StreamEvent] = []
    for block, hit, wrong_path, trap_level in zip(
            bundle.access_block.tolist(), hits.tolist(),
            bundle.access_wrong_path.tolist(), bundle.access_trap.tolist()):
        event = StreamEvent(block, not hit, not wrong_path, trap_level)
        access_events.append(event)
        if not wrong_path:
            retire_events.append(event)

    if len(retire_events) != len(bundle.retire_pc):
        raise RuntimeError(
            "access/retire alignment broken while building view events")
    # Rekey retire events by the retire-stream block (identical to the
    # access block by the alignment invariant; assert via sampling).
    for sample in range(0, len(retire_events), max(1, len(retire_events) // 64)):
        expected = int(bundle.retire_pc[sample]) >> block_bits
        if retire_events[sample].key != expected:
            raise RuntimeError("retire stream does not align with accesses")

    miss_events = [event for event in access_events if event.is_miss]
    return ViewEvents(
        miss=miss_events,
        access=access_events,
        retire=retire_events,
        correct_path_misses=correct_path_misses,
    )


def measure_stream_predictability(
    bundle: TraceBundle,
    kind: str,
    cache_config: Optional[CacheConfig] = None,
    streams: int = 4,
    window: int = 32,
    view_events: Optional[ViewEvents] = None,
    warmup_fraction: float = 0.25,
) -> OracleResult:
    """Figure 2 methodology for one observation point.

    The first ``warmup_fraction`` of events train the oracle without
    being counted (the paper measures from warmed checkpoints).  For
    ``retire_sep``, one oracle per trap level processes that level's
    subsequence; results are merged over a shared denominator.
    """
    views = view_events if view_events is not None else build_view_events(
        bundle, cache_config)
    events = views.for_kind(kind)
    boundary = int(len(events) * warmup_fraction)
    if kind != StreamKind.RETIRE_SEP:
        oracle = TemporalStreamOracle(streams=streams, window=window)
        for position, event in enumerate(events):
            oracle.counting = position >= boundary
            oracle.observe(event)
        oracle.finish()
        return oracle.result
    oracles: Dict[int, TemporalStreamOracle] = {}
    for position, event in enumerate(events):
        oracle = oracles.get(event.trap_level)
        if oracle is None:
            oracle = TemporalStreamOracle(streams=streams, window=window)
            oracles[event.trap_level] = oracle
        oracle.counting = position >= boundary
        oracle.observe(event)
    merged = OracleResult()
    for oracle in oracles.values():
        oracle.finish()
        merged.merge(oracle.result)
    return merged


# ----------------------------------------------------------------------
# Region-granularity PIF predictor oracle (Figures 8 and 9)


class _RegionStream:
    """One live region-granularity replay window."""

    __slots__ = ("pointer", "window", "block_map", "jump_bin", "matches")

    def __init__(self, pointer: int, jump_bin: int) -> None:
        self.pointer = pointer
        self.window: List[SpatialRegionRecord] = []
        self.block_map: Dict[int, int] = {}
        self.jump_bin = jump_bin
        self.matches = 0


class PIFPredictorOracle:
    """Predictor-coverage measurement with the real PIF record pipeline.

    Records the retire stream through the spatial and temporal
    compactors into a (bounded) history buffer with an unbounded index,
    and measures — without prefetching — how many miss events fall
    inside active replay windows.  One oracle instance serves one trap
    level; use :func:`measure_pif_predictability` for the full
    separated measurement.
    """

    def __init__(self, geometry: Optional[RegionGeometry] = None,
                 history_entries: int = 32 * 1024,
                 temporal_entries: int = 4,
                 streams: int = 4, window_regions: int = 7,
                 block_bytes: int = 64) -> None:
        self.geometry = geometry if geometry is not None else RegionGeometry()
        self.block_bytes = block_bytes
        self._block_bits = block_bits_for(block_bytes)
        self._spatial = SpatialCompactor(self.geometry, block_bytes)
        self._temporal = TemporalCompactor(temporal_entries)
        self._history: HistoryBuffer[SpatialRegionRecord] = HistoryBuffer(
            history_entries)
        self._index: Dict[int, int] = {}
        self._active: List[_RegionStream] = []
        self.streams = streams
        self.window_regions = window_regions
        self.result = OracleResult()
        #: When False, events train the oracle but are not counted.
        self.counting = True

    def observe(self, pc: int, trap_level: int, is_miss: bool) -> None:
        """Feed one retire event with its aligned cache outcome."""
        block = pc >> self._block_bits
        matched = self._match(block)
        if self.counting and is_miss:
            self.result.total_misses += 1
            self.result.per_level_misses[trap_level] = (
                self.result.per_level_misses.get(trap_level, 0) + 1)
            if matched:
                self.result.predicted_misses += 1
                self.result.per_level_predicted[trap_level] = (
                    self.result.per_level_predicted.get(trap_level, 0) + 1)
        if not matched:
            self._trigger(pc)
        region = self._spatial.feed(pc, tagged=not matched)
        if region is not None:
            self._record(region)

    def finish(self) -> OracleResult:
        """Flush the open region and retire active streams."""
        final = self._spatial.flush()
        if final is not None:
            self._record(final)
        for stream in self._active:
            self._retire_stream(stream)
        self._active = []
        return self.result

    # ------------------------------------------------------------------

    def _record(self, region: SpatialRegionRecord) -> None:
        survivor = self._temporal.feed(region)
        if survivor is None:
            return
        position = self._history.append(survivor)
        if survivor.tagged:
            self._index[survivor.trigger_pc] = position

    def _match(self, block: int) -> bool:
        for rank, stream in enumerate(self._active):
            slot = stream.block_map.get(block)
            if slot is None:
                continue
            stream.matches += 1
            if slot > 0:
                stream.window = stream.window[slot:]
                self._refill(stream)
            if rank:
                self._active.insert(0, self._active.pop(rank))
            return True
        return False

    def _trigger(self, pc: int) -> None:
        position = self._index.get(pc)
        if position is None:
            return
        if position < self._history.oldest_live:
            return
        distance = self._history.tail - position
        jump_bin = max(0, distance.bit_length() - 1)
        stream = _RegionStream(position, jump_bin)
        self._refill(stream)
        if not stream.window:
            return
        if len(self._active) >= self.streams:
            self._retire_stream(self._active.pop())
        self._active.insert(0, stream)

    def _refill(self, stream: _RegionStream) -> None:
        # ``pointer`` always names the next unread history position.
        needed = self.window_regions - len(stream.window)
        if needed > 0:
            run = self._history.read_run(stream.pointer, needed)
            for position, record in run:
                stream.window.append(record)
                stream.pointer = position + 1
        stream.block_map = {}
        for slot, record in enumerate(stream.window):
            for block in record.blocks(self.geometry, self.block_bytes):
                stream.block_map.setdefault(block, slot)

    def _retire_stream(self, stream: _RegionStream) -> None:
        self.result.jump_histogram[stream.jump_bin] += stream.matches
        self.result.stream_lengths.append((stream.matches, stream.matches))


def measure_pif_predictability(
    bundle: TraceBundle,
    geometry: Optional[RegionGeometry] = None,
    history_entries: int = 32 * 1024,
    temporal_entries: int = 4,
    streams: int = 4,
    window_regions: int = 7,
    cache_config: Optional[CacheConfig] = None,
    view_events: Optional[ViewEvents] = None,
    separate_trap_levels: bool = True,
    warmup_fraction: float = 0.25,
) -> OracleResult:
    """PIF predictor coverage over one trace (Figures 8 and 9).

    Uses the aligned retire events (with baseline-cache miss flags) and
    one :class:`PIFPredictorOracle` per trap level.
    """
    views = view_events if view_events is not None else build_view_events(
        bundle, cache_config)
    oracles: Dict[int, PIFPredictorOracle] = {}

    def oracle_for(trap_level: int) -> PIFPredictorOracle:
        key = trap_level if separate_trap_levels else 0
        oracle = oracles.get(key)
        if oracle is None:
            oracle = PIFPredictorOracle(
                geometry=geometry, history_entries=history_entries,
                temporal_entries=temporal_entries, streams=streams,
                window_regions=window_regions,
                block_bytes=(cache_config.block_bytes
                             if cache_config else 64))
            oracles[key] = oracle
        return oracle

    boundary = int(len(bundle.retire_pc) * warmup_fraction)
    for position, (retire_pc, retire_trap, event) in enumerate(
            zip(bundle.retire_pc.tolist(), bundle.retire_trap.tolist(),
                views.retire)):
        oracle = oracle_for(retire_trap)
        oracle.counting = position >= boundary
        oracle.observe(retire_pc, retire_trap, event.is_miss)
    merged = OracleResult()
    for oracle in oracles.values():
        oracle.finish()
        merged.merge(oracle.result)
    return merged
