"""Specialized no-prefetch baseline replay over raw trace columns.

Every coverage measurement needs the same denominator: the demand
misses a plain L1-I takes on the access stream with no prefetcher
attached.  The generic :class:`~repro.cache.icache.InstructionCache`
computes it faithfully but expensively — per-access ``AccessResult``
allocation, per-set policy objects, per-line dataclasses — and, being
pure bookkeeping with no prefetch interaction, it is the one part of
the replay that specializes cleanly.

:func:`replay_baseline` walks the columnar access stream once with the
minimal per-set state each replacement policy actually needs (a recency
list for LRU, a fill queue for FIFO, a way table plus the per-set
``Random(0)`` draw sequence for random — matching the cache model's
policy construction exactly) and records a per-access hit flag.  All
counting is then vectorized over that flag array: warmup windowing,
correct-path filtering and per-trap-level miss counts become numpy mask
reductions (:func:`count_measured_misses`) instead of per-access branch
work.

The contract is bit-identical results: the hit flags, the
:class:`~repro.cache.stats.CacheStats` counters, and the derived miss
counts all equal what an ``InstructionCache`` walk over the object view
produces (``tests/sim/test_baseline.py`` locks this against the real
cache model).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cache.stats import CacheStats
from ..common.config import CacheConfig
from ..trace.bundle import TraceBundle


@dataclass(slots=True)
class BaselineReplay:
    """Outcome of one no-prefetch replay of an access stream."""

    #: Per-access demand-hit flag, aligned with the access columns.
    hits: np.ndarray
    #: Whole-trace cache counters (prefetch counters are all zero).
    stats: CacheStats


# reprolint: hot
def _replay_lru(blocks: List[int], n_sets: int, ways: int,
                hits: np.ndarray) -> int:
    """LRU replay; returns the eviction count and fills ``hits``."""
    sets: List[List[int]] = [[] for _ in range(n_sets)]
    evictions = 0
    for position, block in enumerate(blocks):
        lines = sets[block % n_sets]
        if block in lines:
            hits[position] = True
            if lines[-1] != block:
                lines.remove(block)
                lines.append(block)
        else:
            if len(lines) == ways:
                del lines[0]
                evictions += 1
            lines.append(block)
    return evictions


# reprolint: hot
def _replay_fifo(blocks: List[int], n_sets: int, ways: int,
                 hits: np.ndarray) -> int:
    """FIFO replay: hits do not promote; victim is the oldest fill."""
    sets: List[List[int]] = [[] for _ in range(n_sets)]
    evictions = 0
    for position, block in enumerate(blocks):
        lines = sets[block % n_sets]
        if block in lines:
            hits[position] = True
        else:
            if len(lines) == ways:
                del lines[0]
                evictions += 1
            lines.append(block)
    return evictions


# reprolint: hot
def _replay_random(blocks: List[int], n_sets: int, ways: int,
                   hits: np.ndarray,
                   rng: Optional[random.Random]) -> int:
    """Random replay, reproducing the cache model's draw sequence.

    The cache model builds one policy per set; with no shared RNG each
    set's policy owns an independent ``Random(0)``, and free ways are
    filled lowest-index first.  Both details are replicated so the
    victim sequence — and therefore every hit flag — matches.
    """
    way_blocks: List[List[Optional[int]]] = [[None] * ways
                                             for _ in range(n_sets)]
    rngs: List[random.Random] = [
        rng if rng is not None else random.Random(0) for _ in range(n_sets)]
    evictions = 0
    for position, block in enumerate(blocks):
        index = block % n_sets
        slots = way_blocks[index]
        if block in slots:
            hits[position] = True
        else:
            try:
                way = slots.index(None)
            except ValueError:
                way = rngs[index].randrange(ways)
                evictions += 1
            slots[way] = block
    return evictions


def replay_baseline(bundle: TraceBundle,
                    config: Optional[CacheConfig] = None,
                    rng: Optional[random.Random] = None) -> BaselineReplay:
    """Replay ``bundle``'s access stream through a no-prefetch cache.

    Bit-identical to driving :class:`~repro.cache.icache.InstructionCache`
    over every access: same hit flags, same counters.  ``rng`` mirrors
    the cache constructor's optional shared RNG for the random policy
    (the default, ``None``, gives each set an independent ``Random(0)``
    exactly as the cache model does).
    """
    cache_config = config if config is not None else CacheConfig()
    blocks = bundle.access_block.tolist()
    hits = np.zeros(len(blocks), dtype=np.bool_)
    n_sets, ways = cache_config.n_sets, cache_config.associativity
    if cache_config.replacement == "lru":
        evictions = _replay_lru(blocks, n_sets, ways, hits)
    elif cache_config.replacement == "fifo":
        evictions = _replay_fifo(blocks, n_sets, ways, hits)
    elif cache_config.replacement == "random":
        evictions = _replay_random(blocks, n_sets, ways, hits, rng)
    else:
        raise ValueError(
            f"unknown replacement policy {cache_config.replacement!r}")
    stats = CacheStats()
    stats.demand_accesses = len(blocks)
    stats.demand_hits = int(np.count_nonzero(hits))
    stats.demand_misses = stats.demand_accesses - stats.demand_hits
    stats.evictions = evictions
    return BaselineReplay(hits=hits, stats=stats)


# ---------------------------------------------------------------------------
# Cross-point baseline memoization (sweep-scale execution engine).
#
# A no-prefetch baseline depends only on (trace content, cache geometry,
# replacement policy, warmup window) — nothing a prefetch engine does
# can change it.  Engine-axis sweeps and lane shards therefore replay
# identical baselines over and over; `measured_baseline` collapses them
# to one replay per key per process, and its export/seed helpers let
# the sweep runner persist entries in an on-disk sidecar next to the
# results store so later runs (and sibling workers) skip even that.


@dataclass(slots=True, frozen=True)
class MeasuredBaseline:
    """The derived outcome of one no-prefetch baseline replay.

    Immutable value object: ``stats()`` materializes a fresh
    :class:`CacheStats` per caller so no consumer can mutate a shared
    instance.  ``per_level`` maps trap level to measured-window miss
    count (stored as a sorted tuple so the object is hashable and
    JSON-stable).
    """

    misses: int
    per_level: Tuple[Tuple[int, int], ...]
    demand_accesses: int
    demand_hits: int
    evictions: int

    def stats(self) -> CacheStats:
        """Whole-trace cache counters, as the replay produced them."""
        return CacheStats(
            demand_accesses=self.demand_accesses,
            demand_hits=self.demand_hits,
            demand_misses=self.demand_accesses - self.demand_hits,
            evictions=self.evictions,
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-able form for the on-disk sidecar."""
        return {
            "misses": self.misses,
            "per_level": {str(level): count
                          for level, count in self.per_level},
            "demand_accesses": self.demand_accesses,
            "demand_hits": self.demand_hits,
            "evictions": self.evictions,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> MeasuredBaseline:
        """Inverse of :meth:`to_json`; raises KeyError/ValueError on
        malformed payloads (callers treat those as cache misses)."""
        per_level = tuple(sorted(
            (int(level), int(count))
            for level, count in dict(payload["per_level"]).items()))
        return cls(misses=int(payload["misses"]), per_level=per_level,
                   demand_accesses=int(payload["demand_accesses"]),
                   demand_hits=int(payload["demand_hits"]),
                   evictions=int(payload["evictions"]))


_derivation_hash_cache: Optional[str] = None


def baseline_derivation_hash() -> str:
    """Short digest over this module's source — the replay semantics.

    Folded into every memo key so *persisted* entries (the sweep
    sidecar) can never outlive the algorithm that derived them: editing
    the replay code changes the key and stale sidecar lines silently
    stop matching, exactly like the trace store's generator-version
    hash.
    """
    global _derivation_hash_cache
    if _derivation_hash_cache is None:
        import hashlib
        from pathlib import Path

        _derivation_hash_cache = hashlib.sha256(
            Path(__file__).read_bytes()).hexdigest()[:8]
    return _derivation_hash_cache


def baseline_memo_key(content_hash: str, config: CacheConfig,
                      warmup_fraction: float) -> str:
    """The stable string key a baseline is memoized (and persisted)
    under: trace content hash + full cache geometry + warmup window +
    replay-derivation hash."""
    return (f"{content_hash}:{config.capacity_bytes}:{config.associativity}"
            f":{config.block_bytes}:{config.replacement}:{warmup_fraction!r}"
            f":d{baseline_derivation_hash()}")


#: Process-wide memo: sidecar-seeded and freshly computed baselines.
_BASELINE_MEMO: Dict[str, MeasuredBaseline] = {}


def measured_baseline(bundle: TraceBundle,
                      config: Optional[CacheConfig] = None,
                      warmup_fraction: float = 0.25) -> MeasuredBaseline:
    """The memoized measured-window baseline for (bundle, config, warmup).

    Lookup order: the bundle's derived-value cache (no hashing needed),
    then the process-wide memo keyed by trace content hash (hit when a
    sidecar seeded the entry or another bundle instance computed it),
    then a real :func:`replay_baseline` pass.  Results are bit-identical
    to the direct replay in every case — the memo stores only derived
    counts, and the replay itself stays the single source of truth.
    """
    cache_config = config if config is not None else CacheConfig()
    derived = bundle.derived_cache()
    local_key = ("baseline", cache_config, warmup_fraction)
    measured = derived.get(local_key)
    memo_key = baseline_memo_key(bundle.content_hash(), cache_config,
                                 warmup_fraction)
    if measured is not None:
        # Mirror derived-cache hits into the exportable memo so sidecar
        # snapshots stay complete even when the bundle was warm.
        if memo_key not in _BASELINE_MEMO:
            _BASELINE_MEMO[memo_key] = measured
        return measured
    measured = _BASELINE_MEMO.get(memo_key)
    if measured is None:
        replay = replay_baseline(bundle, cache_config)
        misses, per_level = count_measured_misses(bundle, replay.hits,
                                                  warmup_fraction)
        measured = MeasuredBaseline(
            misses=misses,
            per_level=tuple(sorted(per_level.items())),
            demand_accesses=replay.stats.demand_accesses,
            demand_hits=replay.stats.demand_hits,
            evictions=replay.stats.evictions,
        )
        _BASELINE_MEMO[memo_key] = measured
    derived[local_key] = measured
    return measured


def seed_baseline_memo(entries: Dict[str, Dict[str, object]]) -> int:
    """Install sidecar entries into the process-wide memo.

    Malformed entries are skipped (the baseline is simply recomputed);
    returns the number installed.  Existing keys are left untouched —
    a computed entry and its sidecar copy are identical by construction.
    """
    installed = 0
    for memo_key, payload in entries.items():
        if memo_key in _BASELINE_MEMO:
            continue
        try:
            _BASELINE_MEMO[memo_key] = MeasuredBaseline.from_json(payload)
        except (KeyError, TypeError, ValueError):
            continue
        installed += 1
    return installed


def export_baseline_memo(content_hash: Optional[str] = None
                         ) -> Dict[str, Dict[str, object]]:
    """Snapshot the process-wide memo in sidecar (JSON) form.

    ``content_hash`` scopes the snapshot to one trace's entries (memo
    keys are prefixed by the trace content hash) — what a sweep task
    returns, so a long-lived worker never leaks baselines belonging to
    other traces or other sweeps into a results directory's sidecar.
    """
    if content_hash is None:
        return {memo_key: measured.to_json()
                for memo_key, measured in _BASELINE_MEMO.items()}
    prefix = content_hash + ":"
    return {memo_key: measured.to_json()
            for memo_key, measured in _BASELINE_MEMO.items()
            if memo_key.startswith(prefix)}


def clear_baseline_memo() -> None:
    """Drop the process-wide memo (tests and benchmark isolation)."""
    _BASELINE_MEMO.clear()


def count_measured_misses(bundle: TraceBundle, hits: np.ndarray,
                          warmup_fraction: float
                          ) -> Tuple[int, Dict[int, int]]:
    """Correct-path demand misses inside the measurement window.

    Vectorized equivalent of the per-access accounting the trace walk
    used to do: an access counts when it missed, is on the correct
    path, and falls at or after the warmup boundary.  Returns the total
    and the per-trap-level split.
    """
    counted = ~hits & ~bundle.access_wrong_path  # fresh array; safe to mask
    boundary = int(len(hits) * warmup_fraction)
    if boundary:
        counted[:boundary] = False
    misses = int(np.count_nonzero(counted))
    levels, counts = np.unique(bundle.access_trap[counted],
                               return_counts=True)
    per_level = {int(level): int(count)
                 for level, count in zip(levels, counts)}
    return misses, per_level
