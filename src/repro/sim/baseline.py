"""Specialized no-prefetch baseline replay over raw trace columns.

Every coverage measurement needs the same denominator: the demand
misses a plain L1-I takes on the access stream with no prefetcher
attached.  The generic :class:`~repro.cache.icache.InstructionCache`
computes it faithfully but expensively — per-access ``AccessResult``
allocation, per-set policy objects, per-line dataclasses — and, being
pure bookkeeping with no prefetch interaction, it is the one part of
the replay that specializes cleanly.

:func:`replay_baseline` walks the columnar access stream once with the
minimal per-set state each replacement policy actually needs (a recency
list for LRU, a fill queue for FIFO, a way table plus the per-set
``Random(0)`` draw sequence for random — matching the cache model's
policy construction exactly) and records a per-access hit flag.  All
counting is then vectorized over that flag array: warmup windowing,
correct-path filtering and per-trap-level miss counts become numpy mask
reductions (:func:`count_measured_misses`) instead of per-access branch
work.

The contract is bit-identical results: the hit flags, the
:class:`~repro.cache.stats.CacheStats` counters, and the derived miss
counts all equal what an ``InstructionCache`` walk over the object view
produces (``tests/sim/test_baseline.py`` locks this against the real
cache model).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cache.stats import CacheStats
from ..common.config import CacheConfig
from ..trace.bundle import TraceBundle


@dataclass(slots=True)
class BaselineReplay:
    """Outcome of one no-prefetch replay of an access stream."""

    #: Per-access demand-hit flag, aligned with the access columns.
    hits: np.ndarray
    #: Whole-trace cache counters (prefetch counters are all zero).
    stats: CacheStats


def _replay_lru(blocks: List[int], n_sets: int, ways: int,
                hits: np.ndarray) -> int:
    """LRU replay; returns the eviction count and fills ``hits``."""
    sets: List[List[int]] = [[] for _ in range(n_sets)]
    evictions = 0
    for position, block in enumerate(blocks):
        lines = sets[block % n_sets]
        if block in lines:
            hits[position] = True
            if lines[-1] != block:
                lines.remove(block)
                lines.append(block)
        else:
            if len(lines) == ways:
                del lines[0]
                evictions += 1
            lines.append(block)
    return evictions


def _replay_fifo(blocks: List[int], n_sets: int, ways: int,
                 hits: np.ndarray) -> int:
    """FIFO replay: hits do not promote; victim is the oldest fill."""
    sets: List[List[int]] = [[] for _ in range(n_sets)]
    evictions = 0
    for position, block in enumerate(blocks):
        lines = sets[block % n_sets]
        if block in lines:
            hits[position] = True
        else:
            if len(lines) == ways:
                del lines[0]
                evictions += 1
            lines.append(block)
    return evictions


def _replay_random(blocks: List[int], n_sets: int, ways: int,
                   hits: np.ndarray,
                   rng: Optional[random.Random]) -> int:
    """Random replay, reproducing the cache model's draw sequence.

    The cache model builds one policy per set; with no shared RNG each
    set's policy owns an independent ``Random(0)``, and free ways are
    filled lowest-index first.  Both details are replicated so the
    victim sequence — and therefore every hit flag — matches.
    """
    way_blocks: List[List[Optional[int]]] = [[None] * ways
                                             for _ in range(n_sets)]
    rngs: List[random.Random] = [
        rng if rng is not None else random.Random(0) for _ in range(n_sets)]
    evictions = 0
    for position, block in enumerate(blocks):
        index = block % n_sets
        slots = way_blocks[index]
        if block in slots:
            hits[position] = True
        else:
            try:
                way = slots.index(None)
            except ValueError:
                way = rngs[index].randrange(ways)
                evictions += 1
            slots[way] = block
    return evictions


def replay_baseline(bundle: TraceBundle,
                    config: Optional[CacheConfig] = None,
                    rng: Optional[random.Random] = None) -> BaselineReplay:
    """Replay ``bundle``'s access stream through a no-prefetch cache.

    Bit-identical to driving :class:`~repro.cache.icache.InstructionCache`
    over every access: same hit flags, same counters.  ``rng`` mirrors
    the cache constructor's optional shared RNG for the random policy
    (the default, ``None``, gives each set an independent ``Random(0)``
    exactly as the cache model does).
    """
    cache_config = config if config is not None else CacheConfig()
    blocks = bundle.access_block.tolist()
    hits = np.zeros(len(blocks), dtype=np.bool_)
    n_sets, ways = cache_config.n_sets, cache_config.associativity
    if cache_config.replacement == "lru":
        evictions = _replay_lru(blocks, n_sets, ways, hits)
    elif cache_config.replacement == "fifo":
        evictions = _replay_fifo(blocks, n_sets, ways, hits)
    elif cache_config.replacement == "random":
        evictions = _replay_random(blocks, n_sets, ways, hits, rng)
    else:
        raise ValueError(
            f"unknown replacement policy {cache_config.replacement!r}")
    stats = CacheStats()
    stats.demand_accesses = len(blocks)
    stats.demand_hits = int(np.count_nonzero(hits))
    stats.demand_misses = stats.demand_accesses - stats.demand_hits
    stats.evictions = evictions
    return BaselineReplay(hits=hits, stats=stats)


def count_measured_misses(bundle: TraceBundle, hits: np.ndarray,
                          warmup_fraction: float
                          ) -> Tuple[int, Dict[int, int]]:
    """Correct-path demand misses inside the measurement window.

    Vectorized equivalent of the per-access accounting the trace walk
    used to do: an access counts when it missed, is on the correct
    path, and falls at or after the warmup boundary.  Returns the total
    and the per-trap-level split.
    """
    counted = ~hits & ~bundle.access_wrong_path  # fresh array; safe to mask
    boundary = int(len(hits) * warmup_fraction)
    if boundary:
        counted[:boundary] = False
    misses = int(np.count_nonzero(counted))
    levels, counts = np.unique(bundle.access_trap[counted],
                               return_counts=True)
    per_level = {int(level): int(count)
                 for level, count in zip(levels, counts)}
    return misses, per_level
