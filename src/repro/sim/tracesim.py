"""Trace-driven prefetch-into-cache simulation.

Replays a trace bundle's access stream against two caches at once: a
no-prefetch *baseline* and the *test* cache served by a prefetch engine.
Because both see the identical request sequence, the difference in
correct-path demand misses is exactly the prefetcher's effect — the
cache-miss *coverage* of Section 5.5 (Figure 10 left).

The retire stream is threaded through in its aligned order so
retire-side engines (PIF) observe retirement with the fetch-stage tag of
each instruction, as the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cache.icache import InstructionCache
from ..cache.stats import CacheStats
from ..common.config import CacheConfig
from ..prefetch.base import Prefetcher
from ..trace.bundle import TraceBundle


@dataclass(slots=True)
class PrefetchSimResult:
    """Outcome of one (trace, prefetcher) simulation."""

    workload: str
    prefetcher: str
    instructions: int
    #: Correct-path demand misses in the measurement window, no prefetch.
    baseline_misses: int
    #: Correct-path demand misses in the measurement window with prefetch.
    remaining_misses: int
    #: Per-trap-level baseline / remaining miss counts.
    per_level_baseline: Dict[int, int] = field(default_factory=dict)
    per_level_remaining: Dict[int, int] = field(default_factory=dict)
    #: Prefetch requests issued during measurement.
    prefetches_issued: int = 0
    #: Prefetch fills that were later demanded (useful) during measurement.
    cache_stats: Optional[CacheStats] = None
    baseline_stats: Optional[CacheStats] = None

    def coverage(self) -> float:
        """Fraction of baseline correct-path misses eliminated."""
        if self.baseline_misses == 0:
            return 0.0
        eliminated = self.baseline_misses - self.remaining_misses
        return max(0.0, eliminated / self.baseline_misses)

    def level_coverage(self, trap_level: int) -> float:
        """Coverage restricted to one trap level."""
        baseline = self.per_level_baseline.get(trap_level, 0)
        if baseline == 0:
            return 0.0
        remaining = self.per_level_remaining.get(trap_level, 0)
        return max(0.0, (baseline - remaining) / baseline)

    def miss_rate_reduction(self) -> float:
        """Alias for coverage, the paper's headline per-workload metric."""
        return self.coverage()

    def baseline_mpki(self) -> float:
        """Baseline misses per kilo-instruction over the whole trace
        (instructions are not windowed, so treat as indicative)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.baseline_misses / self.instructions

    def describe(self) -> Dict[str, float]:
        """Flat summary for result tables."""
        return {
            "baseline_misses": float(self.baseline_misses),
            "remaining_misses": float(self.remaining_misses),
            "coverage": self.coverage(),
            "prefetches_issued": float(self.prefetches_issued),
        }


def run_prefetch_simulation(
    bundle: TraceBundle,
    prefetcher: Prefetcher,
    cache_config: Optional[CacheConfig] = None,
    warmup_fraction: float = 0.25,
) -> PrefetchSimResult:
    """Simulate ``prefetcher`` over ``bundle``; measure after warmup.

    The warmup window lets caches, history buffers and predictor state
    reach steady state before counting, mirroring the paper's warmed
    checkpoints (Section 5).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    config = cache_config if cache_config is not None else CacheConfig()
    baseline = InstructionCache(config)
    test = InstructionCache(config)

    accesses = bundle.accesses
    retires = bundle.retires
    warmup_boundary = int(len(accesses) * warmup_fraction)

    baseline_misses = 0
    remaining_misses = 0
    per_level_baseline: Dict[int, int] = {}
    per_level_remaining: Dict[int, int] = {}
    prefetches_issued = 0

    retire_cursor = 0
    for position, access in enumerate(accesses):
        measuring = position >= warmup_boundary
        baseline_result = baseline.access(access.block)
        test_result = test.access(access.block)
        if not access.wrong_path:
            if measuring:
                if not baseline_result.hit:
                    baseline_misses += 1
                    per_level_baseline[access.trap_level] = (
                        per_level_baseline.get(access.trap_level, 0) + 1)
                if not test_result.hit:
                    remaining_misses += 1
                    per_level_remaining[access.trap_level] = (
                        per_level_remaining.get(access.trap_level, 0) + 1)
        candidates = prefetcher.on_demand_access(
            access.block, access.pc, access.trap_level,
            test_result.hit, test_result.was_prefetched)
        for block in candidates:
            if measuring:
                prefetches_issued += 1
            test.prefetch(block)
        if not access.wrong_path:
            retire = retires[retire_cursor]
            retire_cursor += 1
            prefetcher.on_retire(retire.pc, retire.trap_level,
                                 tagged=test_result.tagged)

    if retire_cursor != len(retires):
        raise RuntimeError(
            "access/retire alignment broken: consumed "
            f"{retire_cursor} of {len(retires)} retire records"
        )

    return PrefetchSimResult(
        workload=bundle.workload,
        prefetcher=prefetcher.name,
        instructions=bundle.instructions,
        baseline_misses=baseline_misses,
        remaining_misses=remaining_misses,
        per_level_baseline=per_level_baseline,
        per_level_remaining=per_level_remaining,
        prefetches_issued=prefetches_issued,
        cache_stats=test.stats,
        baseline_stats=baseline.stats,
    )
