"""Trace-driven prefetch-into-cache simulation.

Replays a trace bundle's access stream against two caches at once: a
no-prefetch *baseline* and the *test* cache served by a prefetch engine.
Because both see the identical request sequence, the difference in
correct-path demand misses is exactly the prefetcher's effect — the
cache-miss *coverage* of Section 5.5 (Figure 10 left).

The retire stream is threaded through in its aligned order so
retire-side engines (PIF) observe retirement with the fetch-stage tag of
each instruction, as the hardware would.

:func:`run_prefetch_simulation` is the single-engine entry point; it is
a thin wrapper over :func:`repro.sim.engine.run_multi_prefetch_simulation`,
which replays one trace against N engines in a single walk.  Call the
multi-engine form directly when comparing engines or sweeping settings
over the same trace — it produces bit-identical results at a fraction
of the cost.  The no-prefetch baseline half of each result is computed
by the vectorized columnar replay in :mod:`repro.sim.baseline`, not by
a second cache walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cache.stats import CacheStats
from ..common.config import CacheConfig
from ..prefetch.base import Prefetcher
from ..trace.bundle import TraceBundle


@dataclass(slots=True)
class PrefetchSimResult:
    """Outcome of one (trace, prefetcher) simulation.

    Counter windows: the miss counters (``baseline_misses``,
    ``remaining_misses`` and the per-level dictionaries) cover only the
    post-warmup measurement window; ``prefetches_issued``,
    ``cache_stats`` and ``baseline_stats`` cover the whole trace, warmup
    included, so accuracy ratios computed between them are consistent.
    """

    workload: str
    prefetcher: str
    instructions: int
    #: Correct-path demand misses in the measurement window, no prefetch.
    baseline_misses: int
    #: Correct-path demand misses in the measurement window with prefetch.
    remaining_misses: int
    #: Per-trap-level baseline / remaining miss counts.
    per_level_baseline: Dict[int, int] = field(default_factory=dict)
    per_level_remaining: Dict[int, int] = field(default_factory=dict)
    #: Prefetch requests issued over the whole trace (same window as
    #: ``cache_stats``; useful-prefetch counts live there).
    prefetches_issued: int = 0
    #: Test-cache counters for the whole trace (fills, useful prefetches).
    cache_stats: Optional[CacheStats] = None
    #: Baseline-cache counters for the whole trace.
    baseline_stats: Optional[CacheStats] = None

    def coverage(self) -> float:
        """Fraction of baseline correct-path misses eliminated.

        The value is *signed*: a polluting prefetcher that inflicts more
        misses than it removes reports negative coverage rather than a
        silently clamped 0.0.
        """
        if self.baseline_misses == 0:
            return 0.0
        eliminated = self.baseline_misses - self.remaining_misses
        return eliminated / self.baseline_misses

    def level_coverage(self, trap_level: int) -> float:
        """Coverage restricted to one trap level (signed, like
        :meth:`coverage`)."""
        baseline = self.per_level_baseline.get(trap_level, 0)
        if baseline == 0:
            return 0.0
        remaining = self.per_level_remaining.get(trap_level, 0)
        return (baseline - remaining) / baseline

    def miss_rate_reduction(self) -> float:
        """Alias for coverage, the paper's headline per-workload metric."""
        return self.coverage()

    def baseline_mpki(self) -> float:
        """Baseline misses per kilo-instruction over the whole trace
        (instructions are not windowed, so treat as indicative)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.baseline_misses / self.instructions

    def describe(self) -> Dict[str, float]:
        """Flat summary for result tables.

        ``prefetches_issued`` here is the whole-trace count (the
        ``cache_stats`` window); the miss counts and ``coverage`` are
        measurement-window values.
        """
        return {
            "baseline_misses": float(self.baseline_misses),
            "remaining_misses": float(self.remaining_misses),
            "coverage": self.coverage(),
            "prefetches_issued": float(self.prefetches_issued),
        }


def run_prefetch_simulation(
    bundle: TraceBundle,
    prefetcher: Prefetcher,
    cache_config: Optional[CacheConfig] = None,
    warmup_fraction: float = 0.25,
) -> PrefetchSimResult:
    """Simulate ``prefetcher`` over ``bundle``; measure after warmup.

    The warmup window lets caches, history buffers and predictor state
    reach steady state before counting, mirroring the paper's warmed
    checkpoints (Section 5).  This is a compatibility wrapper over the
    single-pass multi-engine simulator; see :mod:`repro.sim.engine`.
    """
    from .engine import run_multi_prefetch_simulation

    return run_multi_prefetch_simulation(
        bundle, [prefetcher], cache_config=cache_config,
        warmup_fraction=warmup_fraction)[0]
