"""The sweep coordinator: lease out group tasks, merge records back.

:class:`LeaseBoard` is the lease state machine, shared (under one lock)
by every coordinator HTTP request thread:

::

    pending ──grant──► leased ──records──► done
       ▲                  │
       │                  ├─ task-failed / lease expired / worker died
       │                  ▼
       └──requeue── attempt < max_retries?  ──no──► quarantined
                                                    (failed records)

The board never pushes work: workers *pull* leases
(``POST /v1/dist/lease``), so scheduling degrades gracefully — a slow
worker simply takes fewer tasks, a dead one takes none and its leases
expire back onto the queue.  Retry and quarantine reuse the inline
runner's machinery verbatim (same :class:`TaskFailure` shapes, same
:func:`_failed_records` payloads, same exit-3 ``degraded()`` contract),
so a distributed quarantine record is byte-identical to the one a
``--jobs N`` run would have written.

:func:`run_distributed_sweep` is the drop-in sibling of
:func:`repro.scenarios.runner.run_sweep` behind ``repro sweep run
--transport local|http``: same :class:`SweepRunSummary`, same store,
same resume semantics.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import (Any, Callable, Dict, List, NamedTuple, Optional, Tuple,
                    Union)

from ..experiments.parallel import WORKER_DIED, TaskFailure
from ..faults import fire
from ..scenarios.results import current_generator
from ..scenarios.runner import (DEFAULT_MAX_RETRIES, SweepRunSummary,
                                _failed_records, prepare_sweep)
from ..scenarios.spec import ScenarioSpec
from ..service.schemas import payload_ack, payload_lease
from ..trace.replicate import TraceExport
from ..trace.store import TraceStore
from .protocol import Heartbeat, TaskFailed, TaskLease, TaskResult

#: Default seconds a lease may go without a heartbeat before the
#: coordinator expires it and requeues the task
#: (``repro sweep run --lease-timeout``).
DEFAULT_LEASE_TIMEOUT = 60.0

#: Supervision poll period of the coordinator loops (lease expiry for
#: the http transport, child liveness for the local one).
_POLL_PERIOD = 0.05

#: Seconds the http-transport coordinator keeps serving after the last
#: task completes, so externally-attached workers polling for work
#: receive "drained" (exit 0) instead of a connection error.
_HTTP_DRAIN_GRACE = 2.0


class _Lease(NamedTuple):
    index: int       #: position in the board's task list
    worker: str
    deadline: float  #: time.monotonic() expiry, renewed by heartbeats


class LeaseBoard:
    """Thread-safe lease ledger over one prepared sweep plan.

    All mutation happens under one lock; every public method is one
    atomic transition.  Monotonic time is used only for lease deadlines
    (supervision bookkeeping — never recorded), so the board's *store
    effects* are deterministic in the sequence of worker reports alone.
    """

    def __init__(self, plan, *, max_retries: int = DEFAULT_MAX_RETRIES,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 emit: Callable[[str], None] = lambda line: None) -> None:
        self._lock = threading.Lock()
        self._store = plan.store
        self._sidecar = plan.sidecar
        self._known_keys = plan.known_keys
        self._tasks = list(plan.tasks)
        self._pending = deque(range(len(self._tasks)))
        self._leases: Dict[str, _Lease] = {}
        self._seq = 0
        self._terminal = 0
        self.max_retries = max_retries
        self.lease_timeout = lease_timeout
        self.computed = 0
        self.failed = 0
        self.quarantined: List[str] = []
        self._emit = emit
        self._generator = current_generator()

    def task_count(self) -> int:
        return len(self._tasks)

    def done(self) -> bool:
        """True once every task reached done or quarantined."""
        with self._lock:
            return self._terminal == len(self._tasks)

    def counts(self) -> Tuple[int, int, Tuple[str, ...]]:
        """(computed, failed, quarantined group names) snapshot."""
        with self._lock:
            return self.computed, self.failed, tuple(self.quarantined)

    # ------------------------------------------------------------------
    # worker-facing transitions (called from HTTP handler threads)

    def request_lease(self, worker: str) -> Dict[str, Any]:
        """Grant the next pending task to ``worker`` (the "lease"
        payload), or report idle/drained."""
        fire("dist.lease", worker)
        with self._lock:
            if not self._pending:
                state = ("drained"
                         if self._terminal == len(self._tasks) else "idle")
                return payload_lease(state, None)
            index = self._pending.popleft()
            self._seq += 1
            lease_id = f"lease-{self._seq:06d}"
            self._leases[lease_id] = _Lease(
                index=index, worker=worker,
                deadline=time.monotonic() + self.lease_timeout)
            document = TaskLease(lease=lease_id, generator=self._generator,
                                 task=self._tasks[index])
            return payload_lease("granted", document.to_wire())

    def submit(self, report: Union[TaskResult, TaskFailed]
               ) -> Dict[str, Any]:
        """Ingest a worker's completion or failure report (the "ack"
        payload).  A report for an expired/unknown lease is acked
        "stale" and dropped — the task was already requeued, and the
        eventual winner's records are byte-identical anyway."""
        with self._lock:
            lease = self._leases.pop(report.lease, None)
            if lease is None:
                return payload_ack("stale", report.lease)
            task = self._tasks[lease.index]
            if isinstance(report, TaskFailed):
                self._fail_locked(lease.index,
                                  TaskFailure(report.kind, report.error))
                return payload_ack("ok", report.lease)
            self._store.merge_all(report.records)
            self._sidecar.append_missing(report.baselines, self._known_keys,
                                         task.trace_key())
            self.computed += len(report.records)
            self._terminal += 1
            self._emit(f"  [{self._terminal}/{len(self._tasks)}] "
                       f"{task.group_name()} via {report.worker}: "
                       f"{len(report.records)} points")
            return payload_ack("ok", report.lease)

    def heartbeat(self, beat: Heartbeat) -> Dict[str, Any]:
        """Renew a live lease's deadline (or report it stale)."""
        with self._lock:
            lease = self._leases.get(beat.lease)
            if lease is None or lease.worker != beat.worker:
                return payload_ack("stale", beat.lease)
            self._leases[beat.lease] = lease._replace(
                deadline=time.monotonic() + self.lease_timeout)
            return payload_ack("ok", beat.lease)

    # ------------------------------------------------------------------
    # supervisor-facing transitions

    def expire_worker(self, worker: str) -> int:
        """Expire every lease held by ``worker`` (it is known dead —
        e.g. its subprocess exited); returns the number expired."""
        with self._lock:
            stale = [lease_id for lease_id, lease in self._leases.items()
                     if lease.worker == worker]
            for lease_id in stale:
                lease = self._leases.pop(lease_id)
                self._fail_locked(lease.index,
                                  TaskFailure("worker-died", WORKER_DIED))
            return len(stale)

    def expire_stale(self) -> int:
        """Expire every lease past its heartbeat deadline; returns the
        number expired."""
        now = time.monotonic()
        with self._lock:
            stale = [lease_id for lease_id, lease in self._leases.items()
                     if lease.deadline < now]
            for lease_id in stale:
                lease = self._leases.pop(lease_id)
                self._emit(f"  lease {lease_id} "
                           f"({self._tasks[lease.index].group_name()}) "
                           f"expired on worker {lease.worker}")
                self._fail_locked(lease.index,
                                  TaskFailure("worker-died", WORKER_DIED))
            return len(stale)

    def fail_outstanding(self) -> int:
        """Quarantine everything still pending or leased — the no-wedge
        backstop when no worker can be (re)spawned to make progress.
        Returns the number of tasks quarantined."""
        with self._lock:
            drained = 0
            while self._pending:
                self._quarantine_locked(
                    self._pending.popleft(),
                    TaskFailure("worker-died", WORKER_DIED))
                drained += 1
            for lease_id in list(self._leases):
                lease = self._leases.pop(lease_id)
                self._quarantine_locked(
                    lease.index, TaskFailure("worker-died", WORKER_DIED))
                drained += 1
            return drained

    # ------------------------------------------------------------------

    def _fail_locked(self, index: int, failure: TaskFailure) -> None:
        task = self._tasks[index]
        if task.attempt < self.max_retries:
            self._tasks[index] = task._replace(attempt=task.attempt + 1)
            self._pending.append(index)
            self._emit(f"  {task.group_name()} failed ({failure.kind}); "
                       f"retry {task.attempt + 1} of {self.max_retries} "
                       "queued")
        else:
            self._quarantine_locked(index, failure)

    def _quarantine_locked(self, index: int, failure: TaskFailure) -> None:
        task = self._tasks[index]
        records = _failed_records(task, failure, task.attempt + 1)
        self._store.append_all(records)
        self.failed += len(records)
        name = task.group_name()
        if name not in self.quarantined:
            self.quarantined.append(name)
        self._terminal += 1
        self._emit(f"  quarantined {name} after {task.attempt + 1} "
                   f"attempts: {failure.error}")


def run_distributed_sweep(spec: ScenarioSpec, out: Union[str, Path], *,
                          transport: str = "local", workers: int = 2,
                          limit: Optional[int] = None,
                          kernel: Optional[str] = None,
                          log: Optional[Callable[[str], None]] = None,
                          max_retries: int = DEFAULT_MAX_RETRIES,
                          lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                          host: str = "127.0.0.1", port: int = 0,
                          worker_store: Optional[Union[str, Path]] = None
                          ) -> SweepRunSummary:
    """Run (or resume) ``spec`` through the coordinator/worker tier.

    ``transport="local"`` spawns ``workers`` subprocesses on this host
    that speak the wire protocol over a loopback socket — the CI-
    testable mode, byte-equivalent to ``run_sweep``.
    ``transport="http"`` binds the coordinator on ``host:port`` and
    waits for externally launched ``repro worker --coordinator URL``
    processes to drain the queue.

    ``worker_store`` (local transport only) points the worker
    subprocesses at a separate — possibly empty — replica trace store
    and turns on ``--fetch-traces``: archives they lack are replicated
    from this coordinator's store over loopback HTTP, with SHA-256
    verification (:mod:`repro.trace.replicate`).

    Same summary, store layout, and resume/quarantine semantics as
    :func:`repro.scenarios.runner.run_sweep`; the differential harness
    in ``tests/dist/`` holds the stores byte-identical.
    """
    if transport not in ("local", "http"):
        raise ValueError(f"unknown transport {transport!r}")
    if worker_store is not None and transport != "local":
        raise ValueError("worker_store is a local-transport option; "
                         "http workers set REPRO_TRACE_STORE and "
                         "--fetch-traces themselves")
    if workers <= 0:
        raise ValueError("workers must be positive")
    if limit is not None and limit < 0:
        raise ValueError("limit cannot be negative")
    if max_retries < 0:
        raise ValueError("max_retries cannot be negative")
    if lease_timeout <= 0:
        raise ValueError("lease_timeout must be positive")
    emit = log if log is not None else (
        lambda line: print(line, file=sys.stderr))

    plan = prepare_sweep(spec, out, jobs=workers, limit=limit,
                         kernel=kernel, attach_baselines=True)
    emit(plan.describe(spec.name, workers) + f", transport={transport}")
    if not plan.tasks:
        return SweepRunSummary(
            total=plan.total, skipped=plan.skipped, computed=0,
            remaining=plan.total - plan.skipped)

    board = LeaseBoard(plan, max_retries=max_retries,
                       lease_timeout=lease_timeout, emit=emit)

    from .http import build_coordinator_server  # avoid import cycle
    store = TraceStore.from_env()
    export = TraceExport(store.root) if store is not None else None
    server = build_coordinator_server(host, port, board, export)
    listener = threading.Thread(target=server.serve_forever,
                                name="dist-coordinator", daemon=True)
    listener.start()
    bound_host, bound_port = server.server_address[:2]
    url = f"http://{bound_host}:{bound_port}"
    try:
        if transport == "local":
            from .local import run_local_workers
            run_local_workers(url, board, workers, emit,
                              worker_store=worker_store)
        else:
            emit(f"coordinator listening on {url}; start workers with: "
                 f"repro worker --coordinator {url}")
            while not board.done():
                board.expire_stale()
                time.sleep(_POLL_PERIOD)
            # Linger so polling workers are answered "drained" and
            # exit 0, rather than hitting connection-refused.
            time.sleep(_HTTP_DRAIN_GRACE)
    finally:
        server.shutdown()
        listener.join(timeout=5.0)
        server.server_close()

    computed, failed, quarantined = board.counts()
    return SweepRunSummary(
        total=plan.total, skipped=plan.skipped, computed=computed,
        remaining=plan.total - plan.skipped - computed - failed,
        failed=failed, quarantined=quarantined)
