"""The coordinator's HTTP face: five routes, strict bodies, no state.

Same stdlib stack and discipline as :mod:`repro.service.http` — a
``ThreadingHTTPServer`` whose handler resolves requests against the one
shared route table (:data:`repro.service.schemas.ROUTES`) — but serving
*only* the ``/v1/dist/*`` rows; the daemon's job routes answer 404 here,
exactly mirroring the daemon answering the dist routes with 409.  Lease
state lives in the :class:`~repro.dist.coordinator.LeaseBoard`; the
trace-store export (``GET /v1/dist/traces`` and ``GET
/v1/dist/traces/{key}``, the replication tier's server half) lives in a
:class:`~repro.trace.replicate.TraceExport`.  Handler threads only
decode frames, call one board/export operation, and encode the result.

Error mapping: a frame that fails protocol validation is a 400 with the
validator's message (never a stray ``KeyError`` on the socket), an
unexpected handler bug is a structured 500, anything else is the
board's or export's own payload at 200 (or 206 for a ranged archive
chunk).
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from urllib.parse import urlsplit

from ..scenarios.results import current_generator
from ..service.schemas import (match_route, payload_error,
                               payload_internal_error, payload_traces)
from ..trace.replicate import SHA_HEADER, SIZE_HEADER, TraceExport
from .coordinator import LeaseBoard
from .protocol import Heartbeat, ProtocolError, TaskFailed, TaskResult, decode

#: Request bodies above this are refused with 413 (a point-records
#: frame for a wide group stays far below this).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: (status, body bytes, headers) — a prepared response.  ``headers``
#: always includes Content-Type; archive responses add the
#: advertisement headers.
_Prepared = Tuple[int, bytes, Dict[str, str]]

#: The one Range form the fetch client sends: ``bytes=start-end``
#: (``end`` optional).  Anything else is a 400.
_RANGE_PATTERN = re.compile(r"^bytes=(\d+)-(\d*)$")


class CoordinatorServer(ThreadingHTTPServer):
    """The coordinator's loopback server, bound to one lease board and
    (optionally) one trace-store export."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], board: LeaseBoard,
                 export: Optional[TraceExport] = None) -> None:
        super().__init__(address, CoordinatorRequestHandler)
        self.board = board
        self.export = export


def build_coordinator_server(host: str, port: int, board: LeaseBoard,
                             export: Optional[TraceExport] = None
                             ) -> CoordinatorServer:
    """Bind the coordinator (port 0 picks a free port — the local
    transport and the tests).  ``export`` enables the trace routes;
    None (a disabled trace store) answers them 404."""
    return CoordinatorServer((host, port), board, export)


class CoordinatorRequestHandler(BaseHTTPRequestHandler):
    """Decode one wire frame, run one board transition, respond."""

    server: CoordinatorServer
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:           # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:          # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        route, params, _ = match_route(method, path)
        try:
            if route is None or not route.pattern.startswith("/v1/dist/"):
                status, body, headers = self._json_response(
                    404, payload_error(
                        f"{path} is not served by the sweep coordinator; "
                        "its routes are POST /v1/dist/{lease,records,"
                        "heartbeat} and GET /v1/dist/traces[/{key}]"))
            else:
                status, body, headers = getattr(
                    self, route.handler)(params)
        except ProtocolError as error:
            status, body, headers = self._json_response(
                400, payload_error(f"malformed frame: {error}"))
        except Exception as error:  # reprolint: disable=RL009 - last-resort HTTP boundary: an unexpected coordinator bug becomes a structured 500 instead of a raw traceback on the worker's socket
            status, body, headers = self._json_response(
                500, payload_internal_error(error))
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ----------------------------------------------------------- handlers

    def handle_dist_lease(self, params: Dict[str, str]) -> _Prepared:
        request = self._read_body()
        if (not isinstance(request, dict) or set(request) != {"worker"}
                or not isinstance(request["worker"], str)):
            raise ProtocolError(
                'a lease request body must be exactly {"worker": "<id>"}')
        return self._json_response(
            200, self.server.board.request_lease(request["worker"]))

    def handle_dist_records(self, params: Dict[str, str]) -> _Prepared:
        report = decode(self._read_raw_body())
        if not isinstance(report, (TaskResult, TaskFailed)):
            raise ProtocolError(
                f"/v1/dist/records takes point-records or task-failed "
                f"frames, not {report.TYPE!r}")
        return self._json_response(200, self.server.board.submit(report))

    def handle_dist_heartbeat(self, params: Dict[str, str]) -> _Prepared:
        beat = decode(self._read_raw_body())
        if not isinstance(beat, Heartbeat):
            raise ProtocolError(f"/v1/dist/heartbeat takes heartbeat "
                                f"frames, not {beat.TYPE!r}")
        return self._json_response(200, self.server.board.heartbeat(beat))

    def handle_dist_traces(self, params: Dict[str, str]) -> _Prepared:
        export = self.server.export
        if export is None:
            return self._json_response(404, payload_error(
                "this coordinator has no trace store to export "
                "(REPRO_TRACE_STORE is disabled)"))
        return self._json_response(
            200, payload_traces(export.listing(), current_generator()))

    def handle_dist_trace_fetch(self, params: Dict[str, str]) -> _Prepared:
        export = self.server.export
        if export is None:
            return self._json_response(404, payload_error(
                "this coordinator has no trace store to export "
                "(REPRO_TRACE_STORE is disabled)"))
        name = params["key"]
        entry = export.open_entry(name)
        if entry is None:
            return self._json_response(404, payload_error(
                f"no archive {name!r} in the coordinator's trace store"))
        path, size, sha256 = entry
        headers = {"Content-Type": "application/octet-stream",
                   SIZE_HEADER: str(size), SHA_HEADER: sha256}
        window = self._parse_range(size)
        if window is None:
            return 200, export.read_range(path, 0, size), headers
        start, length = window
        return 206, export.read_range(path, start, length), headers

    def _parse_range(self, size: int) -> Optional[Tuple[int, int]]:
        """Decode the request's Range header into ``(start, length)``,
        clamped to the archive (a start at/past EOF yields an empty
        window rather than 416 — the fetch client's resume probe).
        None means no Range: serve the whole file at 200."""
        header = self.headers.get("Range")
        if header is None:
            return None
        found = _RANGE_PATTERN.match(header.strip())
        if found is None:
            raise ProtocolError(
                f"unsupported Range {header!r}; use bytes=start-end")
        start = int(found.group(1))
        end = int(found.group(2)) if found.group(2) else size - 1
        if end < start:
            raise ProtocolError(
                f"unsatisfiable Range {header!r} (end before start)")
        start = min(start, size)
        return start, min(end + 1, size) - start

    # ------------------------------------------------------------ plumbing

    def _read_raw_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ProtocolError("Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {length_header!r}") from None
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{MAX_BODY_BYTES}-byte limit")
        return self.rfile.read(length)

    def _read_body(self) -> Any:
        try:
            return json.loads(self._read_raw_body().decode("utf-8",
                                                           "replace"))
        except json.JSONDecodeError as error:
            raise ProtocolError(f"body is not valid JSON: {error}") \
                from error

    def _json_response(self, status: int,
                       payload: Dict[str, Any]) -> _Prepared:
        body = (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode()
        return status, body, {"Content-Type": "application/json"}

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr lines; the board's emit callback
        narrates progress instead."""
