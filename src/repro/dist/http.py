"""The coordinator's HTTP face: three routes, strict bodies, no state.

Same stdlib stack and discipline as :mod:`repro.service.http` — a
``ThreadingHTTPServer`` whose handler resolves requests against the one
shared route table (:data:`repro.service.schemas.ROUTES`) — but serving
*only* the ``/v1/dist/*`` rows; the daemon's job routes answer 404 here,
exactly mirroring the daemon answering the dist routes with 409.  All
state lives in the :class:`~repro.dist.coordinator.LeaseBoard`; the
handler threads only decode frames, call one board transition, and
encode the payload back.

Error mapping: a frame that fails protocol validation is a 400 with the
validator's message (never a stray ``KeyError`` on the socket), an
unexpected handler bug is a structured 500, anything else is the
board's own payload at 200.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple
from urllib.parse import urlsplit

from ..service.schemas import (match_route, payload_error,
                               payload_internal_error)
from .coordinator import LeaseBoard
from .protocol import Heartbeat, ProtocolError, TaskFailed, TaskResult, decode

#: Request bodies above this are refused with 413 (a point-records
#: frame for a wide group stays far below this).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: (status, body bytes) — a prepared response.
_Prepared = Tuple[int, bytes]


class CoordinatorServer(ThreadingHTTPServer):
    """The coordinator's loopback server, bound to one lease board."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], board: LeaseBoard) -> None:
        super().__init__(address, CoordinatorRequestHandler)
        self.board = board


def build_coordinator_server(host: str, port: int,
                             board: LeaseBoard) -> CoordinatorServer:
    """Bind the coordinator (port 0 picks a free port — the local
    transport and the tests)."""
    return CoordinatorServer((host, port), board)


class CoordinatorRequestHandler(BaseHTTPRequestHandler):
    """Decode one wire frame, run one board transition, respond."""

    server: CoordinatorServer
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:           # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:          # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        route, _, _ = match_route(method, path)
        try:
            if route is None or not route.pattern.startswith("/v1/dist/"):
                status, body = self._json_response(404, payload_error(
                    f"{path} is not served by the sweep coordinator; "
                    "its routes are POST /v1/dist/{lease,records,"
                    "heartbeat}"))
            else:
                status, body = getattr(self, route.handler)()
        except ProtocolError as error:
            status, body = self._json_response(
                400, payload_error(f"malformed frame: {error}"))
        except Exception as error:  # reprolint: disable=RL009 - last-resort HTTP boundary: an unexpected coordinator bug becomes a structured 500 instead of a raw traceback on the worker's socket
            status, body = self._json_response(
                500, payload_internal_error(error))
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ----------------------------------------------------------- handlers

    def handle_dist_lease(self) -> _Prepared:
        request = self._read_body()
        if (not isinstance(request, dict) or set(request) != {"worker"}
                or not isinstance(request["worker"], str)):
            raise ProtocolError(
                'a lease request body must be exactly {"worker": "<id>"}')
        return self._json_response(
            200, self.server.board.request_lease(request["worker"]))

    def handle_dist_records(self) -> _Prepared:
        report = decode(self._read_raw_body())
        if not isinstance(report, (TaskResult, TaskFailed)):
            raise ProtocolError(
                f"/v1/dist/records takes point-records or task-failed "
                f"frames, not {report.TYPE!r}")
        return self._json_response(200, self.server.board.submit(report))

    def handle_dist_heartbeat(self) -> _Prepared:
        beat = decode(self._read_raw_body())
        if not isinstance(beat, Heartbeat):
            raise ProtocolError(f"/v1/dist/heartbeat takes heartbeat "
                                f"frames, not {beat.TYPE!r}")
        return self._json_response(200, self.server.board.heartbeat(beat))

    # ------------------------------------------------------------ plumbing

    def _read_raw_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ProtocolError("Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {length_header!r}") from None
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{MAX_BODY_BYTES}-byte limit")
        return self.rfile.read(length)

    def _read_body(self) -> Any:
        try:
            return json.loads(self._read_raw_body().decode("utf-8",
                                                           "replace"))
        except json.JSONDecodeError as error:
            raise ProtocolError(f"body is not valid JSON: {error}") \
                from error

    def _json_response(self, status: int,
                       payload: Dict[str, Any]) -> _Prepared:
        return status, (json.dumps(payload, sort_keys=True,
                                   separators=(",", ":")) + "\n").encode()

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr lines; the board's emit callback
        narrates progress instead."""
