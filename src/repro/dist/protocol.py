"""The distributed-sweep wire protocol: typed documents, canonical JSON.

Four document types cross the wire between a coordinator and its
workers:

* ``task-lease`` — one leased :class:`~repro.scenarios.runner._GroupTask`
  (the coordinator → worker direction, nested in the ``lease`` response
  payload): full task identity — trace tuple, warmup, kernel, attempt
  generation, every lane's point hash + identity + display label — plus
  the coordinator's generator-version prefix so a mismatched worker can
  refuse before computing records the store would ignore;
* ``point-records`` — a completed task's records streamed back (worker
  → coordinator): the exact ``results.jsonl`` record dicts
  ``_run_group`` produced, plus the worker's baseline-memo snapshot for
  the sidecar;
* ``task-failed`` — a structured failure report (worker → coordinator):
  the same ``(kind, error)`` shape :class:`repro.experiments.parallel.
  TaskFailure` records, so retry/quarantine accounting is transport-
  independent;
* ``heartbeat`` — a lease keep-alive (worker → coordinator) renewing
  the lease deadline while a long walk runs.

Encoding is canonical JSON — sorted keys, no whitespace, the same
convention the results store and point hash use — so
``encode(decode(frame)) == frame`` byte-for-byte for every valid frame
(``tests/dist/test_protocol.py`` property-tests this with Hypothesis).

Decoding is strict: unknown document types, missing or extra keys,
wrong value types, truncated frames, and lane hashes that do not match
their point identity all raise :class:`ProtocolError` — never a bare
``KeyError`` or ``JSONDecodeError`` — so a malformed frame is a typed
400 at the HTTP boundary, not a coordinator crash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..scenarios.runner import _GroupTask
from ..scenarios.spec import SweepPoint, point_hash

#: Keys of the ``identity()`` dict of a :class:`SweepPoint`.
_IDENTITY_KEYS = frozenset({"workload", "instructions", "seed", "core",
                            "warmup", "cache", "engine", "params",
                            "timing"})
_CACHE_KEYS = frozenset({"capacity_bytes", "associativity", "block_bytes",
                         "replacement"})
_LANE_KEYS = frozenset({"hash", "label", "point"})
_TASK_KEYS = frozenset({"workload", "instructions", "seed", "core",
                        "warmup", "kernel", "attempt", "lanes",
                        "baselines"})

_LEASE_KEYS = frozenset({"type", "lease", "generator", "task"})
_RECORDS_KEYS = frozenset({"type", "lease", "worker", "records",
                           "baselines"})
_FAILED_KEYS = frozenset({"type", "lease", "worker", "kind", "error"})
_HEARTBEAT_KEYS = frozenset({"type", "lease", "worker", "beat"})


class ProtocolError(ValueError):
    """A wire frame failed validation; the message names the problem."""


def _canonical(document: Mapping[str, Any]) -> bytes:
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _type_name(value: Any) -> str:
    return type(value).__name__


def _require_mapping(value: Any, label: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ProtocolError(f"{label} must be an object, got "
                            f"{_type_name(value)}")
    return value


def _require_keys(label: str, document: Mapping[str, Any],
                  keys: frozenset) -> None:
    actual = frozenset(document)
    if actual != keys:
        missing = sorted(keys - actual)
        extra = sorted(actual - keys)
        raise ProtocolError(f"{label} keys mismatch: missing {missing}, "
                            f"unexpected {extra}")


def _field(document: Mapping[str, Any], key: str, kind, label: str,
           kind_label: str) -> Any:
    value = document[key]
    # bool is an int subclass; keep int fields honestly integral.
    if not isinstance(value, kind) or (kind is int
                                       and isinstance(value, bool)):
        raise ProtocolError(f"{label}.{key} must be {kind_label}, got "
                            f"{_type_name(value)}")
    return value


# ---------------------------------------------------------------------------
# task <-> wire


def task_to_wire(task: _GroupTask) -> Dict[str, Any]:
    """The JSON-safe document form of one group task.

    Lanes carry the point hash, the display label (excluded from the
    hash, but part of every record), and the full ``identity()`` dict —
    enough to rebuild the frozen :class:`SweepPoint` exactly.
    """
    return {
        "workload": task.workload,
        "instructions": task.instructions,
        "seed": task.seed,
        "core": task.core,
        "warmup": task.warmup,
        "kernel": task.kernel,
        "attempt": task.attempt,
        "lanes": [
            {"hash": digest, "label": point.label,
             "point": point.identity()}
            for digest, point in task.lanes
        ],
        "baselines": task.baselines,
    }


def _point_from_wire(identity: Mapping[str, Any], label: str,
                     lane_label: str) -> SweepPoint:
    _require_keys(f"{lane_label}.point", identity, _IDENTITY_KEYS)
    cache = _require_mapping(identity["cache"], f"{lane_label}.point.cache")
    _require_keys(f"{lane_label}.point.cache", cache, _CACHE_KEYS)
    params = _require_mapping(identity["params"],
                              f"{lane_label}.point.params")
    point_label = f"{lane_label}.point"
    if not isinstance(identity["timing"], bool):
        raise ProtocolError(f"{point_label}.timing must be a boolean, got "
                            f"{_type_name(identity['timing'])}")
    return SweepPoint(
        workload=_field(identity, "workload", str, point_label, "a string"),
        instructions=_field(identity, "instructions", int, point_label,
                            "an integer"),
        seed=_field(identity, "seed", int, point_label, "an integer"),
        core=_field(identity, "core", int, point_label, "an integer"),
        warmup=float(_field(identity, "warmup", (int, float), point_label,
                            "a number")),
        capacity_bytes=_field(cache, "capacity_bytes", int,
                              f"{point_label}.cache", "an integer"),
        associativity=_field(cache, "associativity", int,
                             f"{point_label}.cache", "an integer"),
        block_bytes=_field(cache, "block_bytes", int,
                           f"{point_label}.cache", "an integer"),
        replacement=_field(cache, "replacement", str,
                           f"{point_label}.cache", "a string"),
        engine=_field(identity, "engine", str, point_label, "a string"),
        params=tuple(sorted(params.items())),
        label=label,
        timing=identity["timing"],
    )


def task_from_wire(document: Any) -> _GroupTask:
    """Rebuild a :class:`_GroupTask` from its wire document.

    Every lane's point hash is recomputed from the rebuilt identity and
    must match the transmitted one — the integrity half of the identity
    contract: a task that decodes is guaranteed to produce records the
    coordinator's store keys exactly where the spec expansion expects
    them.
    """
    document = _require_mapping(document, "task")
    _require_keys("task", document, _TASK_KEYS)
    kernel = document["kernel"]
    if kernel is not None and not isinstance(kernel, str):
        raise ProtocolError(f"task.kernel must be a string or null, got "
                            f"{_type_name(kernel)}")
    baselines = document["baselines"]
    if baselines is not None:
        baselines = dict(_require_mapping(baselines, "task.baselines"))
        for key, value in baselines.items():
            if not isinstance(key, str):
                raise ProtocolError("task.baselines keys must be strings")
            _require_mapping(value, f"task.baselines[{key!r}]")
    raw_lanes = document["lanes"]
    if not isinstance(raw_lanes, list) or not raw_lanes:
        raise ProtocolError("task.lanes must be a non-empty list")
    lanes: List[Tuple[str, SweepPoint]] = []
    for position, raw_lane in enumerate(raw_lanes):
        lane_label = f"task.lanes[{position}]"
        lane = _require_mapping(raw_lane, lane_label)
        _require_keys(lane_label, lane, _LANE_KEYS)
        digest = _field(lane, "hash", str, lane_label, "a string")
        label = _field(lane, "label", str, lane_label, "a string")
        point = _point_from_wire(
            _require_mapping(lane["point"], f"{lane_label}.point"),
            label, lane_label)
        actual = point_hash(point)
        if actual != digest:
            raise ProtocolError(
                f"{lane_label}.hash {digest!r} does not match the point "
                f"identity (computed {actual!r}); refusing a task whose "
                "records would land under the wrong key")
        lanes.append((digest, point))
    return _GroupTask(
        workload=_field(document, "workload", str, "task", "a string"),
        instructions=_field(document, "instructions", int, "task",
                            "an integer"),
        seed=_field(document, "seed", int, "task", "an integer"),
        core=_field(document, "core", int, "task", "an integer"),
        warmup=float(_field(document, "warmup", (int, float), "task",
                            "a number")),
        kernel=kernel,
        lanes=tuple(lanes),
        baselines=baselines,
        attempt=_field(document, "attempt", int, "task", "an integer"),
    )


# ---------------------------------------------------------------------------
# documents


@dataclass(frozen=True)
class TaskLease:
    """One granted lease: the task, its lease id, and the coordinator's
    generator-version prefix (a mismatched worker refuses the lease —
    its records would be ignored as stale by the store anyway)."""

    TYPE = "task-lease"

    lease: str
    generator: str
    task: _GroupTask

    def to_wire(self) -> Dict[str, Any]:
        return {"type": self.TYPE, "lease": self.lease,
                "generator": self.generator,
                "task": task_to_wire(self.task)}


@dataclass(frozen=True)
class TaskResult:
    """A completed task's point records plus the worker's baseline-memo
    snapshot (sidecar entries for this task's trace)."""

    TYPE = "point-records"

    lease: str
    worker: str
    records: Tuple[Dict[str, Any], ...]
    baselines: Dict[str, Dict[str, Any]]

    def to_wire(self) -> Dict[str, Any]:
        return {"type": self.TYPE, "lease": self.lease,
                "worker": self.worker, "records": list(self.records),
                "baselines": self.baselines}


@dataclass(frozen=True)
class TaskFailed:
    """A structured failure report: the :class:`TaskFailure` shape
    (``kind`` ∈ {"error", "worker-died"}, deterministic one-line
    ``error``) so quarantine records match the inline runner's."""

    TYPE = "task-failed"

    lease: str
    worker: str
    kind: str
    error: str

    def to_wire(self) -> Dict[str, Any]:
        return {"type": self.TYPE, "lease": self.lease,
                "worker": self.worker, "kind": self.kind,
                "error": self.error}


@dataclass(frozen=True)
class Heartbeat:
    """A lease keep-alive; ``beat`` is the worker's monotonic counter
    for this lease (purely diagnostic — any heartbeat renews)."""

    TYPE = "heartbeat"

    lease: str
    worker: str
    beat: int

    def to_wire(self) -> Dict[str, Any]:
        return {"type": self.TYPE, "lease": self.lease,
                "worker": self.worker, "beat": self.beat}


@dataclass(frozen=True)
class TraceAd:
    """One advertised trace archive in the coordinator's store listing
    (an entry of the ``traces`` payload): the store filename, byte
    size, and transfer SHA-256 a replica must re-hash to.  Not a
    top-level wire frame — it nests inside the JSON listing — but it
    gets the same strict decode treatment so a worker never acts on a
    garbled advertisement."""

    key: str
    size: int
    sha256: str

    def to_wire(self) -> Dict[str, Any]:
        return {"key": self.key, "size": self.size, "sha256": self.sha256}


_TRACE_AD_KEYS = frozenset({"key", "size", "sha256"})

_SHA256_HEX = frozenset("0123456789abcdef")


def trace_ad_from_wire(document: Any, label: str = "trace") -> TraceAd:
    """Validate one listing entry into a :class:`TraceAd` (strict: key
    set, types, a well-formed 64-hex digest, a non-negative size)."""
    document = _require_mapping(document, label)
    _require_keys(label, document, _TRACE_AD_KEYS)
    ad = TraceAd(
        key=_field(document, "key", str, label, "a string"),
        size=_field(document, "size", int, label, "an integer"),
        sha256=_field(document, "sha256", str, label, "a string"),
    )
    if ad.size < 0:
        raise ProtocolError(f"{label}.size cannot be negative")
    if len(ad.sha256) != 64 or not set(ad.sha256) <= _SHA256_HEX:
        raise ProtocolError(f"{label}.sha256 is not a lowercase hex "
                            "SHA-256 digest")
    if not ad.key:
        raise ProtocolError(f"{label}.key cannot be empty")
    return ad


Document = Union[TaskLease, TaskResult, TaskFailed, Heartbeat]


def encode(document: Document) -> bytes:
    """Canonical JSON bytes of a wire document (sorted keys, compact
    separators — byte-stable under encode → decode → encode)."""
    return _canonical(document.to_wire())


def _decode_lease(document: Mapping[str, Any]) -> TaskLease:
    _require_keys("task-lease", document, _LEASE_KEYS)
    return TaskLease(
        lease=_field(document, "lease", str, "task-lease", "a string"),
        generator=_field(document, "generator", str, "task-lease",
                         "a string"),
        task=task_from_wire(document["task"]),
    )


def _decode_records(document: Mapping[str, Any]) -> TaskResult:
    _require_keys("point-records", document, _RECORDS_KEYS)
    raw_records = document["records"]
    if not isinstance(raw_records, list):
        raise ProtocolError("point-records.records must be a list, got "
                            f"{_type_name(raw_records)}")
    for position, record in enumerate(raw_records):
        record = _require_mapping(record,
                                  f"point-records.records[{position}]")
        if not isinstance(record.get("hash"), str):
            raise ProtocolError(
                f"point-records.records[{position}] has no string 'hash' "
                "field; the store could not key it")
    baselines = _require_mapping(document["baselines"],
                                 "point-records.baselines")
    for key, value in baselines.items():
        if not isinstance(key, str):
            raise ProtocolError("point-records.baselines keys must be "
                                "strings")
        _require_mapping(value, f"point-records.baselines[{key!r}]")
    return TaskResult(
        lease=_field(document, "lease", str, "point-records", "a string"),
        worker=_field(document, "worker", str, "point-records", "a string"),
        records=tuple(dict(record) for record in raw_records),
        baselines={key: dict(value) for key, value in baselines.items()},
    )


def _decode_failed(document: Mapping[str, Any]) -> TaskFailed:
    _require_keys("task-failed", document, _FAILED_KEYS)
    return TaskFailed(
        lease=_field(document, "lease", str, "task-failed", "a string"),
        worker=_field(document, "worker", str, "task-failed", "a string"),
        kind=_field(document, "kind", str, "task-failed", "a string"),
        error=_field(document, "error", str, "task-failed", "a string"),
    )


def _decode_heartbeat(document: Mapping[str, Any]) -> Heartbeat:
    _require_keys("heartbeat", document, _HEARTBEAT_KEYS)
    return Heartbeat(
        lease=_field(document, "lease", str, "heartbeat", "a string"),
        worker=_field(document, "worker", str, "heartbeat", "a string"),
        beat=_field(document, "beat", int, "heartbeat", "an integer"),
    )


_DECODERS = {
    TaskLease.TYPE: _decode_lease,
    TaskResult.TYPE: _decode_records,
    TaskFailed.TYPE: _decode_failed,
    Heartbeat.TYPE: _decode_heartbeat,
}


def decode_document(document: Any) -> Document:
    """Validate an already-parsed JSON object into a typed document."""
    document = _require_mapping(document, "frame")
    kind = document.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("frame has no string 'type' field")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ProtocolError(f"unknown document type {kind!r}; known: "
                            f"{sorted(_DECODERS)}")
    return decoder(document)


def decode(data: Union[bytes, str]) -> Document:
    """Parse and validate one wire frame (raises :class:`ProtocolError`
    on anything malformed — truncated, extra keys, wrong types)."""
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not UTF-8: {error}") from error
    elif not isinstance(data, str):
        raise ProtocolError(f"frame must be bytes or str, got "
                            f"{_type_name(data)}")
    try:
        parsed = json.loads(data)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    return decode_document(parsed)
