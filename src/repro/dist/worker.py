"""The pull-based sweep worker behind ``repro worker``.

One loop: request a lease from the coordinator, run the leased group
task through the *same* :func:`repro.scenarios.runner._run_group` path
every other execution mode uses, report the records (or a structured
failure) back, repeat until the coordinator says the sweep is drained.

Failure discipline mirrors :mod:`repro.experiments.parallel` exactly:

* a task that raises becomes a ``task-failed`` frame with
  ``kind="error"`` and the same one-line ``TypeName: message`` text
  ``parallel_imap`` records — so a distributed quarantine record is
  byte-identical to a ``--jobs N`` one;
* a worker that dies mid-task simply stops heartbeating; the
  coordinator expires the lease and requeues with the constant
  worker-died text — again the pool's exact contract;
* a generator-version mismatch (this worker's trace generator differs
  from the coordinator's) refuses the lease and exits distinctly: any
  records it computed would be ignored as stale by the store.

With ``--fetch-traces`` the mismatch rule softens: the coordinator's
store is authoritative, so instead of exiting the worker installs the
coordinator's generator prefix as an override
(:func:`repro.trace.store.set_generator_override`), forbids local
generation (``require_fetch``), and replicates every archive it needs
over ``GET /v1/dist/traces/{key}`` — integrity-verified and resumable
(:mod:`repro.trace.replicate`).  A replication failure surfaces as a
structured ``task-failed`` report, never a hang and never a
silently-wrong trace.

Exit codes: 0 sweep drained, 1 coordinator unreachable (after bounded
retries), 2 generator mismatch (with fetching off, or persisting after
an override is already installed).
"""

from __future__ import annotations

import contextlib
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Optional

from ..common.backoff import backoff_delay
from ..faults import fire
from ..pipeline.tracegen import cached_trace
from ..scenarios.results import current_generator
from ..scenarios.runner import _run_group
from ..trace import replicate
from ..trace.store import TraceStore, set_generator_override
from .protocol import (Heartbeat, ProtocolError, TaskFailed, TaskLease,
                       TaskResult, decode_document, encode)

#: Seconds between lease-renewal heartbeats while a walk runs.
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Seconds a drained/idle worker sleeps between lease requests.
DEFAULT_POLL_INTERVAL = 0.5

#: Consecutive transport failures tolerated before the worker gives up
#: (the coordinator process is gone, not just busy).
TRANSPORT_RETRIES = 5


class TransportError(RuntimeError):
    """The coordinator could not be reached or answered garbage."""


class CoordinatorClient:
    """Minimal blocking JSON-over-HTTP client for the dist routes."""

    def __init__(self, base: str, timeout: float = 30.0) -> None:
        self.base = base.rstrip("/")
        self.timeout = timeout

    def post(self, path: str, body: bytes) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base + path, data=body, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as error:
            raise TransportError(
                f"POST {path} failed: {error}") from error
        if not isinstance(payload, dict):
            raise TransportError(f"POST {path} returned a "
                                 f"{type(payload).__name__}, not an object")
        return payload

    def request_lease(self, worker: str) -> Dict[str, Any]:
        return self.post("/v1/dist/lease",
                         json.dumps({"worker": worker}).encode())

    def report(self, document) -> Dict[str, Any]:
        return self.post("/v1/dist/records", encode(document))

    def heartbeat(self, document: Heartbeat) -> Dict[str, Any]:
        return self.post("/v1/dist/heartbeat", encode(document))


class _HeartbeatPump:
    """Daemon thread renewing one lease while its walk runs; stops
    silently on transport failure (the lease will expire, which is the
    correct outcome when the coordinator is gone)."""

    def __init__(self, client: CoordinatorClient, lease: str, worker: str,
                 interval: float) -> None:
        self._client = client
        self._lease = lease
        self._worker = worker
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"heartbeat-{lease}")

    def _run(self) -> None:
        beat = 0
        while not self._stop.wait(self._interval):
            beat += 1
            try:
                self._client.heartbeat(Heartbeat(
                    lease=self._lease, worker=self._worker, beat=beat))
            except TransportError:
                return

    def __enter__(self) -> "_HeartbeatPump":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1.0)


def run_worker(coordinator: str, worker_id: str, *,
               poll_interval: float = DEFAULT_POLL_INTERVAL,
               heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
               log: Optional[Callable[[str], None]] = None,
               client: Optional[CoordinatorClient] = None,
               fetch_traces: bool = False,
               replica_budget_bytes: Optional[int] = None) -> int:
    """Pull and execute leases from ``coordinator`` until drained.

    Returns the process exit code (see module docstring).  ``client``
    is injectable for tests; the default speaks HTTP to
    ``coordinator`` (a base URL like ``http://127.0.0.1:8731``).
    ``fetch_traces`` replicates missing archives from the coordinator
    (and requires an enabled trace store to land them in);
    ``replica_budget_bytes`` caps the replica store, enforced by a gc
    pass after each fetched archive.
    """
    emit = log if log is not None else (
        lambda line: print(line, file=sys.stderr))
    client = client if client is not None else CoordinatorClient(coordinator)
    fetcher: Optional[replicate.TraceFetcher] = None
    if fetch_traces:
        if TraceStore.from_env() is None:
            raise ValueError("--fetch-traces needs an enabled trace "
                             "store (set REPRO_TRACE_STORE) to land "
                             "replicated archives in")
        fetcher = replicate.TraceFetcher(
            coordinator, worker_id=worker_id,
            budget_bytes=replica_budget_bytes)
    with contextlib.ExitStack() as stack:
        if fetcher is not None:
            stack.enter_context(replicate.installed(fetcher))
        try:
            return _lease_loop(client, worker_id, fetcher, emit,
                               poll_interval, heartbeat_interval)
        finally:
            # Drop any coordinator generator override this loop
            # installed, and the trace memo built under it — the
            # process usually exits here, but the in-process tests
            # (and any embedding caller) must get their own generator
            # identity back.
            set_generator_override(None)
            cached_trace.cache_clear()


def _lease_loop(client: CoordinatorClient, worker_id: str,
                fetcher: Optional[replicate.TraceFetcher],
                emit: Callable[[str], None], poll_interval: float,
                heartbeat_interval: float) -> int:
    generator = current_generator()
    override_installed = False
    transport_failures = 0
    while True:
        try:
            payload = client.request_lease(worker_id)
        except TransportError as error:
            transport_failures += 1
            if transport_failures > TRANSPORT_RETRIES:
                emit(f"{worker_id}: giving up after "
                     f"{transport_failures} transport failures: {error}")
                return 1
            # Capped-exponential with deterministic worker-id jitter —
            # a rebooting coordinator is not greeted by every worker's
            # identical linear schedule (repro.common.backoff).
            time.sleep(backoff_delay(transport_failures - 1,
                                     base=poll_interval,
                                     salt=worker_id))
            continue
        transport_failures = 0
        state = payload.get("state")
        if state == "drained":
            emit(f"{worker_id}: sweep drained; exiting")
            return 0
        if state == "idle":
            time.sleep(poll_interval)
            continue
        if state != "granted":
            emit(f"{worker_id}: coordinator sent unknown lease state "
                 f"{state!r}; exiting")
            return 1
        try:
            lease = decode_document(payload.get("lease"))
            if not isinstance(lease, TaskLease):
                raise ProtocolError(f"granted lease payload is a "
                                    f"{lease.TYPE!r} frame")
        except ProtocolError as error:
            emit(f"{worker_id}: coordinator sent a malformed lease: "
                 f"{error}; exiting")
            return 1
        if lease.generator != generator:
            if fetcher is not None and not override_installed:
                # The coordinator's store is authoritative when we can
                # fetch from it: adopt its generator identity, forbid
                # local generation (a locally generated trace would be
                # from *our* sources, silently wrong), drop any memoised
                # traces, and carry on.
                try:
                    set_generator_override(lease.generator)
                except ValueError as error:
                    emit(f"{worker_id}: coordinator advertises an "
                         f"unusable generator: {error}; exiting")
                    return 2
                cached_trace.cache_clear()
                fetcher.require_fetch = True
                override_installed = True
                generator = current_generator()
                emit(f"{worker_id}: generator mismatch; trusting the "
                     f"coordinator's store ({lease.generator}) — local "
                     "generation disabled, archives will be fetched")
            else:
                emit(f"{worker_id}: generator mismatch (coordinator "
                     f"{lease.generator}, worker {generator}); records "
                     "would be stale — exiting")
                return 2
        task = lease.task
        with _HeartbeatPump(client, lease.lease, worker_id,
                            heartbeat_interval):
            try:
                # dist.worker fires before the walk (kill here models a
                # worker dying mid-task: lease expiry + requeue);
                # dist.result fires after it (kill here models dying
                # with finished work unreported — same recovery, and the
                # requeued walk recomputes identical records).
                fire("dist.worker", task.fault_key())
                records, baselines = _run_group(task)
                fire("dist.result", task.fault_key())
            except Exception as error:  # reprolint: disable=RL009 - quarantine boundary: a failed walk must become a structured task-failed report (the parallel_imap contract), not a worker crash
                report = TaskFailed(
                    lease=lease.lease, worker=worker_id, kind="error",
                    error=f"{type(error).__name__}: {error}")
            else:
                report = TaskResult(
                    lease=lease.lease, worker=worker_id,
                    records=tuple(records), baselines=baselines)
        try:
            ack = client.report(report)
        except TransportError as error:
            emit(f"{worker_id}: could not report "
                 f"{task.group_name()}: {error}")
            return 1
        if ack.get("status") == "stale":
            # The lease expired while we walked; the coordinator already
            # requeued the task.  Our copy is dropped — whoever reruns
            # it produces byte-identical records, so nothing is lost.
            emit(f"{worker_id}: lease {lease.lease} went stale; "
                 "result dropped")
