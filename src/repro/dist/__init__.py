"""Distributed sweep execution: a coordinator/worker tier.

The scenario engine's next order of magnitude (ROADMAP open item 1):
shard trace groups across worker processes — on this host or others —
that stream point records back into the same content-hash-keyed
results store the serial runner writes.

Layering (one-way imports, mirroring :mod:`repro.service`):

* :mod:`repro.dist.protocol` — the typed wire documents (task-lease,
  point-records, task-failed, heartbeat), canonical JSON encoding, and
  the strict decoder that turns any malformed frame into a
  :class:`~repro.dist.protocol.ProtocolError`;
* :mod:`repro.dist.coordinator` — :class:`LeaseBoard` (the lease state
  machine: pending → leased → done / requeued / quarantined) and
  :func:`run_distributed_sweep`, the drop-in sibling of
  :func:`repro.scenarios.runner.run_sweep`;
* :mod:`repro.dist.http` — the coordinator's loopback HTTP server,
  serving the ``/v1/dist/*`` routes documented in ``docs/api.md``;
* :mod:`repro.dist.local` — the ``--transport local`` supervisor:
  worker *subprocesses* speaking the exact same wire protocol over a
  loopback socket, so the whole tier runs in CI;
* :mod:`repro.dist.worker` — the pull-based worker loop behind
  ``repro worker``.

The identity contract: workers run each task through the same
:func:`repro.scenarios.runner._run_group` path the inline runner uses,
so every record is bit-identical whichever transport computed it, and
serial, ``--jobs N``, and distributed stores converge to the same
canonical bytes under ``repro sweep verify --repair``
(``tests/dist/test_differential.py`` locks this).
"""

from .coordinator import (DEFAULT_LEASE_TIMEOUT, LeaseBoard,
                          run_distributed_sweep)
from .protocol import (Heartbeat, ProtocolError, TaskFailed, TaskLease,
                       TaskResult, decode, decode_document, encode)
from .worker import CoordinatorClient, TransportError, run_worker

__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "LeaseBoard",
    "run_distributed_sweep",
    "Heartbeat",
    "ProtocolError",
    "TaskFailed",
    "TaskLease",
    "TaskResult",
    "decode",
    "decode_document",
    "encode",
    "CoordinatorClient",
    "TransportError",
    "run_worker",
]
