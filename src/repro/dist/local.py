"""``--transport local``: subprocess workers over a loopback socket.

The CI-testable face of the distributed tier: :func:`run_local_workers`
spawns N ``python -m repro worker`` subprocesses pointed at the
coordinator's loopback URL and supervises them until the lease board
drains.  The workers are *real* separate processes speaking the *real*
wire protocol — nothing is shimmed — so everything the differential
harness proves about this transport (byte-identical stores, lease
expiry, requeue, quarantine) transfers to ``--transport http`` workers
on other hosts, which run the exact same loop.

Supervision model: a child that exits with work outstanding had its
death *observed* (no need to wait out the heartbeat timeout — the
local transport's one shortcut), so its leases are expired immediately
and a replacement is spawned, up to a respawn budget sized so every
task can fail its full retry allowance and still leave headroom.  If
the budget empties with no live workers, the remaining tasks are
quarantined rather than wedging the sweep — the same never-hang
discipline as the PR 8 pool.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from ..trace.store import STORE_ENV
from .coordinator import LeaseBoard

#: Seconds between supervision polls (child liveness + lease expiry).
_POLL_PERIOD = 0.05

#: Seconds a worker is given to exit after the board drains before the
#: supervisor terminates it.
_DRAIN_GRACE = 10.0

#: Poll interval handed to local workers — aggressive, they share the
#: coordinator's host and the CI sweeps are seconds long.
_WORKER_POLL_INTERVAL = "0.05"


def _worker_env(worker_store: Optional[Union[str, Path]] = None
                ) -> Dict[str, str]:
    """The child environment: the parent's, with this repro package
    importable.  An armed fault plan rides along in it — worker
    subprocesses re-read REPRO_FAULT_PLAN with fresh counters, exactly
    like the persistent pool's initializer snapshot.  ``worker_store``
    repoints the children's trace store at a (possibly cold) replica
    directory, distinct from the coordinator's."""
    env = dict(os.environ)  # reprolint: disable=RL004 - parent-side snapshot handed to worker subprocesses (the dist analogue of parallel._initargs)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else os.pathsep.join([package_root, existing]))
    if worker_store is not None:
        env[STORE_ENV] = str(worker_store)
    return env


def _spawn(url: str, worker_id: str, env: Dict[str, str],
           fetch_traces: bool = False) -> "subprocess.Popen[bytes]":
    command = [sys.executable, "-m", "repro", "worker",
               "--coordinator", url, "--worker-id", worker_id,
               "--poll-interval", _WORKER_POLL_INTERVAL]
    if fetch_traces:
        command.append("--fetch-traces")
    return subprocess.Popen(
        command, env=env, stdout=subprocess.DEVNULL, stderr=None)


def run_local_workers(url: str, board: LeaseBoard, workers: int,
                      emit: Callable[[str], None], *,
                      worker_store: Optional[Union[str, Path]] = None
                      ) -> None:
    """Spawn and supervise ``workers`` local subprocesses until the
    board drains (or everything left is quarantined).  With
    ``worker_store`` set, children run against that replica trace
    store with ``--fetch-traces`` — archives they lack are replicated
    from this coordinator over loopback HTTP."""
    env = _worker_env(worker_store)
    fetch = worker_store is not None
    # Enough respawns for every task to burn its full retry allowance
    # on a dying worker, plus the initial fleet.
    budget = workers + board.task_count() * (board.max_retries + 1)
    generation = 0
    fleet: Dict[str, "subprocess.Popen[bytes]"] = {}
    for slot in range(workers):
        worker_id = f"w{slot}"
        fleet[worker_id] = _spawn(url, worker_id, env, fetch)
        budget -= 1
    try:
        while not board.done():
            board.expire_stale()
            for worker_id, child in list(fleet.items()):
                if child.poll() is None:
                    continue
                del fleet[worker_id]
                requeued = board.expire_worker(worker_id)
                if board.done():
                    break
                if requeued:
                    emit(f"  worker {worker_id} exited "
                         f"(code {child.returncode}) holding {requeued} "
                         "lease(s); requeued")
                if budget > 0:
                    generation += 1
                    slot = worker_id.split("r")[0]
                    replacement = f"{slot}r{generation}"
                    fleet[replacement] = _spawn(url, replacement, env,
                                                fetch)
                    budget -= 1
            if not fleet and not board.done():
                if budget > 0:
                    generation += 1
                    worker_id = f"w0r{generation}"
                    fleet[worker_id] = _spawn(url, worker_id, env, fetch)
                    budget -= 1
                else:
                    drained = board.fail_outstanding()
                    emit(f"  no workers left and the respawn budget is "
                         f"spent; quarantined the remaining {drained} "
                         "task(s)")
            time.sleep(_POLL_PERIOD)
    finally:
        deadline = time.monotonic() + _DRAIN_GRACE
        for worker_id, child in fleet.items():
            try:
                child.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                child.terminate()
                try:
                    child.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    child.kill()
                    child.wait()
