"""Deterministic fault-injection harness (see :mod:`.plan`).

Public surface::

    from repro.faults import fire, FaultPlan, install, reset

Sites call ``fire("site.name", key)``; operators arm plans through the
``REPRO_FAULT_PLAN`` environment variable; tests arm them in-process
with :func:`install`.  DESIGN.md "Failure model" documents the
registered sites and the hardening each one exercises.
"""

from .plan import (FAULT_PLAN_ENV, KILL_EXIT_CODE, Fault, FaultPlan,
                   FaultPlanError, InjectedFault, fire, install, reset)

__all__ = [
    "FAULT_PLAN_ENV",
    "KILL_EXIT_CODE",
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "InjectedFault",
    "fire",
    "install",
    "reset",
]
