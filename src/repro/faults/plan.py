"""Deterministic fault injection: parse a plan, arm it, fire sites.

A *fault plan* is a small spec — JSON or YAML, inline or a file path,
delivered through ``REPRO_FAULT_PLAN`` — that makes the execution stack
fail in precisely chosen places::

    {"faults": [
      {"site": "worker.task", "action": "kill", "match": "s3:",
       "times": null},
      {"site": "sidecar.append", "action": "truncate"}
    ]}

Each entry arms one :class:`Fault`:

* ``site`` — which registered injection point it applies to (see the
  table in DESIGN.md "Failure model"; e.g. ``worker.task``,
  ``trace.open``, ``results.append``, ``plans.load``, the
  distributed tier's ``dist.lease`` / ``dist.worker`` /
  ``dist.result``, and trace replication's ``replicate.fetch`` /
  ``replicate.chunk``).
* ``action`` — ``kill`` (``os._exit(86)`` — a segfault stand-in),
  ``raise`` (throw from the site), or ``truncate``/``corrupt`` (the
  site receives the fault back and damages its own payload, so the
  torn-write/corrupt-cache shape is realistic for that file format).
* ``match`` — substring the site's *key* (a deterministic description
  of the specific call: task identity, file name) must contain.  Site
  keys embed the attempt counter (``...:attempt=0``), so a plan can
  kill only first attempts (transient fault) or every attempt
  (poisoned task).
* ``after`` — skip the first N matching hits (fire on the N+1th).
* ``times`` — fire at most this many times per process (default 1;
  ``null`` = unlimited).
* ``exception`` — for ``raise``: ``injected`` (default,
  :class:`InjectedFault`) or ``format``
  (:class:`repro.trace.serialize.TraceFormatError`, exercising the
  self-heal paths that catch exactly that type).

Determinism: a plan carries no randomness and no clocks — whether a
site fires depends only on the plan and the per-process sequence of
matching hits, so a faulted run is exactly reproducible.  Counters are
per process; pool workers re-arm the plan in their initializer
(:func:`repro.experiments.parallel._attach_worker` calls
:func:`reset`), so forked workers do not inherit the parent's spent
counters.

With ``REPRO_FAULT_PLAN`` unset, :func:`fire` is a no-op cheap enough
for hot paths (one global load and a None check).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, NamedTuple, Optional, Tuple

#: Environment variable naming (or inlining) the active fault plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code of a ``kill`` fault — distinguishable from every exit code
#: the repo's own CLIs use, so tests can assert the injected death.
KILL_EXIT_CODE = 86

_ACTIONS = ("kill", "raise", "truncate", "corrupt")
_EXCEPTIONS = ("injected", "format")


class FaultPlanError(ValueError):
    """A fault plan does not parse or validate (always raised loudly —
    a silently ignored chaos plan would fake test coverage)."""


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws (default flavor)."""


class Fault(NamedTuple):
    """One armed fault (see module docstring for field semantics)."""

    site: str
    action: str
    match: str = ""
    after: int = 0
    times: Optional[int] = 1
    exception: str = "injected"


class FaultPlan(NamedTuple):
    """A validated, immutable set of faults."""

    faults: Tuple[Fault, ...]

    @classmethod
    def parse(cls, raw: Any) -> "FaultPlan":
        """Validate a decoded plan document; raises FaultPlanError."""
        if not isinstance(raw, dict):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(raw).__name__}")
        unknown = sorted(set(raw) - {"faults"})
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys: {unknown}")
        entries = raw.get("faults")
        if not isinstance(entries, list):
            raise FaultPlanError("fault plan needs a 'faults' list")
        return cls(tuple(_parse_fault(index, entry)
                         for index, entry in enumerate(entries)))

    @classmethod
    def from_text(cls, text: str, yaml_hint: bool = False) -> "FaultPlan":
        """Parse plan text (JSON, or YAML when hinted/available)."""
        if yaml_hint:
            try:
                import yaml
            except ImportError:
                raise FaultPlanError(
                    "YAML fault plans need pyyaml; use JSON") from None
            try:
                return cls.parse(yaml.safe_load(text))
            except yaml.YAMLError as error:
                raise FaultPlanError(
                    f"fault plan is not valid YAML: {error}") from error
        try:
            return cls.parse(json.loads(text))
        except json.JSONDecodeError as error:
            raise FaultPlanError(
                f"fault plan is not valid JSON: {error}") from error

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan ``REPRO_FAULT_PLAN`` names, or None when unset.

        The value is either inline JSON (starts with ``{``) or a path;
        ``.yaml``/``.yml`` paths parse as YAML, everything else as
        JSON.  Missing files and invalid plans raise
        :class:`FaultPlanError`.
        """
        # The harness is configured by its environment by design; this
        # is the one sanctioned read (workers re-apply the parent's
        # snapshot before re-reading, like the trace-store variables).
        # reprolint: disable=RL004 - the fault plan is defined by this variable
        value = os.environ.get(FAULT_PLAN_ENV)
        if not value:
            return None
        if value.lstrip().startswith("{"):
            return cls.from_text(value)
        path = Path(value)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {value!r}: {error}") from error
        return cls.from_text(text,
                             yaml_hint=path.suffix in (".yaml", ".yml"))


def _parse_fault(index: int, entry: Any) -> Fault:
    label = f"faults[{index}]"
    if not isinstance(entry, dict):
        raise FaultPlanError(f"{label} must be an object")
    unknown = sorted(set(entry) - {"site", "action", "match", "after",
                                   "times", "exception"})
    if unknown:
        raise FaultPlanError(f"{label} has unknown keys: {unknown}")
    site = entry.get("site")
    if not isinstance(site, str) or not site:
        raise FaultPlanError(f"{label} needs a non-empty 'site' string")
    action = entry.get("action")
    if action not in _ACTIONS:
        raise FaultPlanError(f"{label} action must be one of "
                             f"{list(_ACTIONS)}, got {action!r}")
    match = entry.get("match", "")
    if not isinstance(match, str):
        raise FaultPlanError(f"{label} 'match' must be a string")
    after = entry.get("after", 0)
    if not isinstance(after, int) or isinstance(after, bool) or after < 0:
        raise FaultPlanError(f"{label} 'after' must be an integer >= 0")
    times = entry.get("times", 1)
    if times is not None and (not isinstance(times, int)
                              or isinstance(times, bool) or times < 1):
        raise FaultPlanError(f"{label} 'times' must be an integer >= 1 "
                             "or null (unlimited)")
    exception = entry.get("exception", "injected")
    if exception not in _EXCEPTIONS:
        raise FaultPlanError(f"{label} exception must be one of "
                             f"{list(_EXCEPTIONS)}, got {exception!r}")
    return Fault(site=site, action=action, match=match, after=after,
                 times=times, exception=exception)


class _Injector:
    """Per-process firing state over one plan: hit and fire counters
    per fault entry, advanced deterministically on every matching
    :func:`fire` call."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._hits: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}

    def fire(self, site: str, key: str) -> Optional[Fault]:
        for index, fault in enumerate(self.plan.faults):
            if fault.site != site or fault.match not in key:
                continue
            hits = self._hits.get(index, 0)
            self._hits[index] = hits + 1
            if hits < fault.after:
                continue
            fired = self._fired.get(index, 0)
            if fault.times is not None and fired >= fault.times:
                continue
            self._fired[index] = fired + 1
            return _trigger(fault, site, key)
        return None


def _trigger(fault: Fault, site: str, key: str) -> Optional[Fault]:
    if fault.action == "kill":
        # A stand-in for a segfaulting/OOM-killed worker: no cleanup,
        # no Python-level exception, the process is simply gone.
        os._exit(KILL_EXIT_CODE)
    if fault.action == "raise":
        message = f"injected fault at {site} ({key})"
        if fault.exception == "format":
            from ..trace.serialize import TraceFormatError

            raise TraceFormatError(message)
        raise InjectedFault(message)
    # truncate/corrupt: handed back to the site, which damages its own
    # payload in the format-appropriate way.
    return fault


#: (injector, loaded) — ``loaded`` distinguishes "no plan" from "not
#: yet read from the environment".
_injector: Optional[_Injector] = None
_loaded = False


def _active() -> Optional[_Injector]:
    global _injector, _loaded
    if not _loaded:
        plan = FaultPlan.from_env()
        _injector = _Injector(plan) if plan and plan.faults else None
        _loaded = True
    return _injector


def fire(site: str, key: str) -> Optional[Fault]:
    """Consult the active plan at an injection point.

    ``key`` deterministically describes this specific call (task
    identity, file name, attempt counter).  Returns None (the common
    case: no plan, or nothing matched), returns the matched
    ``truncate``/``corrupt`` fault for the site to apply, raises for
    ``raise`` faults, or exits the process for ``kill`` faults.
    """
    injector = _active()
    if injector is None:
        return None
    return injector.fire(site, key)


def reset() -> None:
    """Drop the cached plan and all counters; the next :func:`fire`
    re-reads ``REPRO_FAULT_PLAN``.  Pool-worker initializers call this
    so forked workers arm a fresh plan instead of inheriting the
    parent's spent counters."""
    global _injector, _loaded
    _injector = None
    _loaded = False


@contextmanager
def install(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Arm ``plan`` (None disarms) for the duration of the block —
    the in-process path tests use instead of the environment."""
    global _injector, _loaded
    previous = (_injector, _loaded)
    _injector = _Injector(plan) if plan and plan.faults else None
    _loaded = True
    try:
        yield
    finally:
        _injector, _loaded = previous
