"""Configuration dataclasses mirroring Table I of the paper.

Every model in the reproduction is constructed from one of these frozen
dataclasses so that an experiment's full parameterization is a single
serializable value.  Defaults reproduce the paper's simulated system:
a 16-core CMP with 64 KB 2-way L1-I caches, a hybrid 16K gshare + 16K
bimodal branch predictor, a 96-entry ROB and 3-wide retirement.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from .addressing import DEFAULT_BLOCK_BYTES, RegionGeometry, block_bits_for


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and timing of one cache (defaults: the paper's L1-I)."""

    capacity_bytes: int = 64 * 1024
    associativity: int = 2
    block_bytes: int = DEFAULT_BLOCK_BYTES
    hit_latency: int = 2
    replacement: str = "lru"

    def __post_init__(self) -> None:
        block_bits_for(self.block_bytes)
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.capacity_bytes % (self.block_bytes * self.associativity):
            raise ValueError(
                "capacity must be a whole number of sets: "
                f"{self.capacity_bytes} B / ({self.block_bytes} B x "
                f"{self.associativity} ways) is fractional"
            )
        if self.replacement not in ("lru", "random", "fifo"):
            raise ValueError(f"unknown replacement policy {self.replacement!r}")

    @property
    def n_blocks(self) -> int:
        """Total block frames in the cache."""
        return self.capacity_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_blocks // self.associativity


@dataclass(frozen=True, slots=True)
class BranchPredictorConfig:
    """The paper's hybrid predictor: 16K-entry gshare + 16K-entry bimodal."""

    gshare_entries: int = 16 * 1024
    bimodal_entries: int = 16 * 1024
    chooser_entries: int = 16 * 1024
    history_bits: int = 14
    btb_entries: int = 4 * 1024
    ras_depth: int = 16

    def __post_init__(self) -> None:
        for name in ("gshare_entries", "bimodal_entries", "chooser_entries",
                     "btb_entries"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, got {value}")
        if not 0 < self.history_bits <= 32:
            raise ValueError("history_bits must be in (0, 32]")
        if self.ras_depth <= 0:
            raise ValueError("ras_depth must be positive")


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Front-end/back-end parameters of one core (Table I)."""

    fetch_width_blocks: int = 1
    retire_width: int = 3
    rob_entries: int = 96
    fetch_queue_entries: int = 24
    min_resolve_latency: int = 6
    max_resolve_latency: int = 40

    def __post_init__(self) -> None:
        if self.retire_width <= 0 or self.rob_entries <= 0:
            raise ValueError("pipeline widths must be positive")
        if not 0 < self.min_resolve_latency <= self.max_resolve_latency:
            raise ValueError(
                "resolve latency range must satisfy 0 < min <= max, got "
                f"[{self.min_resolve_latency}, {self.max_resolve_latency}]"
            )


@dataclass(frozen=True, slots=True)
class MemoryConfig:
    """Latency of the levels behind the L1-I, in core cycles (Table I:
    15-cycle L2 hit, 45 ns memory at 2 GHz = 90 cycles).
    """

    l2_hit_latency: int = 15
    memory_latency: int = 90
    l2_miss_rate: float = 0.02

    def __post_init__(self) -> None:
        if self.l2_hit_latency <= 0 or self.memory_latency <= 0:
            raise ValueError("latencies must be positive")
        if not 0.0 <= self.l2_miss_rate <= 1.0:
            raise ValueError("l2_miss_rate must be a probability")

    def expected_fill_latency(self) -> float:
        """Mean L1-I fill latency given the modelled L2 miss rate."""
        return (1.0 - self.l2_miss_rate) * self.l2_hit_latency + (
            self.l2_miss_rate * self.memory_latency
        )


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """The complete per-core system model: Table I in one value."""

    cores: int = 16
    l1i: CacheConfig = field(default_factory=CacheConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")

    def describe(self) -> Dict[str, Any]:
        """A flat dictionary view, convenient for experiment logs."""
        return asdict(self)


@dataclass(frozen=True, slots=True)
class PIFConfig:
    """Parameters of the Proactive Instruction Fetch hardware (Section 4).

    Defaults are the paper's chosen operating point: 8-block spatial
    regions skewed forward (2 preceding + 5 succeeding), a 4-entry
    temporal compactor, a 32 K-region history buffer, and four 7-region
    stream address buffers.
    """

    geometry: RegionGeometry = field(default_factory=RegionGeometry)
    temporal_compactor_entries: int = 4
    history_entries: int = 32 * 1024
    index_entries: int = 4 * 1024
    index_associativity: int = 8
    sab_count: int = 4
    sab_window_regions: int = 7
    prefetch_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.temporal_compactor_entries < 0:
            raise ValueError("temporal compactor size cannot be negative")
        if self.history_entries <= 0:
            raise ValueError("history buffer must hold at least one record")
        if self.index_entries <= 0 or self.index_associativity <= 0:
            raise ValueError("index table geometry must be positive")
        if self.index_entries % self.index_associativity:
            raise ValueError("index entries must divide evenly into ways")
        if self.sab_count <= 0 or self.sab_window_regions <= 0:
            raise ValueError("SAB geometry must be positive")
        if self.prefetch_queue_depth <= 0:
            raise ValueError("prefetch queue must hold at least one request")


#: The configuration used for every headline result in the paper.
PAPER_SYSTEM = SystemConfig()

#: The PIF operating point the paper evaluates.
PAPER_PIF = PIFConfig()
