"""Deterministic random-number plumbing.

Every stochastic component (workload generator, branch-outcome model,
interrupt injector, random replacement) draws from a named child of one
root seed, so that

* a whole experiment is reproducible from a single integer, and
* adding a new consumer never perturbs the draws seen by existing ones
  (each name hashes to an independent stream).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


def child_seed(root_seed: int, *names: str) -> int:
    """Derive a stable 64-bit seed for the component addressed by ``names``.

    The derivation is a SHA-256 over the root seed and the name path, so
    it is stable across Python versions and platforms (unlike ``hash``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode())
    return int.from_bytes(digest.digest()[:8], "big")


def make_rng(root_seed: int, *names: str) -> random.Random:
    """A ``random.Random`` seeded for the component addressed by ``names``."""
    return random.Random(child_seed(root_seed, *names))


def weighted_choice(rng: random.Random, weights: Iterable[float]) -> int:
    """Pick an index with probability proportional to ``weights``.

    Exists because ``random.choices`` allocates a list per call; the
    workload generator calls this in its inner loop.
    """
    total = 0.0
    cumulative = []
    for weight in weights:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        total += weight
        cumulative.append(total)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    point = rng.random() * total
    for index, bound in enumerate(cumulative):
        if point < bound:
            return index
    return len(cumulative) - 1
