"""A small fixed-width bit vector.

Spatial-region records (Section 3.1) carry one bit per neighbouring
block.  The vector is deliberately tiny (seven bits for the paper's
8-block regions), so an ``int`` mask plus a width is the whole
representation; this module exists to give that representation a typed,
validated, well-tested API rather than scattering shift-and-mask code
through the compactors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class BitVector:
    """An immutable fixed-width bit vector.

    Bit 0 is the leftmost position in the paper's figures (the most
    distant *preceding* block); callers translate block offsets to bit
    positions via :class:`repro.common.addressing.RegionGeometry`.
    """

    width: int
    mask: int = 0

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError(f"width must be non-negative, got {self.width}")
        if self.mask < 0:
            raise ValueError(f"mask must be non-negative, got {self.mask}")
        if self.mask >> self.width:
            raise ValueError(
                f"mask {self.mask:#x} has bits beyond width {self.width}"
            )

    @classmethod
    def from_bits(cls, width: int, bits: Iterable[int]) -> BitVector:
        """Build a vector with the given bit positions set."""
        mask = 0
        for bit in bits:
            if not 0 <= bit < width:
                raise ValueError(f"bit {bit} out of range for width {width}")
            mask |= 1 << bit
        return cls(width, mask)

    @classmethod
    def from_string(cls, text: str) -> BitVector:
        """Parse a vector from the paper's figure notation, e.g. ``"101"``.

        The leftmost character is bit 0, matching how Figure 5 writes
        records like ``PCA(101)``.
        """
        if any(ch not in "01" for ch in text):
            raise ValueError(f"bit string may only contain 0/1, got {text!r}")
        mask = 0
        for position, ch in enumerate(text):
            if ch == "1":
                mask |= 1 << position
        return cls(len(text), mask)

    def set(self, bit: int) -> BitVector:
        """Return a copy with ``bit`` set."""
        if not 0 <= bit < self.width:
            raise ValueError(f"bit {bit} out of range for width {self.width}")
        return BitVector(self.width, self.mask | (1 << bit))

    def clear(self, bit: int) -> BitVector:
        """Return a copy with ``bit`` cleared."""
        if not 0 <= bit < self.width:
            raise ValueError(f"bit {bit} out of range for width {self.width}")
        return BitVector(self.width, self.mask & ~(1 << bit))

    def test(self, bit: int) -> bool:
        """True if ``bit`` is set."""
        if not 0 <= bit < self.width:
            raise ValueError(f"bit {bit} out of range for width {self.width}")
        return bool(self.mask >> bit & 1)

    def is_subset_of(self, other: BitVector) -> bool:
        """True if every set bit of ``self`` is also set in ``other``.

        This is the temporal compactor's discard test (Section 4.1): an
        incoming region record whose vector is a subset of an already
        tracked record carries no new information.
        """
        if other.width != self.width:
            raise ValueError("cannot compare vectors of different widths")
        return self.mask & ~other.mask == 0

    def union(self, other: BitVector) -> BitVector:
        """Bitwise OR of two equal-width vectors."""
        if other.width != self.width:
            raise ValueError("cannot combine vectors of different widths")
        return BitVector(self.width, self.mask | other.mask)

    def intersection(self, other: BitVector) -> BitVector:
        """Bitwise AND of two equal-width vectors."""
        if other.width != self.width:
            raise ValueError("cannot combine vectors of different widths")
        return BitVector(self.width, self.mask & other.mask)

    def popcount(self) -> int:
        """Number of set bits."""
        return self.mask.bit_count()

    def set_bits(self) -> Iterator[int]:
        """Yield the indices of set bits in ascending (left-to-right) order."""
        mask = self.mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def is_empty(self) -> bool:
        """True if no bit is set."""
        return self.mask == 0

    def __len__(self) -> int:
        return self.width

    def __iter__(self) -> Iterator[bool]:
        for bit in range(self.width):
            yield self.test(bit)

    def __str__(self) -> str:
        return "".join("1" if self.test(bit) else "0" for bit in range(self.width))

    def __repr__(self) -> str:
        return f"BitVector({str(self)!r})"


def empty(width: int) -> BitVector:
    """An all-zero vector of the given width."""
    return BitVector(width, 0)


def full(width: int) -> BitVector:
    """An all-ones vector of the given width."""
    return BitVector(width, (1 << width) - 1)
