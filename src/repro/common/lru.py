"""Recency-ordered containers used by several hardware models.

Three structures in the reproduced design are recency managed:

* the L1-I cache sets (LRU replacement, Table I),
* the temporal compactor (a tiny MRU list of recent region records,
  Section 4.1),
* the stream address buffers ("replacing the least-recently-used SAB",
  Section 4.3, footnote 2).

``OrderedDict`` gives O(1) promote/evict; this module wraps it with the
small, explicit API those models need, so their code reads like the
paper's prose.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Internal miss sentinel so ``get`` costs one dict probe even for
#: caches that legitimately store ``None`` values (:class:`LRUSet`).
_MISSING = object()


class LRUCache(Generic[K, V]):
    """A bounded mapping that evicts the least-recently-used entry.

    Reads and writes both count as uses.  ``capacity`` of zero is legal
    and produces a cache that stores nothing (useful for ablations that
    disable a structure entirely).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[K, V] = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum number of entries."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Return the value for ``key`` and promote it to MRU, or None."""
        entries = self._entries
        value = entries.get(key, _MISSING)
        if value is _MISSING:
            return None
        entries.move_to_end(key)
        return value  # type: ignore[return-value]

    def peek(self, key: K) -> Optional[V]:
        """Return the value for ``key`` without touching recency state."""
        return self._entries.get(key)

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert/update ``key`` at MRU; return the evicted pair, if any."""
        if self._capacity == 0:
            return (key, value)
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = value
            return None
        evicted: Optional[Tuple[K, V]] = None
        if len(entries) >= self._capacity:
            evicted = entries.popitem(last=False)
        entries[key] = value
        return evicted

    def promote(self, key: K) -> bool:
        """Move ``key`` to MRU; return False if it is not present."""
        if key not in self._entries:
            return False
        self._entries.move_to_end(key)
        return True

    def discard(self, key: K) -> bool:
        """Remove ``key`` if present; return True if it was removed."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def lru_key(self) -> Optional[K]:
        """The key next in line for eviction, or None if empty."""
        if not self._entries:
            return None
        return next(iter(self._entries))

    def mru_key(self) -> Optional[K]:
        """The most recently used key, or None if empty."""
        if not self._entries:
            return None
        return next(reversed(self._entries))

    def items_mru_first(self) -> Iterator[Tuple[K, V]]:
        """Iterate entries from most- to least-recently used."""
        return iter(reversed(self._entries.items()))

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()


class LRUSet(Generic[K]):
    """A bounded set with LRU eviction; the value-free sibling of
    :class:`LRUCache`.
    """

    def __init__(self, capacity: int) -> None:
        self._cache: LRUCache[K, None] = LRUCache(capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of members."""
        return self._cache.capacity

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: K) -> bool:
        return key in self._cache

    def add(self, key: K) -> Optional[K]:
        """Insert ``key`` at MRU; return the evicted member, if any."""
        evicted = self._cache.put(key, None)
        return evicted[0] if evicted else None

    def touch(self, key: K) -> bool:
        """Promote ``key`` to MRU; return False if absent."""
        return self._cache.promote(key)

    def discard(self, key: K) -> bool:
        """Remove ``key`` if present."""
        return self._cache.discard(key)

    def members_mru_first(self) -> Iterator[K]:
        """Iterate members from most- to least-recently used."""
        return (key for key, _ in self._cache.items_mru_first())
