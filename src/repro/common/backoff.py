"""Deterministic capped-exponential retry backoff.

Shared by every transport-retry loop in the distributed tier (the
worker's lease polling and the trace replicator's chunk fetches).  The
schedule is the classic ``base * 2**attempt`` capped at ``cap``, with a
bounded jitter factor derived from a SHA-256 over ``(salt, attempt)``
instead of a random draw: two workers hammering a recovering
coordinator desynchronize (different salts → different jitter), yet any
single worker's schedule is exactly reproducible — no ambient
randomness, no clock reads, so faulted runs replay identically
(the repo's RL001/RL002 determinism contract).
"""

from __future__ import annotations

import hashlib

#: Fraction by which jitter can stretch a delay (factor in [1, 1.25)).
JITTER_SPREAD = 0.25


def backoff_delay(attempt: int, *, base: float, cap: float = 30.0,
                  salt: str = "") -> float:
    """Seconds to wait before retry ``attempt`` (0-based).

    The raw schedule is ``base * 2**attempt``, stretched by a
    deterministic jitter factor in ``[1, 1 + JITTER_SPREAD)`` derived
    from ``(salt, attempt)`` — pass a stable identity (worker id,
    archive name) as ``salt`` so concurrent retriers spread out — and
    capped at ``cap``.
    """
    if attempt < 0:
        raise ValueError("attempt cannot be negative")
    if base <= 0:
        raise ValueError("base must be positive")
    if cap <= 0:
        raise ValueError("cap must be positive")
    digest = hashlib.sha256(f"{salt}:{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2 ** 64  # [0, 1)
    delay = base * (2.0 ** attempt) * (1.0 + JITTER_SPREAD * unit)
    return min(cap, delay)
