"""Instruction-address arithmetic shared by every subsystem.

The paper's hardware operates on three granularities:

* **PC** — the byte address of an individual instruction.
* **Block address** — the L1-I cache-block address, ``pc >> block_bits``.
  All prefetchers, the history buffer, and the coverage oracles work at
  this granularity.
* **Spatial region** — a window of adjacent blocks anchored at a
  *trigger* block (Section 3.1 of the paper).

Keeping the arithmetic here, in one well-tested module, prevents subtle
off-by-one bugs (the classic ``>>`` vs ``//`` confusion with negative
deltas) from leaking into the microarchitectural models.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default L1-I block size used throughout the paper (Table I): 64 bytes.
DEFAULT_BLOCK_BYTES = 64

#: Fixed instruction width of the abstract ISA.  The paper models SPARC v9
#: (4-byte instructions); any constant width preserves the behaviour PIF
#: depends on, namely that consecutive PCs map to slowly-advancing blocks.
INSTRUCTION_BYTES = 4


def block_bits_for(block_bytes: int) -> int:
    """Return ``log2(block_bytes)``, validating the size is a power of two.

    >>> block_bits_for(64)
    6
    """
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ValueError(f"block size must be a positive power of two, got {block_bytes}")
    return block_bytes.bit_length() - 1


def block_of(pc: int, block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
    """Map an instruction PC to its cache-block address."""
    if pc < 0:
        raise ValueError(f"PC must be non-negative, got {pc}")
    return pc >> block_bits_for(block_bytes)


def block_base_pc(block: int, block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
    """Return the byte address of the first instruction in ``block``."""
    return block << block_bits_for(block_bytes)


def blocks_spanned(start_pc: int, n_instructions: int,
                   block_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
    """Number of distinct blocks touched by ``n_instructions`` starting at
    ``start_pc`` with no control transfers.
    """
    if n_instructions <= 0:
        return 0
    first = block_of(start_pc, block_bytes)
    last = block_of(start_pc + (n_instructions - 1) * INSTRUCTION_BYTES, block_bytes)
    return last - first + 1


@dataclass(frozen=True, slots=True)
class RegionGeometry:
    """Shape of a spatial region around its trigger block.

    ``preceding`` blocks sit at negative offsets from the trigger,
    ``succeeding`` blocks at positive offsets; the trigger itself is offset
    zero.  The paper settles on ``preceding=2, succeeding=5`` — an
    8-block region skewed forward (Section 5.2, Figure 8).
    """

    preceding: int = 2
    succeeding: int = 5

    def __post_init__(self) -> None:
        if self.preceding < 0 or self.succeeding < 0:
            raise ValueError("region geometry cannot have negative extents")

    @property
    def total_blocks(self) -> int:
        """Region width in blocks including the trigger block."""
        return self.preceding + self.succeeding + 1

    def contains_offset(self, offset: int) -> bool:
        """True if a block at ``offset`` from the trigger is inside the region."""
        return -self.preceding <= offset <= self.succeeding

    def contains(self, block: int, trigger_block: int) -> bool:
        """True if ``block`` lies within the region anchored at ``trigger_block``."""
        return self.contains_offset(block - trigger_block)

    def bit_index(self, offset: int) -> int:
        """Index into the region bit vector for a block at ``offset``.

        The vector is laid out left-to-right as the paper draws it: the
        ``preceding`` blocks first (most distant first), then the
        succeeding blocks.  The trigger block is *not* encoded — it is
        implied by the record's trigger address.

        >>> RegionGeometry(2, 5).bit_index(-2)
        0
        >>> RegionGeometry(2, 5).bit_index(-1)
        1
        >>> RegionGeometry(2, 5).bit_index(1)
        2
        """
        if offset == 0:
            raise ValueError("the trigger block has no bit; it is implicit")
        if not self.contains_offset(offset):
            raise ValueError(f"offset {offset} outside region {self}")
        if offset < 0:
            return offset + self.preceding
        return self.preceding + offset - 1

    def offset_for_bit(self, index: int) -> int:
        """Inverse of :meth:`bit_index`."""
        if not 0 <= index < self.preceding + self.succeeding:
            raise ValueError(f"bit index {index} outside region {self}")
        if index < self.preceding:
            return index - self.preceding
        return index - self.preceding + 1

    def offsets(self):
        """All non-trigger offsets, in replay order (left to right).

        The paper replays bit vectors left to right because that
        "typically predicts the accesses in the order they will be issued
        by the core" (Section 4.3).
        """
        for index in range(self.preceding + self.succeeding):
            yield self.offset_for_bit(index)


#: The paper's chosen geometry: 8-block regions, 2 preceding + 5 succeeding.
PAPER_GEOMETRY = RegionGeometry(preceding=2, succeeding=5)
