"""Lightweight wall-clock stage profiling for the simulation pipeline.

The experiment runner's ``--profile`` flag needs to attribute a
figure's wall-clock to its coarse stages — trace load, baseline replay,
lane walk, timing walk — without a profiler's overhead distorting the
very hot loops it is measuring.  This module provides named stage
timers that the pipeline brackets its stages with; they are inert
(a ``None`` check) unless a collector is installed, so the hooks stay
in the production code paths permanently.

Stages nest (the lane walk runs inside a figure's experiment): each
stage records its *own* wall-clock, so a parent stage's time includes
its children.  Collection is process-local — with ``--jobs N > 1`` the
worker processes' stages are invisible to the parent's collector; the
runner prints a caveat in that case.

Usage::

    with collecting() as profile:
        run_fig3(config)
    print(profile.format_table())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Stage names used by the simulation pipeline (importers reference
#: these constants so the runner and the hooks cannot drift apart).
STAGE_TRACE_LOAD = "trace-load"
STAGE_BASELINE = "baseline"
STAGE_LANE_WALK = "lane-walk"
STAGE_TIMING_WALK = "timing-walk"


class StageProfile:
    """Accumulated seconds and call counts per stage name."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, stage_name: str, seconds: float) -> None:
        """Fold one timed stage execution into the totals."""
        self.seconds[stage_name] = self.seconds.get(stage_name, 0.0) + seconds
        self.calls[stage_name] = self.calls.get(stage_name, 0) + 1

    def format_table(self, indent: str = "  ") -> str:
        """Stage totals, widest first, as printable lines."""
        if not self.seconds:
            return f"{indent}(no stages recorded)"
        width = max(len(name) for name in self.seconds)
        lines = []
        for name, total in sorted(self.seconds.items(),
                                  key=lambda item: -item[1]):
            lines.append(f"{indent}{name:<{width}}  {total:8.3f}s  "
                         f"x{self.calls[name]}")
        return "\n".join(lines)


#: The installed collector; None keeps every stage() hook inert.
_COLLECTOR: Optional[StageProfile] = None


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the enclosed block under ``name`` when collection is on."""
    collector = _COLLECTOR
    if collector is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        collector.add(name, time.perf_counter() - started)


@contextmanager
def collecting() -> Iterator[StageProfile]:
    """Install a fresh collector for the enclosed block and yield it.

    Re-entrant use replaces the outer collector for the inner block and
    restores it afterwards (the inner block's stages are then invisible
    to the outer profile — matching the "each flag owns its figure"
    semantics of the runner).
    """
    global _COLLECTOR
    previous = _COLLECTOR
    profile = StageProfile()
    _COLLECTOR = profile
    try:
        yield profile
    finally:
        _COLLECTOR = previous
