"""Shared primitives: addressing, bit vectors, LRU containers, configs, RNG."""

from .addressing import (
    DEFAULT_BLOCK_BYTES,
    INSTRUCTION_BYTES,
    PAPER_GEOMETRY,
    RegionGeometry,
    block_base_pc,
    block_bits_for,
    block_of,
    blocks_spanned,
)
from .bitvec import BitVector, empty, full
from .config import (
    BranchPredictorConfig,
    CacheConfig,
    MemoryConfig,
    PAPER_PIF,
    PAPER_SYSTEM,
    PIFConfig,
    PipelineConfig,
    SystemConfig,
)
from .lru import LRUCache, LRUSet
from .rng import child_seed, make_rng, weighted_choice

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "INSTRUCTION_BYTES",
    "PAPER_GEOMETRY",
    "RegionGeometry",
    "block_base_pc",
    "block_bits_for",
    "block_of",
    "blocks_spanned",
    "BitVector",
    "empty",
    "full",
    "PAPER_PIF",
    "PAPER_SYSTEM",
    "BranchPredictorConfig",
    "CacheConfig",
    "MemoryConfig",
    "PIFConfig",
    "PipelineConfig",
    "SystemConfig",
    "LRUCache",
    "LRUSet",
    "child_seed",
    "make_rng",
    "weighted_choice",
]
