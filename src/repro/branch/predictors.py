"""Direction predictors: bimodal, gshare, and the paper's hybrid.

Table I specifies a "hybrid branch predictor, 16K gShare & 16K bimodal".
The hybrid uses a chooser table trained on which component was correct,
the classic McFarling tournament arrangement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..common.config import BranchPredictorConfig
from .counters import CounterTable


class DirectionPredictor(ABC):
    """Predicts taken/not-taken for a conditional branch at ``pc``."""

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction (no state change)."""

    @abstractmethod
    def update(self, pc: int, outcome: bool) -> None:
        """Train on the resolved ``outcome`` and advance any history."""


class BimodalPredictor(DirectionPredictor):
    """PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int = 16 * 1024) -> None:
        self._table = CounterTable(entries)

    def predict(self, pc: int) -> bool:
        return self._table.predict(pc >> 2)

    def update(self, pc: int, outcome: bool) -> None:
        self._table.update(pc >> 2, outcome)


class GSharePredictor(DirectionPredictor):
    """Global-history-XOR-PC indexed table of 2-bit counters."""

    def __init__(self, entries: int = 16 * 1024, history_bits: int = 14) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self._table = CounterTable(entries)
        self._history_mask = (1 << history_bits) - 1
        self._history = 0

    @property
    def history(self) -> int:
        """Current global history register value (for tests)."""
        return self._history

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, outcome: bool) -> None:
        self._table.update(self._index(pc), outcome)
        self._history = ((self._history << 1) | int(outcome)) & self._history_mask


class HybridPredictor(DirectionPredictor):
    """Tournament of gshare and bimodal with a chooser table.

    The chooser counter, indexed by PC, moves toward gshare when gshare
    alone was correct and toward bimodal when bimodal alone was correct;
    ties leave it untouched.
    """

    def __init__(self, config: BranchPredictorConfig | None = None) -> None:
        cfg = config if config is not None else BranchPredictorConfig()
        self.gshare = GSharePredictor(cfg.gshare_entries, cfg.history_bits)
        self.bimodal = BimodalPredictor(cfg.bimodal_entries)
        self._chooser = CounterTable(cfg.chooser_entries)

    def predict(self, pc: int) -> bool:
        if self._chooser.predict(pc >> 2):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, outcome: bool) -> None:
        gshare_correct = self.gshare.predict(pc) == outcome
        bimodal_correct = self.bimodal.predict(pc) == outcome
        if gshare_correct != bimodal_correct:
            self._chooser.update(pc >> 2, gshare_correct)
        self.gshare.update(pc, outcome)
        self.bimodal.update(pc, outcome)


class AlwaysTakenPredictor(DirectionPredictor):
    """Degenerate predictor used as a noise-maximizing baseline in tests."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, outcome: bool) -> None:
        pass


def make_direction_predictor(name: str,
                             config: BranchPredictorConfig | None = None
                             ) -> DirectionPredictor:
    """Factory for the predictor kinds the experiments reference."""
    cfg = config if config is not None else BranchPredictorConfig()
    if name == "hybrid":
        return HybridPredictor(cfg)
    if name == "gshare":
        return GSharePredictor(cfg.gshare_entries, cfg.history_bits)
    if name == "bimodal":
        return BimodalPredictor(cfg.bimodal_entries)
    if name == "always_taken":
        return AlwaysTakenPredictor()
    raise ValueError(f"unknown direction predictor {name!r}")
