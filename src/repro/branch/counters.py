"""Saturating-counter tables, the building block of every predictor here."""

from __future__ import annotations

from typing import List


class SaturatingCounter:
    """An n-bit up/down saturating counter.

    The conventional 2-bit encoding is used by default: 0-1 predict
    not-taken, 2-3 predict taken; the initial value is *weakly taken*
    so cold predictors favour fall-through loops being taken, matching
    common hardware initialization.
    """

    def __init__(self, bits: int = 2, initial: int = 2) -> None:
        if bits <= 0:
            raise ValueError("counter needs at least one bit")
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError(f"initial value {initial} out of range")
        self.value = initial

    @property
    def taken(self) -> bool:
        """Current prediction."""
        return self.value > self.maximum // 2

    def update(self, outcome: bool) -> None:
        """Train toward ``outcome``."""
        if outcome:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


class CounterTable:
    """A direct-indexed table of 2-bit counters stored as a flat list.

    Storing raw ints (not :class:`SaturatingCounter` objects) keeps the
    predictor's inner loop allocation-free; the class above remains the
    readable single-counter reference implementation used in tests.
    """

    def __init__(self, entries: int, bits: int = 2, initial: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries}")
        self.entries = entries
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError(f"initial value {initial} out of range")
        self._mask = entries - 1
        self._threshold = self.maximum // 2
        self._values: List[int] = [initial] * entries

    def index(self, key: int) -> int:
        """Table slot for ``key`` (low bits)."""
        return key & self._mask

    def predict(self, key: int) -> bool:
        """Predicted direction for ``key``."""
        return self._values[key & self._mask] > self._threshold

    def update(self, key: int, outcome: bool) -> None:
        """Train the counter selected by ``key`` toward ``outcome``."""
        slot = key & self._mask
        value = self._values[slot]
        if outcome:
            if value < self.maximum:
                self._values[slot] = value + 1
        elif value > 0:
            self._values[slot] = value - 1

    def raw_value(self, key: int) -> int:
        """Counter value (exposed for tests)."""
        return self._values[key & self._mask]
