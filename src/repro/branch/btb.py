"""Branch target buffer and return-address stack.

The fetch engine needs targets, not just directions: the BTB supplies
predicted targets for taken branches/calls and the RAS supplies return
targets.  A RAS misprediction (overflow/corruption) is one more source
of the wrong-path noise the paper eliminates by observing retirement.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.lru import LRUCache


class BranchTargetBuffer:
    """A set-associative mapping from branch PC to predicted target.

    Modeled as an LRU cache per set; a miss means the front-end cannot
    redirect until decode, which the pipeline model treats as a
    single-block fetch bubble.
    """

    def __init__(self, entries: int = 4 * 1024, associativity: int = 4) -> None:
        if entries <= 0 or entries % associativity:
            raise ValueError("entries must be a positive multiple of associativity")
        self._n_sets = entries // associativity
        self._sets: List[LRUCache[int, int]] = [
            LRUCache(associativity) for _ in range(self._n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_for(self, pc: int) -> LRUCache[int, int]:
        return self._sets[(pc >> 2) % self._n_sets]

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for the branch at ``pc``, or None on BTB miss."""
        target = self._set_for(pc).get(pc)
        if target is None:
            self.misses += 1
        else:
            self.hits += 1
        return target

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the resolved target for ``pc``."""
        self._set_for(pc).put(pc, target)


class ReturnAddressStack:
    """A bounded return-address stack.

    Overflow discards the oldest entry (hardware behaviour), so deeply
    recursive call chains mispredict their outermost returns — a real
    noise source the retire-order stream is immune to.
    """

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        """Record the return address of a call."""
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        """Predicted return target, or None when the stack is empty."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        """The current top of stack without consuming it (used by the
        wrong-path walker, which must not corrupt real RAS state)."""
        if not self._stack:
            return None
        return self._stack[-1]

    def __len__(self) -> int:
        return len(self._stack)
