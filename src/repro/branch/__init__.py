"""Branch prediction substrate: direction predictors, BTB, RAS."""

from .btb import BranchTargetBuffer, ReturnAddressStack
from .counters import CounterTable, SaturatingCounter
from .predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    DirectionPredictor,
    GSharePredictor,
    HybridPredictor,
    make_direction_predictor,
)

__all__ = [
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "CounterTable",
    "SaturatingCounter",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "DirectionPredictor",
    "GSharePredictor",
    "HybridPredictor",
    "make_direction_predictor",
]
