"""Append-only on-disk results store for scenario sweeps.

One sweep output directory holds three files:

* ``scenario.json`` — the raw spec the sweep was launched with, written
  (atomically, overwriting) at the start of every ``run`` so ``status``
  and ``report`` work without the original scenario file;
* ``results.jsonl`` — one JSON record per *completed* simulation point
  (or per *quarantined* point — a ``failed`` record, see the runner),
  appended via fsync-and-rename as each trace group finishes;
* ``baselines.jsonl`` — the no-prefetch baseline memo sidecar
  (:class:`BaselineSidecar`): one line per (trace content hash, cache
  geometry, replacement, warmup) baseline ever computed for this sweep
  directory, appended as groups finish.  Later runs seed their worker
  processes from it, so resumed or engine-axis-extended sweeps skip the
  baseline replays entirely.  Purely an accelerator: deleting the file
  (or any malformed line in it) only costs recomputation.

Records are keyed by the point's content hash
(:func:`~repro.scenarios.spec.point_hash`) plus the trace
generator-version hash (:func:`~repro.trace.store.generator_version_hash`),
giving the resume semantics: a rerun of the same scenario skips every
point that already has a record *under the current generator version*
and recomputes nothing else.  Records written by an older generator are
ignored (the traces they measured no longer exist) but never deleted —
the file is append-only, and the newest record per hash wins.

Interrupt tolerance: a sweep killed mid-append leaves at most one
truncated trailing line; :meth:`ResultsStore.load` drops lines that do
not parse instead of failing, so the next ``run`` simply recomputes the
point whose record was lost.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Tuple, Union

from ..faults import fire
from ..trace.store import active_generator

#: Record field holding the point hash.
HASH_FIELD = "hash"

#: Record field holding the 12-hex-digit generator-version prefix.
GENERATOR_FIELD = "generator"


def current_generator() -> str:
    """The generator-version prefix stamped into new records (the
    local source hash, or a ``--fetch-traces`` worker's installed
    coordinator override — see
    :func:`repro.trace.store.set_generator_override`)."""
    return active_generator()


def _atomic_append(path: Path, lines: Iterable[str], site: str) -> None:
    """Append ``lines`` to the JSONL file at ``path`` atomically.

    Write the full new contents to a scratch file in the same
    directory, fsync it, and rename over the original (the same
    discipline ``service/jobs.py`` uses) — a crash at any instant
    leaves either the old file or the new one, never a partial line.
    The read-side truncated-tail tolerance stays as defense in depth
    against stores written by older versions or foreign tooling.

    ``site`` is the fault-injection point for this write; a matching
    ``truncate`` fault shears trailing bytes off the payload before it
    lands, simulating exactly the torn write the atomic path is meant
    to prevent (and that readers must still survive).
    """
    encoded = "".join(lines).encode("utf-8")
    if not encoded:
        return
    try:
        existing = path.read_bytes()
    except FileNotFoundError:
        existing = b""
    payload = existing + encoded
    fault = fire(site, path.name)
    if fault is not None and fault.action == "truncate":
        payload = payload[:max(len(existing), len(payload) - 7)]
    scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(scratch, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
    finally:
        scratch.unlink(missing_ok=True)


class ResultsStore:
    """The per-sweep results directory (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def records_path(self) -> Path:
        return self.root / "results.jsonl"

    @property
    def scenario_path(self) -> Path:
        return self.root / "scenario.json"

    # ------------------------------------------------------------------

    def write_scenario(self, raw_spec: Dict[str, Any]) -> None:
        """Persist the launching spec (atomic replace)."""
        self.root.mkdir(parents=True, exist_ok=True)
        scratch = self.scenario_path.with_suffix(".json.tmp")
        scratch.write_text(json.dumps(raw_spec, indent=2, sort_keys=True)
                           + "\n")
        scratch.replace(self.scenario_path)

    def load_scenario(self) -> Dict[str, Any]:
        """The spec ``run`` recorded; raises FileNotFoundError if none."""
        return json.loads(self.scenario_path.read_text())

    # ------------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Append one completed-point record (atomic rewrite)."""
        self.append_all([record])

    def append_all(self, records: Iterable[Dict[str, Any]]) -> None:
        """Append several records in one fsync-and-rename cycle."""
        records = list(records)
        if not records:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_append(
            self.records_path,
            (json.dumps(record, sort_keys=True, separators=(",", ":"))
             + "\n" for record in records),
            site="results.append")

    def merge_all(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append ``records`` newest-wins, skipping exact duplicates.

        The distributed coordinator's ingest path: when a lease expires
        and the group is re-run elsewhere, both workers may report the
        same points (the duplicate-lease race).  Records are
        deterministic in the point alone, so the replayed copies are
        byte-identical to what the store already holds — this drops
        them instead of appending no-op lines, keeping the raw file
        convergent.  A record that *differs* from the stored one (a
        success superseding a quarantine record, say) is appended and
        wins by newest-wins exactly like :meth:`append_all`.  Returns
        the number of records actually appended.
        """
        records = list(records)
        if not records:
            return 0
        current = self.load()
        fresh = [record for record in records
                 if current.get(record.get(HASH_FIELD)) != record]
        if fresh:
            self.append_all(fresh)
        return len(fresh)

    def load(self) -> Dict[str, Dict[str, Any]]:
        """All readable records, newest-wins, keyed by point hash.

        Every generator version's records are returned (callers filter
        by :data:`GENERATOR_FIELD` as needed); unparseable lines — the
        truncated tail a killed run leaves — are skipped silently.
        """
        records: Dict[str, Dict[str, Any]] = {}
        try:
            text = self.records_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            digest = record.get(HASH_FIELD)
            if isinstance(digest, str):
                records[digest] = record
        return records

    def load_current(self) -> Dict[str, Dict[str, Any]]:
        """Records stamped with the running generator version only."""
        generator = current_generator()
        return {digest: record
                for digest, record in self.load().items()
                if record.get(GENERATOR_FIELD) == generator}


class BaselineSidecar:
    """The baseline-memo sidecar of one sweep directory (see module
    docstring).  Append-only JSONL, same interrupt tolerance as the
    results store: unparseable lines are skipped, newest record per key
    wins (identical by construction anyway).  Each line records the
    memo key, the baseline payload, and the trace identity tuple
    ``[workload, instructions, seed, core]`` that produced it, so the
    runner can attach to each task only the entries for *its* trace."""

    FILENAME = "baselines.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    def _lines(self):
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (isinstance(record, dict) and isinstance(record.get("key"),
                                                        str)
                    and isinstance(record.get("baseline"), dict)):
                yield record

    def load(self) -> Dict[str, Dict[str, Any]]:
        """All readable sidecar entries, keyed by baseline memo key."""
        return {record["key"]: record["baseline"]
                for record in self._lines()}

    def load_all(self) -> Tuple[Dict[str, Dict[str, Any]],
                                Dict[tuple, Dict[str, Dict[str, Any]]]]:
        """(all entries by key, entries grouped by trace tuple) in one
        file pass — what the sweep runner reads at startup."""
        entries: Dict[str, Dict[str, Any]] = {}
        grouped: Dict[tuple, Dict[str, Dict[str, Any]]] = {}
        for record in self._lines():
            entries[record["key"]] = record["baseline"]
            trace = record.get("trace")
            if isinstance(trace, list) and len(trace) == 4:
                grouped.setdefault(tuple(trace), {})[record["key"]] = \
                    record["baseline"]
        return entries, grouped

    def load_by_trace(self) -> Dict[tuple, Dict[str, Dict[str, Any]]]:
        """Readable entries grouped by their trace identity tuple
        (entries without one — foreign tooling, hand edits — are simply
        not attachable per task; :meth:`load` still seeds them)."""
        return self.load_all()[1]

    def append_missing(self, entries: Dict[str, Dict[str, Any]],
                       known: set, trace: tuple) -> int:
        """Append ``trace``'s entries whose key is not in ``known``
        (which is updated in place); returns the number appended."""
        fresh = {key: value for key, value in entries.items()
                 if key not in known}
        if not fresh:
            return 0
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_append(
            self.path,
            (json.dumps(
                {"key": key, "baseline": value, "trace": list(trace)},
                sort_keys=True, separators=(",", ":")) + "\n"
             for key in sorted(fresh) for value in (fresh[key],)),
            site="sidecar.append")
        known.update(fresh)
        return len(fresh)
