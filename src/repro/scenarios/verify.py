"""Offline integrity checking for a sweep's on-disk state: ``repro
sweep verify``.

An fsck for the failure model (DESIGN.md "Failure model"): given a
results directory (and, when the trace store is enabled, the store it
draws from), walk every persisted artifact and report what is damaged,
quarantined, stale, or foreign — without running a single simulation.

Checked surfaces:

* ``results.jsonl`` — every line must parse as a record carrying the
  required envelope (``hash``, ``label``, ``generator``, ``kernel``,
  ``point``) and exactly one payload (``metrics`` or ``failed``); the
  stored hash must equal the recomputed content hash of the embedded
  point identity; with a spec, the hash must belong to the scenario's
  expansion.  Current-generator quarantined (``failed``) records are
  *errors* — the run completed degraded; stale-generator records are
  notes.
* ``baselines.jsonl`` — every line must parse with a string ``key``, a
  dict ``baseline``, and (when present) a 4-element ``trace`` list.
* trace store ``plans/*.npz`` — each cached train plan must load and
  carry the expected arrays with consistent lengths.
* trace store archives (``*.npz`` in the store root) — each must be a
  readable zip whose metadata passes the format loader's header checks.

``repair=True`` makes verification *restorative*: ``results.jsonl`` is
rewritten canonically — only successful current-generator records, in
spec expansion order, newest-wins — dropping corrupt lines, quarantined
records, stale and foreign leftovers so the next run recomputes exactly
what was lost; damaged sidecar lines are dropped the same way; corrupt
plan caches and trace archives are deleted (both rebuild on demand).
Because the repaired file is a pure function of (spec, surviving
records), a faulted-then-repaired-then-rerun store is byte-identical to
an undisturbed run's repaired store — the chaos equivalence lock in
``tests/faults/test_chaos.py`` and the CI ``chaos-smoke`` job.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Union

from ..sim.trainplan import PLANS_DIR
from ..trace.store import TraceStore
from .results import BaselineSidecar, ResultsStore, current_generator
from .spec import ScenarioSpec, point_hash

#: Envelope fields every results record must carry.
RECORD_FIELDS = ("hash", "label", "generator", "kernel", "point")

#: Arrays every cached train-plan sidecar must contain.
_PLAN_KEYS = ("at", "key", "trigger", "survives", "bits")


class VerifyFinding(NamedTuple):
    """One problem (or noteworthy condition) the checker found."""

    kind: str       #: stable machine-readable tag, e.g. ``bad-record``
    severity: str   #: ``error`` (integrity violated) or ``note``
    path: str       #: file the finding is about
    detail: str     #: human-readable explanation


class VerifyReport(NamedTuple):
    """Everything one :func:`verify_store` pass established."""

    findings: List[VerifyFinding]
    checked: Dict[str, int]   #: per-surface counts of items examined
    repaired: List[str]       #: repair actions taken (empty w/o repair)

    def errors(self) -> List[VerifyFinding]:
        return [finding for finding in self.findings
                if finding.severity == "error"]

    def clean(self) -> bool:
        return not self.errors()


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _rewrite(path: Path, lines: List[str]) -> None:
    """Atomically replace ``path`` with ``lines`` (may be empty)."""
    scratch = path.with_name(f"{path.name}.{os.getpid()}.repair.tmp")
    try:
        with open(scratch, "wb") as handle:
            handle.write("".join(lines).encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
    finally:
        scratch.unlink(missing_ok=True)


def _check_results(spec: Optional[ScenarioSpec], store: ResultsStore,
                   repair: bool, findings: List[VerifyFinding],
                   checked: Dict[str, int], repaired: List[str]) -> None:
    path = store.records_path
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return
    name = str(path)
    generator = current_generator()
    hashes = {point_hash(point): point for point in spec.points()} \
        if spec is not None else None
    # Newest-wins over surviving successful current-generator records —
    # the repair keep-set.  Quarantine findings are emitted from the
    # *final* state, so a failure superseded by a later success (the
    # rerun-retries-quarantine flow) is not an error.
    keep: Dict[str, Dict[str, Any]] = {}
    failed_current: Dict[str, Any] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        checked["records"] = checked.get("records", 0) + 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            findings.append(VerifyFinding(
                "bad-record", "error", name,
                f"line {number} does not parse as JSON (torn write?)"))
            continue
        if not isinstance(record, dict):
            findings.append(VerifyFinding(
                "bad-record", "error", name,
                f"line {number} is not a JSON object"))
            continue
        missing = [field for field in RECORD_FIELDS
                   if field not in record]
        if missing:
            findings.append(VerifyFinding(
                "bad-record", "error", name,
                f"line {number} lacks fields {missing}"))
            continue
        payloads = [field for field in ("metrics", "failed")
                    if field in record]
        if len(payloads) != 1:
            findings.append(VerifyFinding(
                "bad-record", "error", name,
                f"line {number} must carry exactly one of "
                f"'metrics'/'failed', has {payloads or 'neither'}"))
            continue
        digest = record["hash"]
        recomputed = None
        if isinstance(record["point"], dict):
            import hashlib

            recomputed = hashlib.sha256(
                _canonical(record["point"]).encode()).hexdigest()
        if digest != recomputed:
            findings.append(VerifyFinding(
                "hash-mismatch", "error", name,
                f"line {number}: stored hash {str(digest)[:12]}… does "
                "not match the embedded point identity"))
            continue
        if hashes is not None and digest not in hashes:
            findings.append(VerifyFinding(
                "foreign-record", "note", name,
                f"line {number}: no point of scenario "
                f"{spec.name!r} produces hash {digest[:12]}…"))
            continue
        if record["generator"] != generator:
            findings.append(VerifyFinding(
                "stale-record", "note", name,
                f"line {number}: generator {record['generator']!r} is "
                f"not the running {generator!r}; recomputed on rerun"))
            continue
        if payloads == ["failed"]:
            info = record["failed"] if isinstance(record["failed"],
                                                  dict) else {}
            failed_current[digest] = (number, info)
            keep.pop(digest, None)  # newest-wins: failure supersedes
            continue
        keep[digest] = record
        failed_current.pop(digest, None)  # ...and success supersedes
    for digest, (number, info) in sorted(failed_current.items(),
                                         key=lambda item: item[1][0]):
        findings.append(VerifyFinding(
            "quarantined", "error", name,
            f"line {number}: point {digest[:12]}… quarantined after "
            f"{info.get('attempts', '?')} attempts "
            f"({info.get('error', 'unknown failure')}); a rerun "
            "retries it"))
    if repair:
        if hashes is not None:
            ordered = [keep[digest] for digest in hashes
                       if digest in keep]
        else:
            ordered = [keep[digest] for digest in sorted(keep)]
        _rewrite(path, [_canonical(record) + "\n"
                        for record in ordered])
        repaired.append(
            f"rewrote {name}: kept {len(ordered)} successful "
            "current-generator records in canonical order")


def _check_sidecar(sidecar: BaselineSidecar, repair: bool,
                   findings: List[VerifyFinding], checked: Dict[str, int],
                   repaired: List[str]) -> None:
    path = sidecar.path
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return
    name = str(path)
    keep: List[str] = []
    dropped = 0
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        checked["baselines"] = checked.get("baselines", 0) + 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            record = None
        trace = record.get("trace") if isinstance(record, dict) else None
        if (not isinstance(record, dict)
                or not isinstance(record.get("key"), str)
                or not isinstance(record.get("baseline"), dict)
                or (trace is not None
                    and not (isinstance(trace, list) and len(trace) == 4))):
            findings.append(VerifyFinding(
                "bad-baseline", "error", name,
                f"line {number} is not a valid sidecar entry (the "
                "reader skips it; only costs recomputation)"))
            dropped += 1
            continue
        keep.append(_canonical(record) + "\n")
    if repair and dropped:
        _rewrite(path, keep)
        repaired.append(f"rewrote {name}: dropped {dropped} damaged "
                        "sidecar lines")


def _check_trace_store(repair: bool, findings: List[VerifyFinding],
                       checked: Dict[str, int],
                       repaired: List[str]) -> None:
    store = TraceStore.from_env()
    if store is None or not store.root.is_dir():
        return
    import numpy as np

    from ..trace.serialize import TraceFormatError, _read_meta

    plans = store.root / PLANS_DIR
    if plans.is_dir():
        for path in sorted(plans.glob("*.npz")):
            checked["plans"] = checked.get("plans", 0) + 1
            try:
                with np.load(path) as archive:
                    lengths = {len(archive[key]) for key in _PLAN_KEYS}
                if len(lengths) > 1:
                    raise ValueError(
                        f"inconsistent array lengths {sorted(lengths)}")
            except Exception as error:  # reprolint: disable=RL009 - fsck: any load failure means the cache entry is corrupt; it is reported and (on repair) deleted, and the cache rebuilds on demand
                findings.append(VerifyFinding(
                    "bad-plan", "error", str(path),
                    f"cached train plan unreadable: {error} "
                    "(rebuilt on demand)"))
                if repair:
                    path.unlink(missing_ok=True)
                    repaired.append(f"deleted corrupt plan {path.name}")
    for path in sorted(store.root.glob("*.npz")):
        checked["archives"] = checked.get("archives", 0) + 1
        try:
            with zipfile.ZipFile(path) as archive:
                _read_meta(archive, path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile,
                TraceFormatError) as error:
            findings.append(VerifyFinding(
                "bad-archive", "error", str(path),
                f"trace archive fails header checks: {error} "
                "(regenerated on demand)"))
            if repair:
                path.unlink(missing_ok=True)
                repaired.append(f"deleted corrupt archive {path.name}")


def verify_store(spec: Optional[ScenarioSpec], out: Union[str, Path],
                 repair: bool = False,
                 check_store: bool = True) -> VerifyReport:
    """Fsck the sweep directory ``out`` (and the trace store).

    ``spec`` enables membership checks and canonical-order repair; pass
    None to verify a directory whose scenario cannot be loaded (schema
    and hash checks still run).  ``repair`` applies the restorative
    rewrites described in the module docstring.  ``check_store=False``
    skips the trace-store surfaces (plans, archives).
    """
    findings: List[VerifyFinding] = []
    checked: Dict[str, int] = {}
    repaired: List[str] = []
    store = ResultsStore(out)
    _check_results(spec, store, repair, findings, checked, repaired)
    _check_sidecar(BaselineSidecar(out), repair, findings, checked,
                   repaired)
    if check_store:
        _check_trace_store(repair, findings, checked, repaired)
    return VerifyReport(findings=findings, checked=checked,
                        repaired=repaired)


def format_report(report: VerifyReport) -> str:
    """``repro sweep verify``'s text rendering."""
    lines = []
    for surface in sorted(report.checked):
        lines.append(f"checked    {report.checked[surface]} {surface}")
    for finding in report.findings:
        lines.append(f"{finding.severity:<7}    [{finding.kind}] "
                     f"{finding.path}: {finding.detail}")
    for action in report.repaired:
        lines.append(f"repaired   {action}")
    lines.append("status     " + ("clean" if report.clean()
                                  else f"{len(report.errors())} integrity "
                                  "errors"))
    return "\n".join(lines)
