"""Declarative scenario specs: the sweep format and its expansion.

A *scenario* describes a cache-geometry × replacement-policy ×
prefetcher-parameter × workload study as data instead of Python: a YAML
or JSON file (or a plain dict) with one axis per knob.  Every axis can
be a scalar or a list; :func:`ScenarioSpec.points` expands the axes into
concrete :class:`SweepPoint` simulation points either as a full cross
product (``mode: product``, the default) or position-wise
(``mode: zip``, where every multi-valued axis must share one length and
scalars broadcast).

Spec layout (units in brackets)::

    name: geometry-sweep            # required, the scenario's identity
    description: free text          # optional
    sweep:
      mode: product                 # or: zip
      workloads: [oltp-db2, ...]    # paper workload names
      instructions: 300000          # requested trace length per core
                                    #   [instructions, not accesses]
      seeds: [42]                   # root RNG seeds
      cores: 1                      # cores per workload (expands 0..N-1)
      warmup: 0.4                   # warmup window [fraction of
                                    #   accesses in 0.0-1.0, not %]
      cache:
        kb: [16, 32, 64]            # L1-I capacity [KiB]
        assoc: 2                    # ways
        line: 64                    # block size [bytes]
        replacement: lru            # lru | fifo | random
      engines:                      # one entry per engine variant group
        - next-line                 # bare name: engine defaults
        - name: pif                 # dict form: parameter grids
          label: "{sab_count}x{sab_window_regions}"
          params:
            mode: zip               # grids expand product (default) or zip
            sab_count: [1, 2, 4]
            sab_window_regions: [3, 3, 7]
      timing: false                 # also run the timing model per point
                                    #   (records speedup vs no-prefetch)

Validation is strict: unknown or misspelled keys raise
:class:`SpecError` naming the offending key path (``sweep.cache.kb``),
as do empty axes, zip-length mismatches, unknown workloads/engines, and
engine parameters the engine does not accept.

Every expanded point has a stable content hash
(:func:`point_hash` — SHA-256 over the canonical JSON of its identity
fields), which is what the results store keys completed work by; labels
are display-only and deliberately excluded, so relabeling a scenario
never invalidates stored results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..workloads.spec import WORKLOAD_NAMES
from .engines import build_engine, validate_engine_params

#: Axis expansion modes.
MODES = ("product", "zip")

#: Scalar sweep axes in expansion order (outermost first), as
#: (spec key path, SweepPoint field) pairs.  ``mode`` applies to these;
#: cores and engine variants always cross.
_SCALAR_AXES = (
    ("workloads", "workload"),
    ("instructions", "instructions"),
    ("seeds", "seed"),
    ("warmup", "warmup"),
    ("cache.kb", "cache_kb"),
    ("cache.assoc", "associativity"),
    ("cache.line", "block_bytes"),
    ("cache.replacement", "replacement"),
)

_SWEEP_KEYS = frozenset({"mode", "workloads", "instructions", "seeds",
                         "cores", "warmup", "cache", "engines", "timing"})
_CACHE_KEYS = frozenset({"kb", "assoc", "line", "replacement"})
_ENGINE_ENTRY_KEYS = frozenset({"name", "label", "params"})


class SpecError(ValueError):
    """A scenario spec failed validation; the message names the bad key."""


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One concrete simulation point of an expanded scenario.

    Fields are the point's full identity: ``instructions`` is the
    *requested* trace length per core (retired instructions, not
    accesses), ``warmup`` the warmup window as a fraction of trace
    accesses in ``[0, 1)``, cache geometry in bytes/ways, ``params`` the
    engine's parameter overrides as a sorted tuple of (name, value)
    pairs.  ``label`` is display-only and excluded from the hash.
    """

    workload: str
    instructions: int
    seed: int
    core: int
    warmup: float
    capacity_bytes: int
    associativity: int
    block_bytes: int
    replacement: str
    engine: str
    params: Tuple[Tuple[str, Any], ...]
    label: str
    timing: bool

    def identity(self) -> Dict[str, Any]:
        """The hashed identity fields as a JSON-serializable dict."""
        return {
            "workload": self.workload,
            "instructions": self.instructions,
            "seed": self.seed,
            "core": self.core,
            "warmup": self.warmup,
            "cache": {
                "capacity_bytes": self.capacity_bytes,
                "associativity": self.associativity,
                "block_bytes": self.block_bytes,
                "replacement": self.replacement,
            },
            "engine": self.engine,
            "params": dict(self.params),
            "timing": self.timing,
        }


def point_hash(point: SweepPoint) -> str:
    """Stable content hash of a point's identity (hex SHA-256).

    Canonical JSON (sorted keys, no whitespace) over
    :meth:`SweepPoint.identity`; the results store keys records by this,
    so the encoding is part of the on-disk contract and locked by
    ``tests/scenarios/test_scenario_spec.py``.
    """
    payload = json.dumps(point.identity(), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(slots=True)
class _EngineVariant:
    """One fully parameterized engine column of the sweep."""

    engine: str
    params: Tuple[Tuple[str, Any], ...]
    label: str


@dataclass(slots=True)
class ScenarioSpec:
    """A validated scenario: identity, axes, and the expansion logic."""

    name: str
    description: str
    mode: str
    axes: Dict[str, List[Any]]  # key path -> normalized value list
    cores: int
    variants: List[_EngineVariant]
    timing: bool
    #: The raw (pre-normalization) spec dict, persisted verbatim as
    #: ``scenario.json`` in a sweep's output directory so ``status`` and
    #: ``report`` can run without the original file.
    source: Dict[str, Any] = field(default_factory=dict)

    def points(self) -> List[SweepPoint]:
        """Expand the axes into the ordered list of simulation points.

        Order is deterministic and defines both the results-store append
        order under serial execution and the lane order of batched
        walks: scalar axes outermost (in :data:`_SCALAR_AXES` order),
        then cores, then engine variants innermost — so all lanes of one
        trace are consecutive.
        """
        combos = (_product_combos(self.axes) if self.mode == "product"
                  else _zip_combos(self.axes))
        points: List[SweepPoint] = []
        seen: Dict[str, SweepPoint] = {}
        for combo in combos:
            capacity_bytes = combo["cache.kb"] * 1024
            _check_cache_geometry(capacity_bytes, combo["cache.assoc"],
                                  combo["cache.line"])
            for core in range(self.cores):
                for variant in self.variants:
                    point = SweepPoint(
                        workload=combo["workloads"],
                        instructions=combo["instructions"],
                        seed=combo["seeds"],
                        core=core,
                        warmup=combo["warmup"],
                        capacity_bytes=capacity_bytes,
                        associativity=combo["cache.assoc"],
                        block_bytes=combo["cache.line"],
                        replacement=combo["cache.replacement"],
                        engine=variant.engine,
                        params=variant.params,
                        label=variant.label,
                        timing=self.timing,
                    )
                    digest = point_hash(point)
                    if digest in seen:
                        raise SpecError(
                            f"sweep expands to duplicate points: "
                            f"{point.label!r} on {point.workload!r} "
                            "appears more than once")
                    seen[digest] = point
                    points.append(point)
        return points

    def labels(self) -> List[str]:
        """Engine-variant labels in spec (column) order."""
        return [variant.label for variant in self.variants]


# ---------------------------------------------------------------------------
# parsing / validation


def _type_name(value: Any) -> str:
    return type(value).__name__


def _as_list(value: Any) -> List[Any]:
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _require_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise SpecError(f"{path} must be a mapping, got {_type_name(value)}")
    return value


def _scalar_axis(raw: Mapping[str, Any], key: str, path: str, default: Any,
                 kind, kind_label: str) -> List[Any]:
    """Normalize one axis to a non-empty list of validated scalars."""
    value = raw.get(key, default)
    values = _as_list(value)
    if not values:
        raise SpecError(f"{path} is an empty axis; give at least one value")
    for item in values:
        # bool is an int subclass; reject it for numeric axes explicitly.
        if not isinstance(item, kind) or isinstance(item, bool):
            raise SpecError(f"{path} values must be {kind_label}, "
                            f"got {item!r}")
    return values


def _check_cache_geometry(capacity_bytes: int, associativity: int,
                          block_bytes: int) -> None:
    """Reject geometries CacheConfig would refuse, naming the spec keys."""
    from ..common.config import CacheConfig

    try:
        CacheConfig(capacity_bytes=capacity_bytes,
                    associativity=associativity, block_bytes=block_bytes)
    except ValueError as error:
        raise SpecError(
            f"sweep.cache: invalid geometry "
            f"(kb={capacity_bytes // 1024}, assoc={associativity}, "
            f"line={block_bytes}): {error}") from error


def _parse_params(raw_params: Mapping[str, Any], engine: str, path: str
                  ) -> List[Dict[str, Any]]:
    """Expand one engine entry's parameter grids into concrete dicts."""
    mode = raw_params.get("mode", "product")
    if mode not in MODES:
        raise SpecError(f"{path}.mode must be one of {MODES}, got {mode!r}")
    grids: Dict[str, List[Any]] = {}
    for key, value in raw_params.items():
        if key == "mode":
            continue
        values = _as_list(value)
        if not values:
            raise SpecError(f"{path}.{key} is an empty axis; "
                            "give at least one value")
        for item in values:
            # Values must be JSON scalars: they feed the point hash and
            # the results store.  YAML happily produces dates, nested
            # lists etc. — reject those here, naming the key, instead
            # of letting json.dumps raise a TypeError later.
            if not isinstance(item, (int, float, str, bool)):
                raise SpecError(
                    f"{path}.{key} values must be numbers, strings or "
                    f"booleans, got {item!r} ({_type_name(item)})")
        grids[key] = values
    validate_engine_params(engine, grids.keys(), path)
    if not grids:
        return [{}]
    names = list(grids)
    if mode == "zip":
        lengths = {len(values) for values in grids.values() if len(values) > 1}
        if len(lengths) > 1:
            detail = ", ".join(f"{name}={len(values)}"
                               for name, values in grids.items())
            raise SpecError(f"{path}: zip mode needs equal-length lists; "
                            f"got {detail}")
        length = lengths.pop() if lengths else 1
        return [
            {name: grids[name][i if len(grids[name]) > 1 else 0]
             for name in names}
            for i in range(length)
        ]
    expanded: List[Dict[str, Any]] = [{}]
    for name in names:
        expanded = [{**combo, name: value}
                    for combo in expanded for value in grids[name]]
    return expanded


def _variant_label(engine: str, params: Dict[str, Any],
                   template: Optional[str], path: str) -> str:
    if template is not None:
        try:
            return template.format(**params)
        except (KeyError, IndexError) as error:
            raise SpecError(f"{path}.label template {template!r} references "
                            f"unknown parameter {error}") from error
    if not params:
        return engine
    inner = ",".join(f"{key}={value}" for key, value in params.items())
    return f"{engine}[{inner}]"


def _parse_engines(raw: Any) -> List[_EngineVariant]:
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise SpecError("sweep.engines must be a list of engine entries")
    if not raw:
        raise SpecError("sweep.engines is an empty axis; "
                        "give at least one engine")
    variants: List[_EngineVariant] = []
    labels: Dict[str, int] = {}
    for position, entry in enumerate(raw):
        path = f"sweep.engines[{position}]"
        if isinstance(entry, str):
            name, template, raw_params = entry, None, {}
        else:
            entry = _require_mapping(entry, path)
            unknown = sorted(set(entry) - _ENGINE_ENTRY_KEYS)
            if unknown:
                raise SpecError(f"{path} has unknown key {unknown[0]!r}; "
                                f"allowed: {sorted(_ENGINE_ENTRY_KEYS)}")
            if "name" not in entry:
                raise SpecError(f"{path} is missing required key 'name'")
            name = entry["name"]
            template = entry.get("label")
            raw_params = _require_mapping(entry.get("params", {}),
                                          f"{path}.params")
        if not isinstance(name, str):
            raise SpecError(f"{path}.name must be a string, got "
                            f"{_type_name(name)}")
        for params in _parse_params(raw_params, name, f"{path}.params"):
            # Construct the engine once at parse time so out-of-range
            # values (degree: 0, negative sizes) fail here as a
            # SpecError naming the entry — not mid-sweep inside a
            # worker process.  Constructor validation does not depend
            # on the line size, so a representative 64 B suffices.
            try:
                build_engine(name, params, block_bytes=64)
            except ValueError as error:
                raise SpecError(
                    f"{path}.params: engine {name!r} rejects "
                    f"{params!r}: {error}") from error
            label = _variant_label(name, params, template, path)
            if label in labels:
                raise SpecError(
                    f"{path}: duplicate engine label {label!r} (also "
                    f"produced by sweep.engines[{labels[label]}]); labels "
                    "must be unique because report columns key on them")
            labels[label] = position
            variants.append(_EngineVariant(
                engine=name, params=tuple(sorted(params.items())),
                label=label))
    return variants


def parse_spec(raw: Mapping[str, Any]) -> ScenarioSpec:
    """Validate a raw spec dict and return the :class:`ScenarioSpec`.

    Raises :class:`SpecError` naming the offending key on any problem;
    a spec that parses is guaranteed to expand (cache-geometry
    divisibility included, since geometry is checked per combination
    here as well as in :meth:`ScenarioSpec.points`).
    """
    raw = _require_mapping(raw, "spec")
    unknown = sorted(set(raw) - {"name", "description", "sweep"})
    if unknown:
        raise SpecError(f"spec has unknown key {unknown[0]!r}; "
                        "allowed: ['description', 'name', 'sweep']")
    name = raw.get("name")
    if not isinstance(name, str) or not name.strip():
        raise SpecError("spec.name must be a non-empty string")
    description = raw.get("description", "")
    if not isinstance(description, str):
        raise SpecError("spec.description must be a string")
    sweep = _require_mapping(raw.get("sweep"), "sweep")
    unknown = sorted(set(sweep) - _SWEEP_KEYS)
    if unknown:
        raise SpecError(f"sweep has unknown key {unknown[0]!r}; "
                        f"allowed: {sorted(_SWEEP_KEYS)}")

    mode = sweep.get("mode", "product")
    if mode not in MODES:
        raise SpecError(f"sweep.mode must be one of {MODES}, got {mode!r}")

    axes: Dict[str, List[Any]] = {}
    if "workloads" not in sweep:
        raise SpecError("sweep.workloads is required")
    axes["workloads"] = _scalar_axis(sweep, "workloads", "sweep.workloads",
                                     None, str, "workload names")
    for workload in axes["workloads"]:
        if workload not in WORKLOAD_NAMES:
            raise SpecError(f"sweep.workloads: unknown workload "
                            f"{workload!r}; choose from "
                            f"{sorted(WORKLOAD_NAMES)}")
    if "instructions" not in sweep:
        raise SpecError("sweep.instructions is required")
    axes["instructions"] = _scalar_axis(sweep, "instructions",
                                        "sweep.instructions", None, int,
                                        "positive integers (instructions)")
    axes["seeds"] = _scalar_axis(sweep, "seeds", "sweep.seeds", 42, int,
                                 "integers")
    axes["warmup"] = _scalar_axis(sweep, "warmup", "sweep.warmup", 0.4,
                                  (int, float), "fractions in [0.0, 1.0)")
    for value in axes["instructions"]:
        if value <= 0:
            raise SpecError(f"sweep.instructions must be positive, "
                            f"got {value}")
    axes["warmup"] = [float(value) for value in axes["warmup"]]
    for value in axes["warmup"]:
        if not 0.0 <= value < 1.0:
            raise SpecError(f"sweep.warmup must be a fraction in "
                            f"[0.0, 1.0), got {value}")

    cache = _require_mapping(sweep.get("cache", {}), "sweep.cache")
    unknown = sorted(set(cache) - _CACHE_KEYS)
    if unknown:
        raise SpecError(f"sweep.cache has unknown key {unknown[0]!r}; "
                        f"allowed: {sorted(_CACHE_KEYS)}")
    axes["cache.kb"] = _scalar_axis(cache, "kb", "sweep.cache.kb", 32, int,
                                    "capacities in KiB")
    axes["cache.assoc"] = _scalar_axis(cache, "assoc", "sweep.cache.assoc",
                                       2, int, "way counts")
    axes["cache.line"] = _scalar_axis(cache, "line", "sweep.cache.line",
                                      64, int, "block sizes in bytes")
    axes["cache.replacement"] = _scalar_axis(
        cache, "replacement", "sweep.cache.replacement", "lru", str,
        "policy names")
    for policy in axes["cache.replacement"]:
        if policy not in ("lru", "fifo", "random"):
            raise SpecError(f"sweep.cache.replacement: unknown policy "
                            f"{policy!r}; choose from "
                            "['fifo', 'lru', 'random']")

    cores = sweep.get("cores", 1)
    if not isinstance(cores, int) or isinstance(cores, bool) or cores <= 0:
        raise SpecError(f"sweep.cores must be a positive integer, "
                        f"got {cores!r}")
    timing = sweep.get("timing", False)
    if not isinstance(timing, bool):
        raise SpecError(f"sweep.timing must be true or false, got {timing!r}")

    if mode == "zip":
        lengths = {key: len(values) for key, values in axes.items()
                   if len(values) > 1}
        if len(set(lengths.values())) > 1:
            detail = ", ".join(f"{key}={length}"
                               for key, length in sorted(lengths.items()))
            raise SpecError(f"sweep: zip mode needs equal-length axes; "
                            f"got {detail}")

    variants = _parse_engines(sweep.get("engines"))

    spec = ScenarioSpec(name=name.strip(), description=description,
                        mode=mode, axes=axes, cores=cores,
                        variants=variants, timing=timing,
                        source=json.loads(json.dumps(raw)))
    # Expanding validates per-combination cache geometry eagerly, so a
    # spec never fails halfway through a run.
    spec.points()
    return spec


def _product_combos(axes: Dict[str, List[Any]]):
    """Cross product of the scalar axes, outermost axis first."""
    keys = [key for key, _ in _SCALAR_AXES]
    combos: List[Dict[str, Any]] = [{}]
    for key in keys:
        combos = [{**combo, key: value}
                  for combo in combos for value in axes[key]]
    return combos


def _zip_combos(axes: Dict[str, List[Any]]):
    """Position-wise combination; scalars broadcast to the shared length."""
    keys = [key for key, _ in _SCALAR_AXES]
    length = max((len(axes[key]) for key in keys), default=1)
    return [
        {key: axes[key][i if len(axes[key]) > 1 else 0] for key in keys}
        for i in range(length)
    ]


# ---------------------------------------------------------------------------
# file loading


def load_spec(path: Union[str, Path],
              sweep_overrides: Optional[Mapping[str, Any]] = None
              ) -> ScenarioSpec:
    """Load and validate a scenario file (``.yaml``/``.yml``/``.json``).

    ``sweep_overrides`` replaces top-level ``sweep`` keys before
    validation (each key wholesale — no deep merge), which is how tests
    and ad-hoc runs rescale a checked-in scenario without editing it.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise SpecError(f"cannot read scenario file {path}: {error}") from error
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as error:  # pragma: no cover - env-dependent
            raise SpecError(
                f"{path} is YAML but PyYAML is not installed; install "
                "pyyaml or use a .json scenario") from error
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise SpecError(f"{path} is not valid YAML: {error}") from error
    elif path.suffix.lower() == ".json":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"{path} is not valid JSON: {error}") from error
    else:
        raise SpecError(f"unsupported scenario file type {path.suffix!r} "
                        f"for {path}; use .yaml, .yml or .json")
    raw = _require_mapping(raw, "spec")
    if sweep_overrides:
        raw = dict(raw)
        raw["sweep"] = {**_require_mapping(raw.get("sweep", {}), "sweep"),
                        **dict(sweep_overrides)}
    return parse_spec(raw)
