"""The sweep runner: expand a scenario, simulate what's missing, resume.

Execution strategy, in order of the wins it banks:

1. **Resume before compute.**  The expanded points are checked against
   the output directory's :class:`~repro.scenarios.results.ResultsStore`
   first; every point that already has a record under the current
   trace-generator version is skipped entirely.  An interrupted sweep
   rerun with the same arguments therefore finishes the remainder
   instead of starting over, and a finished sweep is a no-op.
2. **Batch lanes per trace.**  Missing points that share a trace and
   warmup window — (workload, instructions, seed, core, warmup) —
   become lanes of one single-pass multi-prefetcher walk
   (:func:`repro.sim.engine.run_multi_prefetch_simulation`), each lane
   carrying its own cache geometry, so a 12-engine-variant sweep costs
   one trace walk, not twelve.
3. **Shard wide groups.**  Under ``jobs > 1`` a group with many lanes
   (a geometry × engine cross easily reaches dozens) is split into
   per-shard walks over the same trace (:func:`_shard_tasks`), so a
   scenario with fewer trace groups than workers still saturates the
   pool.  Lanes never interact, so shard records are bit-identical to
   the unsharded walk; the mmap-backed trace store and the per-process
   decoded-column/train-plan caches keep the per-shard trace cost to
   page-cache hits.
4. **Schedule by cost, largest first.**  Tasks are ordered by estimated
   cost (requested instructions × lane count) so the longest walks
   start first and the tail of a parallel run stays short.
5. **Fan out on the persistent pool.**  Tasks are distributed via
   :func:`repro.experiments.parallel.parallel_imap`, whose workers come
   from the process-wide persistent pool (attached to the trace store
   by their initializer); each task's records are appended to the store
   the moment it completes, so a kill loses at most the in-flight
   tasks.
6. **Memoize baselines across points and runs.**  No-prefetch baseline
   replays are memoized in-process keyed by (trace content hash, cache
   geometry, replacement, warmup) and persisted to the
   :class:`~repro.scenarios.results.BaselineSidecar` next to the
   results store; reruns and resumed sweeps seed their workers from the
   sidecar and skip the replays.

Per-point metrics recorded (units): ``baseline_misses`` and
``remaining_misses`` are correct-path demand-miss *counts* in the
post-warmup measurement window; ``coverage`` is the signed fraction of
baseline misses eliminated (1.0 = all, negative = pollution — not a
percent); ``baseline_mpki``/``remaining_mpki`` are misses per 1000
*retired instructions* (whole-trace instruction count, window-restricted
misses — indicative, as in
:meth:`repro.sim.tracesim.PrefetchSimResult.baseline_mpki`);
``prefetches_issued`` counts issues over the whole trace.  With
``timing: true`` each point also records ``speedup`` — the timing
model's UIPC ratio against a no-prefetch baseline of the same cache
geometry (dimensionless, 1.0 = no change).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (Any, Callable, Dict, List, NamedTuple, Optional, Tuple,
                    Union)

from ..common.config import CacheConfig, SystemConfig
from ..experiments.parallel import (TaskFailure, parallel_imap,
                                    shutdown_shared_pool)
from ..faults import fire
from ..pipeline.tracegen import cached_trace
from ..sim.baseline import export_baseline_memo, seed_baseline_memo
from ..sim.engine import resolve_kernel, run_multi_prefetch_simulation
from ..sim.timing import run_timing_simulation
from .engines import build_engine
from .results import BaselineSidecar, ResultsStore, current_generator
from .spec import ScenarioSpec, SweepPoint, point_hash

#: Task-count multiple :func:`_shard_tasks` aims for under ``jobs > 1``
#: (oversubscription smooths unequal task costs across workers).
SHARD_OVERSUBSCRIPTION = 2

#: Default retry budget per trace-group task before quarantine
#: (``repro sweep run --max-retries``).
DEFAULT_MAX_RETRIES = 2


@dataclass(slots=True)
class SweepRunSummary:
    """Outcome of one :func:`run_sweep` invocation (point counts)."""

    total: int        #: points the scenario expands to
    skipped: int      #: points already stored (current generator)
    computed: int     #: points simulated by this invocation
    remaining: int    #: points still missing afterwards (``--limit`` runs)
    failed: int = 0   #: points quarantined by this invocation (retries spent)
    #: Trace-group names quarantined this invocation, first-failure order.
    quarantined: Tuple[str, ...] = ()

    def complete(self) -> bool:
        """True when every expanded point now has a stored record —
        successful *or* quarantined (nothing left to attempt)."""
        return self.remaining == 0

    def degraded(self) -> bool:
        """True when the sweep finished but quarantined points (the
        ``repro sweep run`` exit-3 condition; a rerun retries them)."""
        return self.complete() and self.failed > 0


class _GroupTask(NamedTuple):
    """All missing lanes of one (trace, warmup) group — or one shard of
    such a group — one walk's worth."""

    workload: str
    instructions: int
    seed: int
    core: int
    warmup: float
    kernel: Optional[str]
    #: (point hash, point) per lane, in spec expansion order.
    lanes: Tuple[Tuple[str, SweepPoint], ...]
    #: Baseline-memo sidecar entries for *this task's trace*, seeded
    #: into the worker process (None on first runs; see BaselineSidecar).
    baselines: Optional[Dict[str, Dict[str, Any]]] = None
    #: Retry generation: 0 on first submission, +1 per retry.  Part of
    #: the ``worker.task`` fault key, so plans can target first
    #: attempts only (transient fault) or every attempt (poison task).
    attempt: int = 0

    def trace_key(self) -> Tuple[str, int, int, int]:
        """The trace identity tuple sidecar entries are scoped by."""
        return (self.workload, self.instructions, self.seed, self.core)

    def cost(self) -> int:
        """Scheduling cost estimate: trace length × lane count."""
        return self.instructions * len(self.lanes)

    def group_name(self) -> str:
        """Human-readable trace-group identity (shards share it) —
        what quarantine messages and ``repro sweep run`` exit text
        name."""
        return (f"{self.workload}/i{self.instructions}/s{self.seed}"
                f"/c{self.core}")

    def fault_key(self) -> str:
        """Deterministic ``worker.task`` injection key for this task."""
        return (f"{self.workload}:i{self.instructions}:s{self.seed}:"
                f"c{self.core}:w{self.warmup}:lanes{len(self.lanes)}:"
                f"attempt={self.attempt}")


def _cache_config(point: SweepPoint) -> CacheConfig:
    return CacheConfig(capacity_bytes=point.capacity_bytes,
                       associativity=point.associativity,
                       block_bytes=point.block_bytes,
                       replacement=point.replacement)


def _run_group(task: _GroupTask
               ) -> Tuple[List[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
    """Simulate one trace group (or shard); returns (one record per
    lane, the worker's baseline-memo snapshot for the sidecar).

    Runs inside a worker process under ``--jobs N``; everything it
    touches is deterministic in the task alone (trace generation is
    seeded, random replacement uses per-set ``Random(0)``), so records
    are identical whichever worker runs them — and identical however
    the group was sharded, because lanes never observe each other.
    """
    fire("worker.task", task.fault_key())
    if task.baselines:
        seed_baseline_memo(task.baselines)
    bundle = cached_trace(task.workload, task.instructions, task.seed,
                          task.core).bundle
    engines = [build_engine(point.engine, dict(point.params),
                            point.block_bytes)
               for _, point in task.lanes]
    configs = [_cache_config(point) for _, point in task.lanes]
    sims = run_multi_prefetch_simulation(
        bundle, engines, cache_configs=configs,
        warmup_fraction=task.warmup, kernel=task.kernel)

    timing_baselines: Dict[CacheConfig, float] = {}
    generator = current_generator()
    kernel = resolve_kernel(task.kernel)
    records: List[Dict[str, Any]] = []
    for (digest, point), config, sim in zip(task.lanes, configs, sims):
        metrics: Dict[str, Any] = {
            "baseline_misses": sim.baseline_misses,
            "remaining_misses": sim.remaining_misses,
            "coverage": sim.coverage(),
            "prefetches_issued": sim.prefetches_issued,
            "baseline_mpki": sim.baseline_mpki(),
            "remaining_mpki": (
                1000.0 * sim.remaining_misses / sim.instructions
                if sim.instructions else 0.0),
        }
        if point.timing:
            system = replace(SystemConfig(), l1i=config)
            base_uipc = timing_baselines.get(config)
            if base_uipc is None:
                base_uipc = run_timing_simulation(
                    bundle, None, system, task.warmup,
                    kernel=task.kernel).uipc()
                timing_baselines[config] = base_uipc
            # The coverage walk mutated this lane's engine; the timing
            # model needs a fresh one, exactly as the figure runners do.
            timed = run_timing_simulation(
                bundle, build_engine(point.engine, dict(point.params),
                                     point.block_bytes),
                system, task.warmup, kernel=task.kernel)
            metrics["uipc"] = timed.uipc()
            metrics["speedup"] = (timed.uipc() / base_uipc
                                  if base_uipc else 0.0)
        records.append({
            "hash": digest,
            "label": point.label,
            "generator": generator,
            "kernel": kernel,
            "point": point.identity(),
            "metrics": metrics,
        })
    # Scoped to this bundle's entries: a persistent worker's memo also
    # holds other traces' (and other sweeps') baselines.
    return records, export_baseline_memo(bundle.content_hash())


def missing_points(spec: ScenarioSpec, store: ResultsStore
                   ) -> Tuple[List[Tuple[str, SweepPoint]], int]:
    """(points without a current-generator record, count already done).

    A quarantined record (``"failed"`` instead of ``"metrics"``) does
    *not* count as done: a rerun retries exactly the quarantined set,
    and a success supersedes the failed record by newest-wins.
    """
    current = store.load_current()
    done = {digest for digest, record in current.items()
            if "failed" not in record}
    pending: List[Tuple[str, SweepPoint]] = []
    skipped = 0
    for point in spec.points():
        digest = point_hash(point)
        if digest in done:
            skipped += 1
        else:
            pending.append((digest, point))
    return pending, skipped


def _failed_records(task: _GroupTask, failure: TaskFailure,
                    attempts: int) -> List[Dict[str, Any]]:
    """Quarantine records for every lane of a spent task: same identity
    envelope as success records, ``failed`` payload instead of
    ``metrics``.  Every field is deterministic (attempt counters, the
    constant worker-died text, injected-fault messages) so fault runs
    stay byte-reproducible."""
    generator = current_generator()
    return [
        {
            "hash": digest,
            "label": point.label,
            "generator": generator,
            "kernel": task.kernel,
            "point": point.identity(),
            "failed": {"attempts": attempts, "kind": failure.kind,
                       "error": failure.error},
        }
        for digest, point in task.lanes
    ]


def _group_tasks(pending: List[Tuple[str, SweepPoint]],
                 kernel: Optional[str]) -> List[_GroupTask]:
    """Group pending points into one task per (trace, warmup) walk,
    preserving first-seen group order and in-group lane order."""
    groups: Dict[Tuple[str, int, int, int, float],
                 List[Tuple[str, SweepPoint]]] = {}
    for digest, point in pending:
        key = (point.workload, point.instructions, point.seed, point.core,
               point.warmup)
        groups.setdefault(key, []).append((digest, point))
    return [
        _GroupTask(workload=key[0], instructions=key[1], seed=key[2],
                   core=key[3], warmup=key[4], kernel=kernel,
                   lanes=tuple(lanes))
        for key, lanes in groups.items()
    ]


def _shard_tasks(tasks: List[_GroupTask], jobs: int) -> List[_GroupTask]:
    """Split wide trace groups into lane shards until the task count
    reaches ``jobs * SHARD_OVERSUBSCRIPTION`` (or nothing is left to
    split), then order everything largest-estimated-cost first.

    Deterministic: the split sequence depends only on the task list and
    ``jobs`` (ties broken by original submission order), and shard
    records are bit-identical to unsharded ones, so sharding can never
    change what lands in the results store — only how fast it lands.
    With ``jobs == 1`` the input tasks are returned as-is (submission
    order), preserving the serial runner's byte-for-byte store layout.
    """
    if jobs <= 1:
        return tasks
    target = jobs * SHARD_OVERSUBSCRIPTION
    # Stable working list of [cost, original_index, task] entries.
    work = [[task.cost(), index, task] for index, task in enumerate(tasks)]
    while len(work) < target:
        # Largest task first; original index breaks ties stably.
        work.sort(key=lambda entry: (-entry[0], entry[1]))
        for entry in work:
            if len(entry[2].lanes) > 1:
                cost, index, task = entry
                middle = (len(task.lanes) + 1) // 2
                first = task._replace(lanes=task.lanes[:middle])
                second = task._replace(lanes=task.lanes[middle:])
                entry[0] = first.cost()
                entry[2] = first
                work.append([second.cost(), index, second])
                break
        else:
            break  # every task is a single lane already
    work.sort(key=lambda entry: (-entry[0], entry[1]))
    return [entry[2] for entry in work]


class SweepPlan(NamedTuple):
    """Everything :func:`prepare_sweep` resolved before execution: the
    opened store/sidecar pair, the resume accounting, and the sharded
    task list — shared verbatim by the inline runner and the
    distributed coordinator (:mod:`repro.dist`), so both execute the
    exact same tasks against the exact same store."""

    store: ResultsStore
    sidecar: BaselineSidecar
    #: All sidecar entries by memo key (seed for a serial walk).
    known_baselines: Dict[str, Dict[str, Any]]
    #: Keys already persisted — updated in place as groups finish.
    known_keys: set
    total: int      #: points the scenario expands to
    skipped: int    #: points already stored (current generator)
    selected: int   #: points this invocation will attempt
    groups: int     #: distinct (trace, warmup) groups among them
    tasks: List[_GroupTask]

    def describe(self, spec_name: str, jobs: int) -> str:
        """The standard one-line sweep preamble ``emit`` prints."""
        return (f"sweep {spec_name!r}: {self.total} points "
                f"({self.skipped} stored, {self.selected} to run in "
                f"{len(self.tasks)} tasks over {self.groups} trace "
                f"groups, jobs={jobs})")


def prepare_sweep(spec: ScenarioSpec, out: Union[str, Path], jobs: int = 1,
                  limit: Optional[int] = None,
                  kernel: Optional[str] = None,
                  attach_baselines: Optional[bool] = None) -> SweepPlan:
    """Resolve a sweep invocation into a :class:`SweepPlan`.

    Opens (creating if needed) the results store under ``out``, records
    the launching spec, computes the missing-point set, groups and
    shards it exactly as :func:`run_sweep` would for ``jobs``, and —
    when ``attach_baselines`` (default: ``jobs > 1``) — attaches each
    task's trace-scoped sidecar entries so remote workers can seed
    their baseline memos without a shared filesystem.
    """
    kernel = resolve_kernel(kernel)
    store = ResultsStore(out)
    store.write_scenario(spec.source)
    sidecar = BaselineSidecar(out)
    known_baselines, baselines_by_trace = sidecar.load_all()
    known_keys = set(known_baselines)
    pending, skipped = missing_points(spec, store)
    total = skipped + len(pending)
    selected = pending if limit is None else pending[:limit]
    groups = _group_tasks(selected, kernel)
    tasks = _shard_tasks(groups, jobs)
    if attach_baselines is None:
        attach_baselines = jobs > 1
    if baselines_by_trace and attach_baselines:
        # Each task ships only its own trace's sidecar entries.
        tasks = [
            task._replace(baselines=entries) if (
                entries := baselines_by_trace.get(task.trace_key()))
            else task
            for task in tasks
        ]
    return SweepPlan(store=store, sidecar=sidecar,
                     known_baselines=known_baselines,
                     known_keys=known_keys, total=total, skipped=skipped,
                     selected=len(selected), groups=len(groups),
                     tasks=tasks)


def run_sweep(spec: ScenarioSpec, out: Union[str, Path], jobs: int = 1,
              limit: Optional[int] = None, kernel: Optional[str] = None,
              log: Optional[Callable[[str], None]] = None,
              should_stop: Optional[Callable[[], bool]] = None,
              max_retries: int = DEFAULT_MAX_RETRIES) -> SweepRunSummary:
    """Run (or resume) ``spec``, persisting results under ``out``.

    ``jobs`` fans tasks out over the persistent worker pool, sharding
    wide trace groups so the pool stays saturated (records are
    identical for any value); ``limit`` caps the number of *new* points
    this invocation computes — the standard way to chunk a long sweep
    or to exercise resume in tests; ``kernel`` forces the simulation
    kernel (default: ``REPRO_SIM_KERNEL`` or the fast path — recorded
    metrics are bit-identical either way; records differ only in their
    kernel provenance field).  ``log`` receives one progress line per
    completed task (default: stderr).

    ``should_stop`` is the cooperative-stop hook (the sweep service's
    graceful shutdown): polled between tasks, never mid-walk.  When it
    returns True the in-flight task finishes and is checkpointed to the
    store, queued tasks are cancelled, and the summary comes back with
    ``remaining > 0`` — the sweep resumes later exactly like one
    interrupted by ``--limit`` or a kill, recomputing nothing.

    Failure model (DESIGN.md "Failure model"): a task that fails — its
    worker died, or it raised — is retried up to ``max_retries`` times
    (fresh task generation, same lanes).  A task that fails every
    attempt is *quarantined*: one ``failed`` record per lane is
    appended to the store (deterministic payload — attempt counts, the
    constant worker-died text), the sweep keeps going, and the summary
    reports ``failed`` / ``quarantined`` with ``degraded()`` true.
    Quarantined points do not count as done on resume, so a later rerun
    retries exactly that set and successes supersede by newest-wins.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if limit is not None and limit < 0:
        raise ValueError("limit cannot be negative")
    if max_retries < 0:
        raise ValueError("max_retries cannot be negative")
    emit = log if log is not None else (
        lambda line: print(line, file=sys.stderr))

    # prepare_sweep resolves the kernel in the parent (failing fast on a
    # bad selector): tasks must carry the concrete kernel name, never a
    # None a worker would resolve against its own environment.
    plan = prepare_sweep(spec, out, jobs=jobs, limit=limit, kernel=kernel)
    store = plan.store
    sidecar = plan.sidecar
    known_keys = plan.known_keys
    total, skipped = plan.total, plan.skipped
    tasks = plan.tasks
    if plan.known_baselines and jobs == 1:
        seed_baseline_memo(plan.known_baselines)  # serial: this process walks

    emit(plan.describe(spec.name, jobs))
    computed = 0
    failed = 0
    quarantined: List[str] = []
    started = time.monotonic()  # reprolint: disable=RL002 - progress timing; stderr only, never recorded
    queue = tasks
    stopped = False
    try:
        while queue and not stopped:
            retry: List[_GroupTask] = []
            results = parallel_imap(_run_group, queue, jobs=jobs,
                                    task_errors="yield")
            if should_stop is not None and should_stop():
                results.close()  # nothing dispatched yet; compute nothing
                break
            for finished, (index, outcome) in enumerate(results, start=1):
                task = queue[index]
                if isinstance(outcome, TaskFailure):
                    if task.attempt < max_retries:
                        retry.append(task._replace(
                            attempt=task.attempt + 1))
                        emit(f"  {task.group_name()} failed "
                             f"({outcome.kind}); retry "
                             f"{task.attempt + 1} of {max_retries} "
                             "queued")
                    else:
                        records = _failed_records(task, outcome,
                                                  task.attempt + 1)
                        store.append_all(records)
                        failed += len(records)
                        name = task.group_name()
                        if name not in quarantined:
                            quarantined.append(name)
                        emit(f"  quarantined {name} after "
                             f"{task.attempt + 1} attempts: "
                             f"{outcome.error}")
                else:
                    records, baselines = outcome
                    store.append_all(records)
                    sidecar.append_missing(baselines, known_keys,
                                           task.trace_key())
                    computed += len(records)
                    elapsed = time.monotonic() - started  # reprolint: disable=RL002 - progress timing; stderr only, never recorded
                    emit(f"  [{finished}/{len(queue)}] {task.workload} "
                         f"core {task.core} seed {task.seed}: "
                         f"{len(records)} points "
                         f"({elapsed:.1f}s elapsed)")
                if should_stop is not None and should_stop() and (
                        finished < len(queue) or retry):
                    # Cooperative stop: everything completed so far is
                    # in the store; closing the iterator cancels the
                    # queued pool tasks (parallel_imap's early-close
                    # contract).  Retries are abandoned too — on resume
                    # their points are still missing, not quarantined.
                    results.close()
                    stopped = True
                    emit(f"  stop requested; checkpointed after "
                         f"{finished} of {len(queue)} tasks")
                    break
            if not stopped:
                queue = retry
    except BaseException:
        # The persistent pool has no per-call context manager to cancel
        # the queued tasks; don't leave abandoned simulations burning
        # CPU behind an exception (or a Ctrl-C).
        if jobs > 1:
            shutdown_shared_pool()
        raise
    return SweepRunSummary(total=total, skipped=skipped, computed=computed,
                           remaining=total - skipped - computed - failed,
                           failed=failed, quarantined=tuple(quarantined))
