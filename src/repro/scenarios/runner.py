"""The sweep runner: expand a scenario, simulate what's missing, resume.

Execution strategy, in order of the wins it banks:

1. **Resume before compute.**  The expanded points are checked against
   the output directory's :class:`~repro.scenarios.results.ResultsStore`
   first; every point that already has a record under the current
   trace-generator version is skipped entirely.  An interrupted sweep
   rerun with the same arguments therefore finishes the remainder
   instead of starting over, and a finished sweep is a no-op.
2. **Batch lanes per trace.**  Missing points that share a trace and
   warmup window — (workload, instructions, seed, core, warmup) — are
   simulated as lanes of one single-pass multi-prefetcher walk
   (:func:`repro.sim.engine.run_multi_prefetch_simulation`), each lane
   carrying its own cache geometry, so a 12-engine-variant sweep costs
   one trace walk, not twelve.
3. **Fan out across traces.**  Independent trace groups are distributed
   over worker processes via
   :func:`repro.experiments.parallel.parallel_imap`; each group's
   records are appended to the store the moment the group completes, so
   a kill loses at most the in-flight groups.

Per-point metrics recorded (units): ``baseline_misses`` and
``remaining_misses`` are correct-path demand-miss *counts* in the
post-warmup measurement window; ``coverage`` is the signed fraction of
baseline misses eliminated (1.0 = all, negative = pollution — not a
percent); ``baseline_mpki``/``remaining_mpki`` are misses per 1000
*retired instructions* (whole-trace instruction count, window-restricted
misses — indicative, as in
:meth:`repro.sim.tracesim.PrefetchSimResult.baseline_mpki`);
``prefetches_issued`` counts issues over the whole trace.  With
``timing: true`` each point also records ``speedup`` — the timing
model's UIPC ratio against a no-prefetch baseline of the same cache
geometry (dimensionless, 1.0 = no change).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (Any, Callable, Dict, List, NamedTuple, Optional, Tuple,
                    Union)

from ..common.config import CacheConfig, SystemConfig
from ..experiments.parallel import parallel_imap
from ..pipeline.tracegen import cached_trace
from ..sim.engine import resolve_kernel, run_multi_prefetch_simulation
from ..sim.timing import run_timing_simulation
from .engines import build_engine
from .results import ResultsStore, current_generator
from .spec import ScenarioSpec, SweepPoint, point_hash


@dataclass(slots=True)
class SweepRunSummary:
    """Outcome of one :func:`run_sweep` invocation (point counts)."""

    total: int        #: points the scenario expands to
    skipped: int      #: points already stored (current generator)
    computed: int     #: points simulated by this invocation
    remaining: int    #: points still missing afterwards (``--limit`` runs)

    def complete(self) -> bool:
        """True when every expanded point now has a stored record."""
        return self.remaining == 0


class _GroupTask(NamedTuple):
    """All missing lanes of one (trace, warmup) group, one walk's worth."""

    workload: str
    instructions: int
    seed: int
    core: int
    warmup: float
    kernel: Optional[str]
    #: (point hash, point) per lane, in spec expansion order.
    lanes: Tuple[Tuple[str, SweepPoint], ...]


def _cache_config(point: SweepPoint) -> CacheConfig:
    return CacheConfig(capacity_bytes=point.capacity_bytes,
                       associativity=point.associativity,
                       block_bytes=point.block_bytes,
                       replacement=point.replacement)


def _run_group(task: _GroupTask) -> List[Dict[str, Any]]:
    """Simulate one trace group; returns one record per lane.

    Runs inside a worker process under ``--jobs N``; everything it
    touches is deterministic in the task alone (trace generation is
    seeded, random replacement uses per-set ``Random(0)``), so records
    are identical whichever worker runs them.
    """
    bundle = cached_trace(task.workload, task.instructions, task.seed,
                          task.core).bundle
    engines = [build_engine(point.engine, dict(point.params),
                            point.block_bytes)
               for _, point in task.lanes]
    configs = [_cache_config(point) for _, point in task.lanes]
    sims = run_multi_prefetch_simulation(
        bundle, engines, cache_configs=configs,
        warmup_fraction=task.warmup, kernel=task.kernel)

    timing_baselines: Dict[CacheConfig, float] = {}
    generator = current_generator()
    kernel = resolve_kernel(task.kernel)
    records: List[Dict[str, Any]] = []
    for (digest, point), config, sim in zip(task.lanes, configs, sims):
        metrics: Dict[str, Any] = {
            "baseline_misses": sim.baseline_misses,
            "remaining_misses": sim.remaining_misses,
            "coverage": sim.coverage(),
            "prefetches_issued": sim.prefetches_issued,
            "baseline_mpki": sim.baseline_mpki(),
            "remaining_mpki": (
                1000.0 * sim.remaining_misses / sim.instructions
                if sim.instructions else 0.0),
        }
        if point.timing:
            system = replace(SystemConfig(), l1i=config)
            base_uipc = timing_baselines.get(config)
            if base_uipc is None:
                base_uipc = run_timing_simulation(
                    bundle, None, system, task.warmup,
                    kernel=task.kernel).uipc()
                timing_baselines[config] = base_uipc
            # The coverage walk mutated this lane's engine; the timing
            # model needs a fresh one, exactly as the figure runners do.
            timed = run_timing_simulation(
                bundle, build_engine(point.engine, dict(point.params),
                                     point.block_bytes),
                system, task.warmup, kernel=task.kernel)
            metrics["uipc"] = timed.uipc()
            metrics["speedup"] = (timed.uipc() / base_uipc
                                  if base_uipc else 0.0)
        records.append({
            "hash": digest,
            "label": point.label,
            "generator": generator,
            "kernel": kernel,
            "point": point.identity(),
            "metrics": metrics,
        })
    return records


def missing_points(spec: ScenarioSpec, store: ResultsStore
                   ) -> Tuple[List[Tuple[str, SweepPoint]], int]:
    """(points without a current-generator record, count already done)."""
    done = set(store.load_current())
    pending: List[Tuple[str, SweepPoint]] = []
    skipped = 0
    for point in spec.points():
        digest = point_hash(point)
        if digest in done:
            skipped += 1
        else:
            pending.append((digest, point))
    return pending, skipped


def _group_tasks(pending: List[Tuple[str, SweepPoint]],
                 kernel: Optional[str]) -> List[_GroupTask]:
    """Group pending points into one task per (trace, warmup) walk,
    preserving first-seen group order and in-group lane order."""
    groups: Dict[Tuple[str, int, int, int, float],
                 List[Tuple[str, SweepPoint]]] = {}
    for digest, point in pending:
        key = (point.workload, point.instructions, point.seed, point.core,
               point.warmup)
        groups.setdefault(key, []).append((digest, point))
    return [
        _GroupTask(workload=key[0], instructions=key[1], seed=key[2],
                   core=key[3], warmup=key[4], kernel=kernel,
                   lanes=tuple(lanes))
        for key, lanes in groups.items()
    ]


def run_sweep(spec: ScenarioSpec, out: Union[str, Path], jobs: int = 1,
              limit: Optional[int] = None, kernel: Optional[str] = None,
              log: Optional[Callable[[str], None]] = None
              ) -> SweepRunSummary:
    """Run (or resume) ``spec``, persisting results under ``out``.

    ``jobs`` fans trace groups out over worker processes (records are
    identical for any value); ``limit`` caps the number of *new* points
    this invocation computes — the standard way to chunk a long sweep
    or to exercise resume in tests; ``kernel`` forces the simulation
    kernel (default: ``REPRO_SIM_KERNEL`` or the fast path — recorded
    metrics are bit-identical either way; records differ only in their
    kernel provenance field).  ``log`` receives one progress line per
    completed trace group (default: stderr).
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if limit is not None and limit < 0:
        raise ValueError("limit cannot be negative")
    resolve_kernel(kernel)  # fail fast on a bad selector
    emit = log if log is not None else (
        lambda line: print(line, file=sys.stderr))

    store = ResultsStore(out)
    store.write_scenario(spec.source)
    pending, skipped = missing_points(spec, store)
    total = skipped + len(pending)
    selected = pending if limit is None else pending[:limit]
    tasks = _group_tasks(selected, kernel)

    emit(f"sweep {spec.name!r}: {total} points "
         f"({skipped} stored, {len(selected)} to run in {len(tasks)} "
         f"trace groups, jobs={jobs})")
    computed = 0
    started = time.time()
    for finished, (index, records) in enumerate(
            parallel_imap(_run_group, tasks, jobs=jobs), start=1):
        store.append_all(records)
        computed += len(records)
        task = tasks[index]
        emit(f"  [{finished}/{len(tasks)}] {task.workload} core "
             f"{task.core} seed {task.seed}: {len(records)} points "
             f"({time.time() - started:.1f}s elapsed)")
    return SweepRunSummary(total=total, skipped=skipped, computed=computed,
                           remaining=len(pending) - len(selected))
