"""Declarative scenario sweeps: describe a study as data, not code.

The scenario subsystem turns a YAML/JSON spec — axes over workloads,
trace lengths, seeds, cache geometry, replacement policy, engines and
their parameter grids — into an executed, resumable sweep:

* :mod:`repro.scenarios.spec` — the spec format, validation (errors
  name the bad key), product/zip expansion into :class:`SweepPoint`
  values, and the stable content hash each point is keyed by;
* :mod:`repro.scenarios.engines` — per-engine parameter validation and
  construction;
* :mod:`repro.scenarios.results` — the append-only JSONL results store
  that makes interrupted sweeps resume instead of recompute;
* :mod:`repro.scenarios.runner` — expansion → batched single-pass
  multi-prefetcher walks (one walk per trace) → process fan-out, with
  per-group checkpointing;
* :mod:`repro.scenarios.report` — status, markdown and CSV summaries;
* :mod:`repro.scenarios.verify` — the offline integrity checker behind
  ``repro sweep verify`` (fsck + ``--repair``).

Checked-in scenarios live in ``examples/scenarios/``; the CLI surface
is ``repro sweep run|status|report``.  DESIGN.md ("Scenario sweeps")
documents the schema, the point-hash/resume semantics, and the rule
that new axes must round-trip through the spec-validation tests.
"""

from .report import (coverage_matrix, format_csv, format_markdown,
                     format_status, status_summary, summarize)
from .results import BaselineSidecar, ResultsStore
from .runner import SweepRunSummary, run_sweep
from .spec import (ScenarioSpec, SpecError, SweepPoint, load_spec,
                   parse_spec, point_hash)
from .verify import VerifyFinding, VerifyReport, format_report, verify_store

__all__ = [
    "BaselineSidecar",
    "ResultsStore",
    "ScenarioSpec",
    "SpecError",
    "SweepPoint",
    "SweepRunSummary",
    "VerifyFinding",
    "VerifyReport",
    "coverage_matrix",
    "format_csv",
    "format_markdown",
    "format_report",
    "format_status",
    "load_spec",
    "parse_spec",
    "point_hash",
    "run_sweep",
    "status_summary",
    "summarize",
    "verify_store",
]
