"""Summaries of a sweep's results store: status, markdown, CSV.

Aggregation model: a scenario's points form a grid of *rows* × *engine
variants* × *cores*.  The row key is every identity axis that actually
varies across the scenario — workload always, plus e.g. seed for a
seed-sensitivity study or cache geometry for a geometry sweep — except
the core index, which is averaged over (arithmetic mean across cores,
matching the hand-written experiment sweeps in
:mod:`repro.experiments.ablations`).  Engine-variant labels become the
report columns.

Units in the emitted tables: coverage cells are *percent* (the stored
``coverage`` metric is a signed fraction; it is multiplied by 100 only
at formatting time), misses/1K-instr cells are counts per 1000 retired
instructions, speedup cells are dimensionless UIPC ratios vs the
no-prefetch baseline (1.000 = no change).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..experiments.common import mean
from .results import ResultsStore
from .spec import ScenarioSpec, point_hash

#: Identity fields that can become row-key axes, in display order, as
#: (column header, value extractor) pairs.  ``core`` is deliberately
#: absent — cores are aggregated, never rows.
_ROW_AXES: Tuple[Tuple[str, Any], ...] = (
    ("workload", lambda point: point.workload),
    ("instructions", lambda point: point.instructions),
    ("seed", lambda point: point.seed),
    ("warmup", lambda point: point.warmup),
    ("cache-kb", lambda point: point.capacity_bytes // 1024),
    ("assoc", lambda point: point.associativity),
    ("line", lambda point: point.block_bytes),
    ("replacement", lambda point: point.replacement),
)


@dataclass(slots=True)
class Cell:
    """One (row, engine-variant) aggregate, averaged over cores.

    ``coverage`` is a signed fraction (not a percent);
    ``remaining_mpki``/``baseline_mpki`` are misses per 1000 retired
    instructions; ``speedup`` is a UIPC ratio or None when the scenario
    did not run the timing model; ``points`` counts the per-core records
    that contributed (fewer than the scenario's core count means the
    sweep is incomplete for this cell).
    """

    coverage: float
    remaining_mpki: float
    baseline_mpki: float
    speedup: Optional[float]
    points: int


@dataclass(slots=True)
class SweepSummary:
    """The aggregated grid plus completeness accounting."""

    name: str
    row_fields: Tuple[str, ...]
    labels: List[str]
    #: Ordered rows: (row-key values aligned with ``row_fields``,
    #: {label: Cell or None for not-yet-computed}).
    rows: List[Tuple[Tuple[Any, ...], Dict[str, Optional[Cell]]]]
    total: int      #: points the scenario expands to
    computed: int   #: points with a current-generator record
    has_timing: bool


def summarize(spec: ScenarioSpec, store: ResultsStore) -> SweepSummary:
    """Aggregate ``store``'s current-generator records against ``spec``.

    Records whose hash no spec point produces (leftovers from an edited
    scenario sharing the output directory) are ignored; missing cells
    come back as None so formatters can render them as gaps.
    """
    points = spec.points()
    records = store.load_current()

    varying = [
        (field, extract) for field, extract in _ROW_AXES
        if field == "workload"
        or len({extract(point) for point in points}) > 1
    ]
    row_fields = tuple(field for field, _ in varying)

    # Bucket per (row key, label): [(core, metrics)] sorted later so
    # aggregation is independent of record arrival order.
    buckets: Dict[Tuple[Tuple[Any, ...], str],
                  List[Tuple[int, Dict[str, Any]]]] = {}
    row_order: List[Tuple[Any, ...]] = []
    computed = 0
    for point in points:
        key = tuple(extract(point) for _, extract in varying)
        if key not in row_order:
            row_order.append(key)
        record = records.get(point_hash(point))
        if record is None or "metrics" not in record:
            continue  # missing, or a quarantined ``failed`` record
        computed += 1
        buckets.setdefault((key, point.label), []).append(
            (point.core, record["metrics"]))

    has_timing = any(
        "speedup" in metrics
        for entries in buckets.values() for _, metrics in entries)

    labels = spec.labels()
    rows: List[Tuple[Tuple[Any, ...], Dict[str, Optional[Cell]]]] = []
    for key in row_order:
        cells: Dict[str, Optional[Cell]] = {}
        for label in labels:
            entries = buckets.get((key, label))
            if not entries:
                cells[label] = None
                continue
            entries.sort(key=lambda item: item[0])  # by core
            metrics = [m for _, m in entries]
            speedups = [m["speedup"] for m in metrics if "speedup" in m]
            cells[label] = Cell(
                coverage=mean(m["coverage"] for m in metrics),
                remaining_mpki=mean(m["remaining_mpki"] for m in metrics),
                baseline_mpki=mean(m["baseline_mpki"] for m in metrics),
                speedup=mean(speedups) if speedups else None,
                points=len(metrics),
            )
        rows.append((key, cells))
    return SweepSummary(name=spec.name, row_fields=row_fields,
                        labels=labels, rows=rows, total=len(points),
                        computed=computed, has_timing=has_timing)


def coverage_matrix(spec: ScenarioSpec, store: ResultsStore
                    ) -> Dict[str, Dict[str, float]]:
    """``{workload: {label: mean coverage fraction}}`` for scenarios
    whose only varying row axis is the workload — the shape the
    hand-written ablation sweeps report, used by the equivalence tests.

    Raises ValueError when other axes vary (the flat matrix would be
    ambiguous) or when any cell is missing.
    """
    summary = summarize(spec, store)
    if summary.row_fields != ("workload",):
        raise ValueError("coverage_matrix needs a workload-only sweep; "
                         f"this one also varies {summary.row_fields[1:]}")
    matrix: Dict[str, Dict[str, float]] = {}
    for (workload,), cells in summary.rows:
        row: Dict[str, float] = {}
        for label in summary.labels:
            cell = cells[label]
            if cell is None or cell.points < spec.cores:
                raise ValueError(f"sweep incomplete: "
                                 f"{cell.points if cell else 0} of "
                                 f"{spec.cores} core records for "
                                 f"{label!r} on {workload!r}")
            row[label] = cell.coverage
        matrix[workload] = row
    return matrix


# ---------------------------------------------------------------------------
# formatting


def _row_title(fields: Sequence[str], key: Sequence[Any]) -> str:
    parts = [str(key[0])]
    parts.extend(f"{field}={value}"
                 for field, value in zip(fields[1:], key[1:]))
    return " ".join(parts)


def _metric_table(summary: SweepSummary, title: str, render) -> str:
    """One markdown table over all rows with ``render(cell) -> str``."""
    out = io.StringIO()
    out.write(f"### {title}\n\n")
    header = ["scenario point"] + summary.labels
    out.write("| " + " | ".join(header) + " |\n")
    out.write("|" + "|".join("---" for _ in header) + "|\n")
    for key, cells in summary.rows:
        rendered = [
            render(cells[label]) if cells[label] is not None else "—"
            for label in summary.labels
        ]
        out.write("| " + _row_title(summary.row_fields, key) + " | "
                  + " | ".join(rendered) + " |\n")
    return out.getvalue()


def format_markdown(summary: SweepSummary) -> str:
    """The sweep report as markdown tables (see module docstring for
    cell units)."""
    out = io.StringIO()
    out.write(f"## Sweep report: {summary.name}\n\n")
    out.write(f"{summary.computed} of {summary.total} points computed")
    if summary.computed < summary.total:
        out.write(" — **incomplete**, rerun `repro sweep run` to resume")
    out.write("\n\n")
    out.write(_metric_table(
        summary, "Miss coverage (% of baseline misses eliminated)",
        lambda cell: f"{100.0 * cell.coverage:.2f}%"))
    out.write("\n")
    out.write(_metric_table(
        summary, "Remaining misses / 1K instructions (baseline in parens)",
        lambda cell: f"{cell.remaining_mpki:.3f} ({cell.baseline_mpki:.3f})"))
    if summary.has_timing:
        out.write("\n")
        out.write(_metric_table(
            summary, "Speedup vs no-prefetch baseline (UIPC ratio)",
            lambda cell: (f"{cell.speedup:.3f}" if cell.speedup is not None
                          else "—")))
    return out.getvalue()


def format_csv(summary: SweepSummary) -> str:
    """The sweep report as flat CSV, one line per (row, engine variant).

    Columns: the varying axes, the engine label, ``points`` (core
    records aggregated), ``coverage`` (signed fraction, not percent),
    ``remaining_mpki``, ``baseline_mpki``, and ``speedup`` (empty when
    the timing model did not run).
    """
    import csv

    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(list(summary.row_fields)
                    + ["engine", "points", "coverage", "remaining_mpki",
                       "baseline_mpki", "speedup"])
    for key, cells in summary.rows:
        for label in summary.labels:
            cell = cells[label]
            if cell is None:
                writer.writerow(list(key) + [label, 0, "", "", "", ""])
                continue
            writer.writerow(list(key) + [
                label, cell.points, repr(cell.coverage),
                repr(cell.remaining_mpki), repr(cell.baseline_mpki),
                repr(cell.speedup) if cell.speedup is not None else "",
            ])
    return out.getvalue()


def status_summary(spec: ScenarioSpec, store: ResultsStore
                   ) -> Dict[str, Any]:
    """Completion accounting as a flat, JSON-ready dictionary.

    Fields: ``scenario``, ``store`` (directory path), ``points``
    (expanded count), ``cores``, ``engine_variants``, ``computed``,
    ``failed`` (quarantined points — the newest current-generator
    record is a ``failed`` record; retried by the next run), ``missing``
    (no current record at all), ``stale`` (records from an older trace
    generator — recomputed on the next run), ``foreign`` (records no
    current spec point produces), and ``complete``.  This is the
    machine-readable twin of :func:`format_status` (``repro sweep
    status --format json``).
    """
    points = spec.points()
    all_records = store.load()
    current = store.load_current()
    hashes = {point_hash(point) for point in points}
    done = sum(1 for digest in hashes
               if digest in current and "failed" not in current[digest])
    failed = sum(1 for digest in hashes
                 if digest in current and "failed" in current[digest])
    stale = sum(1 for digest, record in all_records.items()
                if digest in hashes and digest not in current)
    foreign = sum(1 for digest in all_records if digest not in hashes)
    return {
        "scenario": spec.name,
        "store": str(store.root),
        "points": len(points),
        "cores": spec.cores,
        "engine_variants": len(spec.variants),
        "computed": done,
        "failed": failed,
        "missing": len(points) - done - failed,
        "stale": stale,
        "foreign": foreign,
        "complete": done == len(points),
    }


def format_status(spec: ScenarioSpec, store: ResultsStore) -> str:
    """Completion accounting for ``repro sweep status``."""
    summary = status_summary(spec, store)
    points = summary["points"]
    done = summary["computed"]
    failed = summary["failed"]
    stale = summary["stale"]
    foreign = summary["foreign"]
    lines = [
        f"scenario   {summary['scenario']}",
        f"store      {summary['store']}",
        f"points     {points} "
        f"({summary['cores']} cores x {summary['engine_variants']} "
        "engine variants)",
        f"computed   {done}",
        f"missing    {summary['missing']}",
    ]
    if failed:
        lines.append(f"failed     {failed} (quarantined; retried by the "
                     "next run)")
    if stale:
        lines.append(f"stale      {stale} (older trace generator; "
                     "will be recomputed)")
    if foreign:
        lines.append(f"foreign    {foreign} (records no current spec "
                     "point produces)")
    if summary["complete"]:
        status = "complete"
    elif failed:
        status = "degraded — rerun to retry quarantined points"
    else:
        status = "incomplete — rerun to resume"
    lines.append("status     " + status)
    return "\n".join(lines)
