"""Engine construction for scenario sweeps.

Maps the CLI/experiment engine names onto parameterized constructors so
a scenario can sweep any knob an engine exposes.  Two jobs:

* :func:`validate_engine_params` — spec-time check that every parameter
  name a scenario mentions is one the engine accepts (misspellings fail
  at parse time, naming the key, not mid-sweep);
* :func:`build_engine` — build a fresh, unshared engine instance for one
  :class:`~repro.scenarios.spec.SweepPoint` (engines carry learned
  state, so every simulation point gets its own).

Parameter defaults match the experiment suite's operating points
(``make_prefetcher``): a scenario that names an engine with no params
simulates exactly what ``repro compare`` runs.  PIF parameters are the
:class:`~repro.common.config.PIFConfig` fields (counts of hardware
entries, not bytes) plus ``unbounded_index``; note the bare defaults
are the *paper's* operating point (``sab_window_regions=7``) — the
half-scale experiment point sets ``sab_count: 4, sab_window_regions: 3``
explicitly, as the checked-in scenarios do.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Any, Iterable, Mapping

from ..common.config import PIFConfig
from ..prefetch import make_prefetcher
from ..prefetch.base import Prefetcher
from ..prefetch.discontinuity import DiscontinuityPrefetcher
from ..prefetch.nextline import NextLinePrefetcher
from ..prefetch.stride import StridePrefetcher
from ..prefetch.tifs import TIFSPrefetcher

#: PIFConfig fields a scenario may sweep (``geometry`` is a structured
#: value, not a scalar knob) plus the constructor's index-bound switch.
_PIF_PARAMS = frozenset(
    f.name for f in fields(PIFConfig) if f.name != "geometry"
) | {"unbounded_index"}

#: Engine name -> parameter names a scenario may set.
ENGINE_PARAMS = {
    "none": frozenset(),
    "next-line": frozenset({"degree"}),
    "next-line-miss": frozenset({"degree"}),
    "stride": frozenset({"degree"}),
    "discontinuity": frozenset({"table_entries", "next_line_degree"}),
    "tifs": frozenset({"history_blocks", "index_entries", "streams",
                       "window_blocks"}),
    "pif": _PIF_PARAMS,
    "pif-no-tlsep": _PIF_PARAMS,
}

#: Engine names scenarios accept, in presentation order.
ENGINE_NAMES = tuple(ENGINE_PARAMS)


def validate_engine_params(engine: str, names: Iterable[str],
                           path: str) -> None:
    """Spec-time validation; raises SpecError naming the bad key."""
    from .spec import SpecError

    allowed = ENGINE_PARAMS.get(engine)
    if allowed is None:
        raise SpecError(f"{path}: unknown engine {engine!r}; choose from "
                        f"{sorted(ENGINE_PARAMS)}")
    for name in names:
        if name not in allowed:
            raise SpecError(
                f"{path}.{name}: engine {engine!r} has no parameter "
                f"{name!r}; allowed: {sorted(allowed) or '(none)'}")


def _build_pif(params: Mapping[str, Any], block_bytes: int,
               separate_trap_levels: bool) -> Prefetcher:
    from ..core.pif import ProactiveInstructionFetch

    params = dict(params)
    unbounded = params.pop("unbounded_index", False)
    config = replace(PIFConfig(), **params) if params else PIFConfig()
    return ProactiveInstructionFetch(
        config, block_bytes=block_bytes,
        separate_trap_levels=separate_trap_levels,
        unbounded_index=bool(unbounded))


def build_engine(engine: str, params: Mapping[str, Any],
                 block_bytes: int) -> Prefetcher:
    """A fresh engine instance for one sweep point.

    ``params`` must already have passed :func:`validate_engine_params`;
    value errors (negative sizes, bad trigger strings) surface as the
    constructors' own ValueErrors.  ``block_bytes`` is the point's cache
    line size — PIF's region decoding depends on it.

    A parameterless entry delegates to
    :func:`repro.prefetch.make_prefetcher`, so a bare engine name in a
    scenario simulates *by construction* the operating point
    ``repro compare`` and the experiments run; only parameterized
    variants go through the explicit constructors below.
    """
    params = dict(params)
    if not params:
        return make_prefetcher(engine, block_bytes=block_bytes)
    if engine == "next-line":
        return NextLinePrefetcher(degree=params.get("degree", 4),
                                  trigger="access")
    if engine == "next-line-miss":
        return NextLinePrefetcher(degree=params.get("degree", 4),
                                  trigger="miss")
    if engine == "stride":
        return StridePrefetcher(**params)
    if engine == "discontinuity":
        return DiscontinuityPrefetcher(**params)
    if engine == "tifs":
        return TIFSPrefetcher(**params)
    if engine == "pif":
        return _build_pif(params, block_bytes, separate_trap_levels=True)
    if engine == "pif-no-tlsep":
        return _build_pif(params, block_bytes, separate_trap_levels=False)
    raise ValueError(f"unknown engine {engine!r}")
