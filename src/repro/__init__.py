"""repro: a reproduction of "Proactive Instruction Fetch" (MICRO 2011).

The package implements the PIF instruction prefetcher, every substrate
it depends on (synthetic server workloads, a fetch/retire pipeline
model, branch predictors, an L1-I cache model), the baselines it is
compared against (next-line, TIFS, discontinuity, stride), and the full
evaluation harness regenerating each figure of the paper.

Quick start::

    from repro import generate_trace, ProactiveInstructionFetch
    from repro.sim import run_prefetch_simulation

    trace = generate_trace("oltp-db2", instructions=400_000, seed=1)
    result = run_prefetch_simulation(trace.bundle,
                                     ProactiveInstructionFetch())
    print(f"miss coverage: {result.coverage():.1%}")
"""

from .common.config import (
    BranchPredictorConfig,
    CacheConfig,
    MemoryConfig,
    PIFConfig,
    PipelineConfig,
    SystemConfig,
)
from .core.pif import AccessOrderPIF, ProactiveInstructionFetch
from .pipeline.tracegen import GeneratedTrace, cached_trace, generate_trace
from .prefetch import make_prefetcher
from .trace.bundle import TraceBundle
from .workloads.spec import PAPER_WORKLOADS, WORKLOAD_NAMES, get_spec

__version__ = "1.1.0"

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "MemoryConfig",
    "PIFConfig",
    "PipelineConfig",
    "SystemConfig",
    "AccessOrderPIF",
    "ProactiveInstructionFetch",
    "GeneratedTrace",
    "cached_trace",
    "generate_trace",
    "make_prefetcher",
    "TraceBundle",
    "PAPER_WORKLOADS",
    "WORKLOAD_NAMES",
    "get_spec",
    "__version__",
]
