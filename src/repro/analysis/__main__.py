"""``python -m repro.analysis`` — reprolint without the repro CLI."""

from __future__ import annotations

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
