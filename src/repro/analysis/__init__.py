"""reprolint: the repo's AST-based determinism & hot-path checker.

Run as ``repro lint`` or ``python -m repro.analysis``.  See
DESIGN.md, "Static analysis & determinism contract", for the rule
table and the suppression/baseline workflow; ``repro lint
--list-rules`` prints the live registry.

Rule modules are imported here for their registration side effect —
a new rule module must be added to this import list to go live.
"""

from __future__ import annotations

from . import rules_determinism, rules_quality  # noqa: F401  (registry)
from .baseline import BASELINE_NAME, BaselineError, load_baseline, \
    write_baseline
from .core import Finding, Rule, all_rules, register, rule_codes
from .runner import LintReport, build_parser, check_source, lint_paths, \
    main

__all__ = [
    "BASELINE_NAME",
    "BaselineError",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "build_parser",
    "check_source",
    "lint_paths",
    "load_baseline",
    "main",
    "register",
    "rule_codes",
    "write_baseline",
]
