"""reprolint driver: file collection, rule execution, baseline, CLI.

``repro lint`` / ``python -m repro.analysis`` run the registered rules
over a file tree and gate on the result:

* exit 0 — clean (every finding suppressed or baselined, no unused
  baseline entries);
* exit 1 — at least one new finding, or a baseline entry whose
  finding no longer exists;
* exit 2 — usage error (bad path, unreadable baseline).

The per-file pipeline (:func:`check_source`) is pure — it takes source
text plus the path to report — which is what the fixture tests drive
directly with synthetic paths like ``src/repro/sim/fake.py``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import BASELINE_NAME, BaselineError, load_baseline, \
    write_baseline
from .core import META_CODE, PARSE_ERROR_CODE, FileContext, Finding, \
    all_rules, assign_occurrences, build_function_spans, rule_codes
from .suppressions import parse_directives

#: Directories linted when no paths are given (those that exist).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv",
                        "node_modules", "build", "dist"})


def check_source(source: str, rel_path: str) -> List[Finding]:
    """Lint one file's text; returns occurrence-numbered findings.

    ``rel_path`` is the POSIX path reported in findings and matched by
    rule scopes — for a real run it is relative to the lint root.
    Suppressions are already applied; unused suppressions, unattached
    ``hot`` markers, and malformed directives come back as
    :data:`~repro.analysis.core.META_CODE` findings, and files that do
    not parse as one :data:`~repro.analysis.core.PARSE_ERROR_CODE`
    finding.
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        return [Finding(code=PARSE_ERROR_CODE, path=rel_path, line=line,
                        column=0, message=f"file does not parse: {error}",
                        context="")]
    directives = parse_directives(source)
    spans, attached_hot = build_function_spans(tree, directives.hot_lines)
    lines = [""] + source.splitlines()
    ctx = FileContext(path=rel_path, source=source, tree=tree,
                      lines=lines, suppressions=directives.suppressions,
                      suppression_sites=directives.sites,
                      hot_marker_lines=directives.hot_lines,
                      function_spans=spans)

    raw: List[Finding] = []
    for rule in all_rules():
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))

    kept = [finding for finding in raw
            if finding.code not in
            directives.suppressions.get(finding.line, frozenset())]

    kept.extend(_meta_findings(ctx, raw, directives, attached_hot))
    return assign_occurrences(kept)


def _meta_findings(ctx, raw, directives, attached_hot) -> List[Finding]:
    """RL000 hygiene findings: stale or malformed directives."""
    known = rule_codes()
    meta: List[Finding] = []
    for site, codes in sorted(directives.sites.items()):
        covered = directives.site_coverage.get(site, (site,))
        for code in sorted(codes):
            if code not in known:
                meta.append(_meta(ctx, site,
                                  f"suppression names unknown rule "
                                  f"{code}"))
                continue
            if not any(finding.code == code and finding.line in covered
                       for finding in raw):
                meta.append(_meta(ctx, site,
                                  f"unused suppression: {code} does not "
                                  "fire here"))
    for line in sorted(set(directives.hot_lines) - set(attached_hot)):
        meta.append(_meta(ctx, line,
                          "hot marker attaches to no function "
                          "definition"))
    for error in directives.errors:
        meta.append(_meta(ctx, error.line,
                          f"unrecognized reprolint directive: "
                          f"{error.body!r}"))
    return meta


def _meta(ctx: FileContext, line: int, message: str) -> Finding:
    return Finding(code=META_CODE, path=ctx.path, line=line, column=0,
                   message=message, context=ctx.line_text(line).strip())


# ----------------------------------------------------------------------
# File collection


def collect_files(paths: Sequence[Path], root: Path) -> List[Path]:
    """Python files under ``paths``, deterministically ordered.

    Raises FileNotFoundError for a path that does not exist — a typo'd
    path silently linting nothing would defeat the CI gate.
    """
    found: Dict[Path, None] = {}
    for raw in paths:
        path = raw if raw.is_absolute() else root / raw
        if path.is_file():
            if path.suffix == ".py":
                found[path] = None
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.relative_to(path).parts
                if any(part in _SKIP_DIRS or part.startswith(".")
                       for part in parts[:-1]):
                    continue
                found[candidate] = None
        else:
            raise FileNotFoundError(str(raw))
    return sorted(found, key=lambda p: _rel_posix(p, root))


def _rel_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# ----------------------------------------------------------------------
# Lint run + report


@dataclass
class LintReport:
    """Outcome of one lint run over a file set."""

    root: Path
    files_scanned: int = 0
    #: Every post-suppression finding, digest-ordered deterministically.
    findings: List[Finding] = field(default_factory=list)
    #: Digests matched by the baseline.
    baselined: frozenset = frozenset()
    #: Baseline entries whose finding no longer exists.
    unused_baseline: List[Dict[str, object]] = field(default_factory=list)

    @property
    def new_findings(self) -> List[Finding]:
        return [finding for finding in self.findings
                if finding.digest() not in self.baselined]

    @property
    def clean(self) -> bool:
        return not self.new_findings and not self.unused_baseline

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def lint_paths(paths: Sequence[Path], root: Path,
               baseline: Optional[Dict[str, Dict[str, object]]] = None,
               ) -> LintReport:
    """Run every rule over ``paths`` and reconcile with ``baseline``."""
    report = LintReport(root=root)
    all_findings: List[Finding] = []
    for path in collect_files(paths, root):
        rel = _rel_posix(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            all_findings.append(Finding(
                code=PARSE_ERROR_CODE, path=rel, line=1, column=0,
                message=f"file is not readable UTF-8: {error}"))
            report.files_scanned += 1
            continue
        all_findings.extend(check_source(source, rel))
        report.files_scanned += 1
    report.findings = sorted(all_findings, key=Finding.sort_key)
    if baseline:
        present = {finding.digest() for finding in report.findings}
        report.baselined = frozenset(baseline) & present
        report.unused_baseline = [
            entry for digest, entry in sorted(baseline.items())
            if digest not in present]
    return report


# ----------------------------------------------------------------------
# Output formats


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    baselined = 0
    for finding in report.findings:
        if finding.digest() in report.baselined:
            baselined += 1
            continue
        lines.append(f"{finding.path}:{finding.line}:"
                     f"{finding.column + 1}: {finding.code} "
                     f"{finding.message}")
    for entry in report.unused_baseline:
        lines.append(f"{entry.get('file', '?')}: baseline entry "
                     f"{entry.get('digest')} ({entry.get('code')}) no "
                     "longer matches any finding; remove it")
    new = len(report.findings) - baselined
    if report.clean:
        lines.append(f"reprolint: clean ({report.files_scanned} files, "
                     f"{baselined} baselined findings)")
    else:
        lines.append(f"reprolint: {new} finding(s) "
                     f"({baselined} baselined, "
                     f"{len(report.unused_baseline)} unused baseline "
                     f"entries, {report.files_scanned} files)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    findings = []
    for finding in report.findings:
        digest = finding.digest()
        findings.append({
            "code": finding.code,
            "file": finding.path,
            "line": finding.line,
            "column": finding.column + 1,
            "message": finding.message,
            "context": finding.context,
            "digest": digest,
            "baselined": digest in report.baselined,
        })
    payload = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "findings": findings,
        "unused_baseline": report.unused_baseline,
        "summary": {
            "total": len(findings),
            "new": len(report.new_findings),
            "baselined": len(report.baselined),
            "unused_baseline": len(report.unused_baseline),
        },
        "clean": report.clean,
    }
    return json.dumps(payload, indent=2)


# ----------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & hot-path contract checker")
    configure_parser(parser)
    return parser


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments (shared with ``repro lint``)."""
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             + " ".join(DEFAULT_PATHS) + ")")
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="directory findings are reported relative "
                             "to (default: cwd)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: "
                             f"<root>/{BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline entirely")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")


def list_rules_text() -> str:
    lines = ["reprolint rules:"]
    for rule in all_rules():
        lines.append(f"  {rule.code}  {rule.name:<28} {rule.summary}")
    lines.append(f"  {META_CODE}  directive-hygiene            "
                 "unused suppression / hot marker, malformed directive")
    lines.append(f"  {PARSE_ERROR_CODE}  parse-error                  "
                 "file does not parse or decode")
    return "\n".join(lines)


def run(args: argparse.Namespace, out=None, err=None) -> int:
    """Execute a parsed ``repro lint`` invocation.

    ``out``/``err`` default to the *current* sys streams at call time,
    so redirection (and pytest capture) keeps working.
    """
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    if args.list_rules:
        print(list_rules_text(), file=out)
        return 0
    root = args.root
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(name) for name in DEFAULT_PATHS
                 if (root / name).is_dir()]
    baseline_path = args.baseline if args.baseline is not None \
        else root / BASELINE_NAME
    try:
        baseline = {} if args.no_baseline \
            else load_baseline(baseline_path)
    except BaselineError as error:
        print(f"repro lint: {error}", file=err)
        return 2
    try:
        report = lint_paths(paths, root, baseline=baseline)
    except FileNotFoundError as error:
        print(f"repro lint: no such path: {error}", file=err)
        return 2
    if args.update_baseline:
        count = write_baseline(baseline_path, report.findings)
        print(f"repro lint: wrote {count} entries to {baseline_path}",
              file=out)
        return 0
    if args.output_format == "json":
        print(render_json(report), file=out)
    else:
        print(render_text(report), file=out)
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)
