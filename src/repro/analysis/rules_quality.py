"""Code-quality and hot-path rules: RL005-RL009.

RL005/RL007 are correctness hygiene (shared mutable defaults, contract
errors swallowed on the floor); RL006/RL008 protect the measured
kernels — allocation churn inside ``# reprolint: hot`` loops, and
float drift on counters the paper defines as integral event counts;
RL009 protects the failure model — broad ``except`` in the
fault-injection/retry paths could swallow an injected fault and fake
chaos-test coverage.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .core import FileContext, Finding, Rule, dotted_name, register

#: Constructors whose zero-or-more-arg call produces a fresh mutable
#: container (used by both RL005 and RL006).
_CONTAINER_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "deque", "defaultdict", "OrderedDict", "Counter",
    "collections.deque", "collections.defaultdict",
    "collections.OrderedDict", "collections.Counter",
})


@register
class MutableDefaultRule(Rule):
    """RL005: mutable default argument values.

    The default is evaluated once at ``def`` time and shared across
    every call — state leaks between invocations (and between pool
    tasks reusing a worker).  Use ``None`` and materialize inside the
    body.
    """

    code = "RL005"
    name = "mutable-default-argument"
    summary = "mutable default argument (shared across calls)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults
                            if d is not None)
            for default in defaults:
                if _is_mutable_literal(default):
                    yield ctx.finding(
                        self.code, default,
                        "mutable default is shared across calls; default "
                        "to None and build a fresh one in the body")


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _CONTAINER_CALLS
    return False


@register
class HotLoopAllocationRule(Rule):
    """RL006: fresh containers allocated inside hot-marked loops.

    Only functions carrying a ``# reprolint: hot`` marker are checked —
    the fused lane walkers and timing/baseline replay kernels whose
    per-access cost the BENCH files measure.  Inside their loops, any
    list/set/dict display, comprehension, generator expression, or
    container constructor call is an allocation per iteration (or per
    element) and gets flagged; hoist it out of the loop or suppress
    with a rationale when the allocation is intentionally amortized.
    """

    code = "RL006"
    name = "hot-loop-allocation"
    summary = "container allocation inside a loop of a '# reprolint: hot' fn"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(span.hot for span in ctx.function_spans):
            return
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, hot=False, in_loop=False, out=findings)
        yield from findings

    def _visit(self, ctx: FileContext, node: ast.AST, hot: bool,
               in_loop: bool, out: List[Finding]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            span_hot = hot or any(
                span.hot and span.start == node.lineno
                for span in ctx.function_spans)
            for default in node.args.defaults:
                self._visit(ctx, default, hot, in_loop, out)
            for child in node.body:
                self._visit(ctx, child, span_hot, False, out)
            return
        if isinstance(node, ast.Lambda):
            self._visit(ctx, node.body, hot, False, out)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit(ctx, node.iter, hot, in_loop, out)
            for child in node.body:
                self._visit(ctx, child, hot, True, out)
            for child in node.orelse:
                self._visit(ctx, child, hot, in_loop, out)
            return
        if isinstance(node, ast.While):
            # The test re-evaluates every iteration, same as the body.
            self._visit(ctx, node.test, hot, True, out)
            for child in node.body:
                self._visit(ctx, child, hot, True, out)
            for child in node.orelse:
                self._visit(ctx, child, hot, in_loop, out)
            return
        if hot and in_loop and _is_allocation(node):
            out.append(ctx.finding(
                self.code, node,
                "container allocated inside a hot loop; hoist it out or "
                "suppress with a rationale if rebuilds are amortized"))
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, hot, in_loop, out)


def _is_allocation(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _CONTAINER_CALLS
    return False


#: Exception names whose silent swallowing hides contract violations:
#: a trace that stopped parsing, or a scenario spec that stopped
#: validating, must surface or self-heal — never vanish.
_CONTRACT_ERRORS = frozenset({"TraceFormatError", "SpecError"})

#: Calls that count as self-healing inside a contract-error handler
#: (the store deletes the corrupt archive and reports a miss).
_SELF_HEAL_CALLS = frozenset({"unlink", "remove", "rmtree", "heal"})


@register
class SwallowedContractErrorRule(Rule):
    """RL007: ``except TraceFormatError/SpecError`` with no re-raise
    and no self-heal.

    Catching these to log-and-continue turns a hard contract violation
    into silent result corruption.  Handlers must re-raise (possibly
    wrapped) or self-heal (delete the corrupt artifact so the miss path
    regenerates it); anything else needs an explicit suppression
    explaining why the boundary may absorb the error (e.g. the CLI
    converting it to an exit code).
    """

    code = "RL007"
    name = "swallowed-contract-error"
    summary = "TraceFormatError/SpecError caught without re-raise/self-heal"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_contract_errors(node.type)
            if not caught:
                continue
            if _handler_reraises_or_heals(node):
                continue
            yield ctx.finding(
                self.code, node,
                f"{'/'.join(sorted(caught))} swallowed without re-raise "
                "or self-heal; contract violations must surface or "
                "repair the artifact")


def _caught_contract_errors(type_node: ast.AST) -> Tuple[str, ...]:
    names: List[str] = []
    candidates: List[ast.AST] = []
    if isinstance(type_node, ast.Tuple):
        candidates = list(type_node.elts)
    elif type_node is not None:
        candidates = [type_node]
    for candidate in candidates:
        name = dotted_name(candidate)
        if name is not None and name.split(".")[-1] in _CONTRACT_ERRORS:
            names.append(name.split(".")[-1])
    return tuple(names)


def _handler_reraises_or_heals(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None \
                    and name.split(".")[-1] in _SELF_HEAL_CALLS:
                return True
    return False


#: Name components identifying an event counter the paper model keeps
#: integral (misses, prefetch issues, evictions, ...).
_COUNTER_WORDS = frozenset({
    "accesses", "allocations", "count", "counts", "counter", "discarded",
    "drops", "emitted", "evictions", "fills", "hits", "insertions",
    "issued", "lookups", "misses", "prefetches", "recorded", "requests",
    "retired", "triggers",
})


@register
class FloatCounterRule(Rule):
    """RL008: float accumulation on integral event counters.

    The paper's figures are ratios of integer event counts (misses,
    prefetches issued, evictions).  Accumulating them as floats invites
    drift: ``+= 1.0`` a few billion times stops being exact, and two
    hosts summing in different order stop agreeing.  Flags ``+=``/
    ``-=`` with a float literal on names that look like counters, in
    stats-bearing package modules.
    """

    code = "RL008"
    name = "float-counter-accumulation"
    summary = "float += on an integral event counter in a stats path"
    scope = ("sim/", "cache/", "core/", "prefetch/", "trace/",
             "scenarios/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            target_name = _augassign_target_name(node.target)
            if target_name is None or not _looks_like_counter(target_name):
                continue
            if _contains_float_literal(node.value):
                yield ctx.finding(
                    self.code, node,
                    f"'{target_name}' looks like an event counter; "
                    "accumulate it as int (float increments drift and "
                    "break cross-host equality)")


#: Exception names a handler in the failure-model paths may not catch
#: wholesale without a re-raise (or an explicit suppression).
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register
class BroadExceptRetryPathRule(Rule):
    """RL009: broad ``except`` without re-raise in failure-model paths.

    The fault harness proves the stack survives injected failures; a
    ``except Exception`` (or bare ``except``) that does not re-raise,
    sitting in the injection/retry/quarantine machinery itself, can
    absorb the injected fault and make chaos tests pass vacuously.
    Scope: :mod:`repro.faults`, the distributed coordinator/worker
    tier, the pool fan-out, the sweep runner and
    verifier, and the service.  Handlers that re-raise (even
    conditionally) pass; sanctioned last-resort boundaries — the
    quarantine converter, the HTTP 500 catch-all, the job-survival
    wrapper — carry suppressions stating why swallowing is the
    contract there.
    """

    code = "RL009"
    name = "broad-except-in-retry-path"
    summary = "broad except without re-raise in a fault/retry/service path"
    scope = ("faults/", "experiments/parallel.py", "scenarios/runner.py",
             "scenarios/verify.py", "service/", "dist/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _catches_broadly(node.type):
                continue
            if any(isinstance(child, ast.Raise)
                   for child in ast.walk(node)):
                continue
            yield ctx.finding(
                self.code, node,
                "broad except in a failure-model path can swallow an "
                "injected fault; narrow it, re-raise, or suppress with "
                "the boundary's rationale")


def _catches_broadly(type_node: Optional[ast.AST]) -> bool:
    if type_node is None:  # bare except
        return True
    candidates = list(type_node.elts) if isinstance(type_node, ast.Tuple) \
        else [type_node]
    for candidate in candidates:
        name = dotted_name(candidate)
        if name is not None and name.split(".")[-1] in _BROAD_EXCEPTIONS:
            return True
    return False


def _augassign_target_name(target: ast.AST) -> Optional[str]:
    name = None
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    return name


def _looks_like_counter(name: str) -> bool:
    parts = name.lower().split("_")
    return any(part in _COUNTER_WORDS for part in parts)


def _contains_float_literal(value: ast.AST) -> bool:
    return any(isinstance(node, ast.Constant)
               and isinstance(node.value, float)
               for node in ast.walk(value))
