"""Determinism-contract rules: RL001-RL004.

These encode the repo's reproducibility invariants (DESIGN.md, "Static
analysis & determinism contract"): every result must be bit-identical
across serial, parallel, and resumed runs, which forbids ambient
randomness, wall-clock reads, unordered iteration, and environment
divergence anywhere a result value can flow from.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from .core import FileContext, Finding, Rule, dotted_name, register

#: Package-path prefixes of result-producing modules: everything whose
#: output feeds a stored trace, a simulation record, or a report row.
RESULT_SCOPE: Tuple[str, ...] = (
    "sim/", "scenarios/", "trace/", "core/", "cache/", "prefetch/",
    "pipeline/", "workloads/", "branch/",
)

#: ``random``-module functions that draw from (or reseed) the shared
#: global generator.
_GLOBAL_DRAWS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})


@register
class UnseededRandomRule(Rule):
    """RL001: ambient randomness outside the sanctioned RNG module.

    Flags module-level ``random.<fn>()`` draws (they share hidden
    global state across call sites and threads) and zero-argument
    ``random.Random()`` construction (seeded from the OS).  The
    explicitly seeded ``Random(0)`` replacement-policy idiom and
    everything in ``common/rng.py`` — the module whose whole job is
    deriving seeded child generators — are allowed.
    """

    code = "RL001"
    name = "unseeded-random"
    summary = ("module-level random.<fn>() or unseeded Random() outside "
               "common/rng.py")
    exempt = ("repro/common/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        random_aliases = _from_import_aliases(ctx.tree, "random", "Random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name == "random.Random" or name in random_aliases:
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self.code, node,
                        "unseeded Random() draws its seed from the OS; "
                        "pass an explicit seed (e.g. via "
                        "common.rng.make_rng)")
                continue
            if name.startswith("random."):
                tail = name[len("random."):]
                if tail in _GLOBAL_DRAWS:
                    yield ctx.finding(
                        self.code, node,
                        f"random.{tail}() uses the shared global RNG; "
                        "use a seeded Random instance from "
                        "common.rng instead")


def _from_import_aliases(tree: ast.Module, module: str,
                         symbol: str) -> FrozenSet[str]:
    """Local names ``symbol`` is bound to via ``from module import``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name == symbol:
                    aliases.add(alias.asname or alias.name)
    return frozenset(aliases)


#: Callables whose return value is the current wall-clock / process
#: clock — anything here reaching a result path breaks replay equality.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
})


@register
class WallClockRule(Rule):
    """RL002: wall-clock reads inside result-producing modules.

    Scoped to the packages whose outputs land in traces, records, or
    report rows (:data:`RESULT_SCOPE`).  The audited exceptions are
    built in, all in the trace store's garbage collection: the
    scratch-GC cutoff (``trace/store.py::_sweep_scratch``), its
    partial-download sibling (``_sweep_partial``), and ``gc`` itself
    (the fresh-entry grace window shielding just-replicated archives
    from concurrent eviction) use mtime age purely to decide whether a
    file is safe to delete — no result value flows from any of them.
    """

    code = "RL002"
    name = "wall-clock-in-result-path"
    summary = "time/datetime clock reads inside result-producing modules"
    scope = RESULT_SCOPE
    #: (package path, enclosing function) pairs audited as harmless.
    allowed_functions: FrozenSet[Tuple[str, str]] = frozenset({
        ("trace/store.py", "_sweep_scratch"),
        ("trace/store.py", "_sweep_partial"),
        ("trace/store.py", "gc"),
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        package = ctx.package_path or ""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name not in _CLOCK_CALLS:
                continue
            enclosing = ctx.enclosing_functions(node.lineno)
            if enclosing and (package, enclosing[-1].name) \
                    in self.allowed_functions:
                continue
            yield ctx.finding(
                self.code, node,
                f"{name}() read in a result-producing module; results "
                "must not depend on wall-clock (suppress with a "
                "rationale if the value provably never reaches output)")


#: Call sinks whose argument order becomes observable output order.
_ORDER_SINKS = frozenset({"list", "tuple", "enumerate"})


@register
class UnorderedIterationRule(Rule):
    """RL003: iteration order of a ``set`` escaping into results.

    Set iteration order depends on insertion history and hash
    randomization; the moment it feeds a ``for`` loop, a comprehension,
    a ``list()``/``tuple()`` conversion, or a ``join``, the ordering
    leaks into whatever is built from it.  ``sorted(...)`` is the
    blessed way out and is never flagged.  Redundant ``.keys()``
    iteration is additionally flagged in result-producing package
    modules, where an explicit ``sorted(d)`` (or plain ``d``, which at
    least pins insertion order) is required instead.
    """

    code = "RL003"
    name = "unordered-iteration"
    summary = "set (or bare dict.keys) iteration order escaping into output"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_names = _set_valued_names(ctx.tree)
        package = ctx.package_path or ""
        keys_in_scope = any(package.startswith(prefix)
                            for prefix in RESULT_SCOPE)
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.GeneratorExp) \
                    and _order_insensitive_consumer(node, parents):
                continue
            for iter_node in _hazard_iterables(node):
                if _is_set_expression(iter_node, set_names):
                    yield ctx.finding(
                        self.code, iter_node,
                        "iterating a set leaks arbitrary ordering; wrap "
                        "in sorted() before the order can escape")
                elif keys_in_scope and _is_bare_keys_call(iter_node):
                    yield ctx.finding(
                        self.code, iter_node,
                        "iterate the dict directly (insertion order) or "
                        "sorted(d) when order must be canonical, not "
                        ".keys()")


#: Callables that consume a generator without its order becoming
#: observable (aggregations, or re-canonicalizing constructors).
_ORDER_INSENSITIVE = frozenset({
    "all", "any", "frozenset", "len", "max", "min", "set", "sorted",
    "sum", "Counter", "collections.Counter",
})


def _order_insensitive_consumer(node: ast.GeneratorExp,
                                parents: Dict[ast.AST, ast.AST]) -> bool:
    parent = parents.get(node)
    return (isinstance(parent, ast.Call)
            and node in parent.args
            and dotted_name(parent.func) in _ORDER_INSENSITIVE)


def _hazard_iterables(node: ast.AST) -> Iterator[ast.AST]:
    """Expressions whose iteration order ``node`` makes observable."""
    if isinstance(node, ast.For):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.DictComp,
                           ast.GeneratorExp)):
        # SetComp is exempt (set in, set out — no order escapes); the
        # others materialize their iteration order.  Only the
        # outermost iterable matters here: inner generators are their
        # own walk()ed nodes.
        for generator in node.generators:
            yield generator.iter
    elif isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in _ORDER_SINKS and node.args:
            yield node.args[0]
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join" and node.args):
            yield node.args[0]


def _is_set_expression(node: ast.AST,
                       set_names: FrozenSet[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        return False
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expression(node.left, set_names)
                or _is_set_expression(node.right, set_names))
    return False


def _is_bare_keys_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args and not node.keywords)


def _set_valued_names(tree: ast.Module) -> FrozenSet[str]:
    """Names that are only ever assigned set-typed expressions.

    Deliberately coarse (module-wide, no scoping): a name is counted
    only when *every* assignment to it anywhere in the file is a set
    display/comprehension/constructor, so shadowing in another function
    can cause a miss but never a false positive.
    """
    candidates: Dict[str, bool] = {}
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value: Optional[ast.AST] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = None
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            is_set = value is not None and _is_set_expression(
                value, frozenset())
            previous = candidates.get(target.id)
            candidates[target.id] = is_set if previous is None \
                else (previous and is_set)
    return frozenset(name for name, is_set in candidates.items() if is_set)


@register
class EnvReadRule(Rule):
    """RL004: ``os.environ`` touched outside the sanctioned config
    modules.

    An env read inside a pool worker sees the *worker's* environment,
    which matches the parent only because
    :mod:`repro.experiments.parallel` explicitly snapshots and
    re-applies it in the initializer.  Keeping reads confined to
    ``trace/store.py``, ``trace/serialize.py``, and
    ``common/config.py`` keeps that propagation surface auditable.
    Applies to every module inside the ``repro`` package; harnesses
    (tests, benchmarks, examples) configure the environment and are out
    of scope by construction.
    """

    code = "RL004"
    name = "env-read-outside-config"
    summary = "os.environ/os.getenv outside sanctioned config modules"
    scope = ("",)  # every module inside the repro package
    exempt = (
        "repro/trace/store.py",
        "repro/trace/serialize.py",
        "repro/common/config.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) \
                    and dotted_name(node) == "os.environ":
                yield ctx.finding(
                    self.code, node,
                    "os.environ access outside the sanctioned config "
                    "modules; resolve in the parent and pass the value "
                    "down (workers may see a different environment)")
            elif isinstance(node, ast.Call) \
                    and dotted_name(node.func) == "os.getenv":
                yield ctx.finding(
                    self.code, node,
                    "os.getenv outside the sanctioned config modules; "
                    "resolve in the parent and pass the value down")
