"""Comment directives: ``# reprolint: disable=...`` and ``# reprolint: hot``.

Two directives exist, both parsed from real tokenizer output (so
string literals that merely *look* like comments never match):

``# reprolint: disable=RL001[,RL002] [- rationale]``
    Suppresses the listed codes.  Written inline it covers its own
    line; written standalone (nothing but the comment on the line) it
    covers the next line too, for statements with no room left.  A
    free-form rationale after ``-`` is encouraged and ignored by the
    parser.  Suppressions that never fire are themselves reported
    (:data:`~repro.analysis.core.META_CODE`), so stale ones cannot
    accumulate.

``# reprolint: hot``
    Marks the function defined on this line (inline) or the next
    (standalone) as a hot path, opting it into RL006's
    allocation-in-loop check.  A marker that attaches to no function
    is reported as unused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*(?P<body>.*)$")
_DISABLE = re.compile(
    r"disable=(?P<codes>RL\d{3}(?:\s*,\s*RL\d{3})*)\s*(?:-.*)?$")
_HOT = re.compile(r"^hot\s*(?:-.*)?$")


@dataclass(frozen=True)
class DirectiveError:
    """A ``# reprolint:`` comment whose body parses as neither
    ``disable=`` nor ``hot`` — reported rather than silently ignored,
    because a typo'd directive is a suppression that never was."""

    line: int
    body: str


@dataclass
class Directives:
    """Parsed reprolint directives for one file."""

    #: covered line -> codes suppressed there (standalone directives
    #: already expanded to also cover the following line).
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: directive line -> codes written there (for unused tracking).
    sites: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: directive line -> lines its suppression covers.
    site_coverage: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: lines carrying a ``hot`` marker.
    hot_lines: Tuple[int, ...] = ()
    errors: List[DirectiveError] = field(default_factory=list)


def scan_comments(source: str) -> List[Tuple[int, str, bool]]:
    """All comments as (line, text, standalone) triples.

    ``standalone`` is True when the comment is the only thing on its
    physical line.  Tokenization errors are swallowed — the caller has
    already parsed the file with :mod:`ast`, so anything fatal was
    reported there.
    """
    comments: List[Tuple[int, str, bool]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            line_number, column = token.start
            prefix = token.line[:column]
            comments.append(
                (line_number, token.string, not prefix.strip()))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_directives(source: str) -> Directives:
    """Extract every reprolint directive from ``source``."""
    parsed = Directives()
    suppressions: Dict[int, set] = {}
    sites: Dict[int, set] = {}
    hot_lines: List[int] = []
    for line, text, standalone in scan_comments(source):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        disable = _DISABLE.match(body)
        if disable is not None:
            codes = {code.strip()
                     for code in disable.group("codes").split(",")}
            covered = (line, line + 1) if standalone else (line,)
            sites.setdefault(line, set()).update(codes)
            previous = parsed.site_coverage.get(line, ())
            parsed.site_coverage[line] = tuple(
                sorted(set(previous) | set(covered)))
            for target in covered:
                suppressions.setdefault(target, set()).update(codes)
            continue
        if _HOT.match(body):
            hot_lines.append(line)
            continue
        parsed.errors.append(DirectiveError(line, body))
    parsed.suppressions = {line: frozenset(codes)
                           for line, codes in suppressions.items()}
    parsed.sites = {line: frozenset(codes)
                    for line, codes in sites.items()}
    parsed.hot_lines = tuple(hot_lines)
    return parsed
