"""Core machinery for reprolint: findings, rules, and file contexts.

reprolint is the repo's own AST-based static analyzer.  It exists
because the determinism contract — bit-identical results across serial,
parallel, and resumed runs — cannot be enforced by a general-purpose
linter: the hazards are repo-specific (unseeded RNG outside
``common/rng.py``, wall-clock reads in result paths, set-ordered
iteration feeding records, env reads that diverge inside pool workers)
and so are the sanctioned exceptions.

The moving parts:

* :class:`Finding` — one diagnostic, content-addressed by a digest over
  (file, rule, normalized source line, occurrence index) so baselines
  survive unrelated line drift.
* :class:`FileContext` — one parsed file plus everything rules need:
  the AST, raw lines, comment-derived suppressions and ``hot`` markers,
  and the file's path *inside* the ``repro`` package (if any), which is
  what scoped rules match against.
* :class:`Rule` + :func:`register` — the pluggable registry.  A new
  rule is a subclass with ``code``/``name``/``summary``, optional
  ``scope``/``exempt`` path filters, and a ``check`` generator; nothing
  else needs to change.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

#: Code attached to meta-findings (unused suppressions / markers) that
#: are produced by the runner rather than a registered rule.
META_CODE = "RL000"

#: Code attached to files that fail to parse at all.
PARSE_ERROR_CODE = "RL900"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule (or by the runner itself).

    ``context`` is the stripped source line the finding points at; it
    feeds the digest so the baseline tracks *content*, not line
    numbers.  ``occurrence`` disambiguates several identical findings
    (same file, rule, and line text) and is assigned by the runner
    after collection, in source order.
    """

    code: str
    path: str
    line: int
    column: int
    message: str
    context: str = ""
    occurrence: int = 0

    def digest(self) -> str:
        """Content address for baseline matching (line-drift immune)."""
        payload = "\n".join(
            (self.path, self.code, self.context, str(self.occurrence)))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.code)


def assign_occurrences(findings: Iterable[Finding]) -> List[Finding]:
    """Number identical (path, code, context) findings in source order.

    Without this, two textually identical violations in one file would
    collide on a single digest and a baseline entry would grandfather
    both.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    counters: Dict[Tuple[str, str, str], int] = {}
    numbered: List[Finding] = []
    for finding in ordered:
        key = (finding.path, finding.code, finding.context)
        index = counters.get(key, 0)
        counters[key] = index + 1
        numbered.append(replace(finding, occurrence=index))
    return numbered


@dataclass(frozen=True)
class FunctionSpan:
    """Line extent of one (possibly nested) function definition."""

    name: str
    start: int
    end: int
    hot: bool


@dataclass
class FileContext:
    """Everything rules may consult about one file under analysis."""

    #: Path as reported in findings: POSIX-style, relative to the lint
    #: root (e.g. ``src/repro/sim/engine.py``).
    path: str
    source: str
    tree: ast.Module
    #: 1-indexed physical source lines (``lines[0]`` unused).
    lines: List[str] = field(default_factory=list)
    #: line -> codes suppressed on that line (already expanded so a
    #: standalone directive covers the following line too).
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: line the directive was written on -> codes, for unused tracking.
    suppression_sites: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: lines carrying a hot-path marker comment.
    hot_marker_lines: Tuple[int, ...] = ()
    function_spans: List[FunctionSpan] = field(default_factory=list)

    @property
    def package_path(self) -> Optional[str]:
        """The file's path inside the ``repro`` package, or None.

        ``src/repro/sim/engine.py`` -> ``sim/engine.py``;
        ``tests/sim/test_engine.py`` -> None.  Scoped rules match on
        this, so tests/benchmarks/examples are naturally out of scope
        for package-only rules no matter where the lint root sits.
        """
        parts = self.path.split("/")
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                tail = "/".join(parts[index + 1:])
                return tail or None
        return None

    def line_text(self, line: int) -> str:
        if 1 <= line < len(self.lines):
            return self.lines[line]
        return ""

    def enclosing_functions(self, line: int) -> List[FunctionSpan]:
        """Spans containing ``line``, outermost first."""
        return [span for span in self.function_spans
                if span.start <= line <= span.end]

    def in_hot_function(self, line: int) -> bool:
        return any(span.hot for span in self.enclosing_functions(line))

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(code=code, path=self.path, line=line, column=column,
                       message=message,
                       context=self.line_text(line).strip())


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``code`` (``RLxxx``), ``name`` (kebab-case slug),
    ``summary`` (one line, shown by ``--list-rules`` and in docs), and
    implement :meth:`check` as a generator of findings.  ``scope``
    restricts the rule to package-path prefixes (``None`` = every
    file); ``exempt`` drops sanctioned modules by path suffix.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    #: Package-path prefixes the rule is limited to (None = all files,
    #: including non-package files like tests).
    scope: Optional[Tuple[str, ...]] = None
    #: Path suffixes of sanctioned modules the rule never visits.
    exempt: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        for suffix in self.exempt:
            if ctx.path.endswith(suffix):
                return False
        if self.scope is None:
            return True
        package = ctx.package_path
        if package is None:
            return False
        return any(package.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


#: The live registry, in registration (== definition) order.
_REGISTRY: List[Rule] = []


def register(rule_class: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = rule_class()
    if not rule.code or not rule.name:
        raise ValueError(
            f"rule {rule_class.__name__} must define code and name")
    if any(existing.code == rule.code for existing in _REGISTRY):
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY.append(rule)
    return rule_class


def all_rules() -> List[Rule]:
    """Registered rules, ordered by code."""
    return sorted(_REGISTRY, key=lambda rule: rule.code)


def rule_codes() -> FrozenSet[str]:
    return frozenset(rule.code for rule in _REGISTRY)


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules.


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def iter_function_defs(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def build_function_spans(
        tree: ast.Module, hot_lines: Tuple[int, ...],
) -> Tuple[List[FunctionSpan], FrozenSet[int]]:
    """Compute function extents and attach ``hot`` markers.

    A marker attaches to a ``def`` when it sits on the line directly
    above the definition (above decorators, too) or inline on the
    ``def`` line itself.  Returns the spans plus the subset of marker
    lines that actually claimed a function — the runner reports the
    rest as unused (:data:`META_CODE`).
    """
    hot = set(hot_lines)
    spans: List[FunctionSpan] = []
    attached = set()
    for node in iter_function_defs(tree):
        first = node.lineno
        if node.decorator_list:
            first = min(first,
                        min(dec.lineno for dec in node.decorator_list))
        claimed = {node.lineno, first - 1} & hot
        spans.append(FunctionSpan(name=node.name, start=node.lineno,
                                  end=node.end_lineno or node.lineno,
                                  hot=bool(claimed)))
        attached.update(claimed)
    return spans, frozenset(attached)
