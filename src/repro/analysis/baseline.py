"""The committed findings baseline (``reprolint-baseline.json``).

Grandfathered findings live in a JSON file keyed by each finding's
content digest — file path + rule code + the stripped source line +
an occurrence index — so unrelated edits that merely shift line
numbers never churn the file.  Alongside the digest each entry
repeats the human-readable (code, file, context) triple, purely so
reviewers can see *what* was grandfathered in the diff.

The contract is two-sided: a non-baselined finding fails the run, and
a baseline entry whose finding no longer exists fails it too (the
debt was paid — the entry must be deleted, via ``--update-baseline``
or by hand).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from .core import Finding

#: Default baseline filename, resolved against the lint root.
BASELINE_NAME = "reprolint-baseline.json"

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used (malformed JSON or
    an unknown format version) — a usage error, not a finding."""


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """digest -> entry mapping from ``path`` (empty if absent)."""
    if not path.is_file():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"unreadable baseline {path}: {error}") \
            from error
    if not isinstance(payload, dict) \
            or payload.get("version") != _FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format "
            f"(expected version {_FORMAT_VERSION})")
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'entries' must be a list")
    loaded: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "digest" not in entry:
            raise BaselineError(
                f"baseline {path}: every entry needs a 'digest'")
        loaded[str(entry["digest"])] = entry
    return loaded


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Serialize ``findings`` as the new baseline; returns the count.

    Entries are sorted by (file, code, context, occurrence) so the
    file diffs stably regardless of discovery order.
    """
    entries: List[Dict[str, object]] = []
    for finding in sorted(
            findings, key=lambda f: (f.path, f.code, f.context,
                                     f.occurrence)):
        entries.append({
            "digest": finding.digest(),
            "code": finding.code,
            "file": finding.path,
            "context": finding.context,
        })
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                    + "\n", encoding="utf-8")
    return len(entries)
