"""Command-line interface: ``python -m repro <command>``.

Three commands cover the everyday workflows:

* ``trace``    — generate a workload trace, print its characterization,
  optionally save it as a ``.npz`` bundle for external tools;
* ``simulate`` — run one prefetch engine over one workload and report
  coverage/accuracy (the quickstart, without writing code);
* ``compare``  — the Figure 10 matrix for a chosen set of engines; each
  workload's trace is replayed *once* against every engine through the
  single-pass multi-prefetcher engine (:mod:`repro.sim.engine`), and
  ``--jobs N`` fans the workload rows out over N processes.

The full figure-by-figure evaluation lives in
``python -m repro.experiments`` (which takes the same ``--jobs`` flag).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, NamedTuple, Optional, Tuple

from .common.config import CacheConfig, PIFConfig
from .core.pif import ProactiveInstructionFetch
from .experiments.parallel import parallel_map
from .pipeline.tracegen import cached_trace, generate_trace
from .prefetch import make_prefetcher
from .sim.engine import run_multi_prefetch_simulation
from .sim.tracesim import run_prefetch_simulation
from .trace.serialize import save_bundle
from .trace.stats import analyze_block_stream
from .workloads.spec import WORKLOAD_NAMES

#: Engine names the CLI accepts (PIF gets the experiment-scale window).
ENGINE_NAMES = ("none", "next-line", "next-line-miss", "stride",
                "discontinuity", "tifs", "pif")


def _engine(name: str):
    if name == "pif":
        return ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
    return make_prefetcher(name)


def _cache(kilobytes: int) -> CacheConfig:
    return CacheConfig(capacity_bytes=kilobytes * 1024, associativity=2)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="oltp-db2",
                        choices=sorted(WORKLOAD_NAMES))
    parser.add_argument("--instructions", type=int, default=400_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--cache-kb", type=int, default=32,
                        help="L1-I capacity in KB (2-way)")


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate and characterize one trace."""
    trace = generate_trace(args.workload, instructions=args.instructions,
                           seed=args.seed)
    bundle = trace.bundle
    stats = analyze_block_stream(bundle.retire_blocks())
    print(f"workload            {bundle.workload}")
    print(f"instructions        {bundle.instructions:,}")
    print(f"retire records      {len(bundle.retires):,}")
    print(f"fetch accesses      {len(bundle.accesses):,}")
    print(f"wrong-path fraction {bundle.wrong_path_fraction():.1%}")
    print(f"touched footprint   {bundle.footprint_blocks() * 64 // 1024} KB")
    print(f"sequential fraction {stats.sequential_fraction:.1%}")
    print(f"branch accuracy     "
          f"{trace.frontend_stats.conditional_accuracy():.1%}")
    if args.output:
        path = save_bundle(bundle, args.output)
        print(f"saved               {path}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one engine over one workload."""
    bundle = cached_trace(args.workload, args.instructions, args.seed).bundle
    engine = _engine(args.engine)
    result = run_prefetch_simulation(bundle, engine,
                                     cache_config=_cache(args.cache_kb),
                                     warmup_fraction=args.warmup)
    print(f"engine              {engine.name}")
    print(f"baseline misses     {result.baseline_misses:,}")
    print(f"remaining misses    {result.remaining_misses:,}")
    print(f"miss coverage       {result.coverage():.1%}")
    print(f"prefetches issued   {result.prefetches_issued:,}")
    if result.cache_stats is not None:
        print(f"prefetch accuracy   "
              f"{result.cache_stats.prefetch_accuracy():.1%}")
    return 0


class _CompareTask(NamedTuple):
    """One compare-matrix row: a workload against every chosen engine."""

    workload: str
    engines: Tuple[str, ...]
    instructions: int
    seed: int
    cache_kb: int
    warmup: float


def _compare_row(task: _CompareTask) -> str:
    """Render one workload's coverage cells (single trace walk)."""
    bundle = cached_trace(task.workload, task.instructions, task.seed).bundle
    results = run_multi_prefetch_simulation(
        bundle, [_engine(name) for name in task.engines],
        cache_config=_cache(task.cache_kb), warmup_fraction=task.warmup)
    cells = [f"{result.coverage():10.1%}" for result in results]
    return f"{task.workload:12s}  " + "  ".join(cells)


def cmd_compare(args: argparse.Namespace) -> int:
    """Coverage matrix: chosen engines over all six workloads."""
    engines = tuple(args.engines.split(","))
    for name in engines:
        if name not in ENGINE_NAMES:
            print(f"unknown engine {name!r}; choose from {ENGINE_NAMES}",
                  file=sys.stderr)
            return 2
    if args.jobs <= 0:
        print("--jobs must be positive", file=sys.stderr)
        return 2
    print(f"{'workload':12s}  " + "  ".join(f"{n:>10s}" for n in engines))
    tasks = [_CompareTask(workload, engines, args.instructions, args.seed,
                          args.cache_kb, args.warmup)
             for workload in WORKLOAD_NAMES]
    for row in parallel_map(_compare_row, tasks, jobs=args.jobs):
        print(row)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proactive Instruction Fetch reproduction toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser("trace", help="generate + characterize a trace")
    _add_common(trace)
    trace.add_argument("--output", default=None,
                       help="save the bundle to this .npz path")
    trace.set_defaults(func=cmd_trace)

    simulate = commands.add_parser("simulate",
                                   help="run one prefetch engine")
    _add_common(simulate)
    simulate.add_argument("--engine", default="pif", choices=ENGINE_NAMES)
    simulate.add_argument("--warmup", type=float, default=0.4)
    simulate.set_defaults(func=cmd_simulate)

    compare = commands.add_parser("compare",
                                  help="coverage matrix over all workloads")
    _add_common(compare)
    compare.add_argument("--engines", default="next-line,tifs,pif",
                         help="comma-separated engine list")
    compare.add_argument("--warmup", type=float, default=0.4)
    compare.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the workload rows "
                              "(output is identical for any value)")
    compare.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
