"""Command-line interface: ``python -m repro <command>`` (or the
``repro`` console script).

Eight commands cover the everyday workflows:

* ``trace``    — generate a workload trace, print its characterization,
  optionally save it as a ``.npz`` bundle for external tools;
* ``simulate`` — run one prefetch engine over one workload and report
  coverage/accuracy (the quickstart, without writing code);
* ``compare``  — the Figure 10 matrix for a chosen set of engines; each
  workload's trace is replayed *once* against every engine through the
  single-pass multi-prefetcher engine (:mod:`repro.sim.engine`), and
  ``--jobs N`` fans the workload rows out over N processes;
* ``traces``   — manage the content-addressed on-disk trace store
  (:mod:`repro.trace.store`): ``build`` pre-generates the experiment
  matrix's bundles (``--jobs N|auto`` fans out per trace), ``ls`` lists
  what is cached (``--format json`` for tooling), ``gc`` evicts stale
  or over-budget archives;
* ``sweep``    — declarative scenario sweeps (:mod:`repro.scenarios`):
  ``run`` expands a YAML/JSON scenario file into simulation points,
  batches points sharing a trace into single multi-prefetcher walks,
  fans out with ``--jobs N|auto`` over the persistent worker pool
  (sharding wide trace groups), and checkpoints every completed point
  so an interrupted sweep *resumes* (failed tasks are retried up to
  ``--max-retries`` times, then quarantined — the sweep completes
  degraded with exit code 3 and a rerun retries exactly the
  quarantined set); ``status`` reports completion (``--format json``
  for scripts); ``report`` renders markdown or CSV summary tables;
  ``verify`` is the offline integrity checker (``--repair`` drops
  corrupt/quarantined state so resume recomputes only what was lost);
* ``serve``    — the sweep-service daemon (:mod:`repro.service`): a
  long-running HTTP API over the same resumable sweep engine — submit
  scenario specs, poll job status, fetch reports; jobs persist under
  ``--data-dir`` and a restarted daemon resumes every in-flight sweep
  with zero recomputation.  The API reference is ``docs/api.md``;
* ``worker``   — a distributed-sweep worker (:mod:`repro.dist`): pulls
  trace-group leases from a coordinator started by ``repro sweep run
  --transport http``, runs them through the standard group path, and
  streams the records back; ``--transport local`` spawns these
  automatically as subprocesses;
* ``lint``     — reprolint (:mod:`repro.analysis`), the repo's own
  AST-based determinism & hot-path contract checker; CI gates on
  ``repro lint src tests benchmarks examples`` exiting 0.

Every ``--jobs`` flag accepts ``auto`` (all CPUs but one, minimum one).

The full figure-by-figure evaluation lives in
``python -m repro.experiments`` (which takes the same ``--jobs`` flag).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import List, NamedTuple, Optional, Tuple

from .analysis import runner as lint_runner
from .common.config import CacheConfig, PIFConfig
from .core.pif import ProactiveInstructionFetch
from .experiments.parallel import jobs_argument_type, parallel_map
from .pipeline.tracegen import cached_trace, generate_trace
from .prefetch import make_prefetcher
from .sim.engine import run_multi_prefetch_simulation
from .sim.tracesim import run_prefetch_simulation
from .trace.serialize import save_bundle
from .trace.stats import analyze_block_stream
from .trace.store import TraceKey, TraceStore, generator_version_hash
from .workloads.spec import WORKLOAD_NAMES

#: Engine names the CLI accepts (PIF gets the experiment-scale window).
ENGINE_NAMES = ("none", "next-line", "next-line-miss", "stride",
                "discontinuity", "tifs", "pif")


#: argparse type for ``--jobs``: positive integer or ``auto``.
_jobs_value = jobs_argument_type


def _engine(name: str):
    if name == "pif":
        return ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
    return make_prefetcher(name)


def _cache(kilobytes: int) -> CacheConfig:
    return CacheConfig(capacity_bytes=kilobytes * 1024, associativity=2)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="oltp-db2",
                        choices=sorted(WORKLOAD_NAMES))
    parser.add_argument("--instructions", type=int, default=400_000,
                        help="requested trace length per core (retired "
                             "instructions, not fetch accesses)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--cache-kb", type=int, default=32,
                        help="L1-I capacity in KB (2-way)")


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate and characterize one trace."""
    trace = generate_trace(args.workload, instructions=args.instructions,
                           seed=args.seed)
    bundle = trace.bundle
    stats = analyze_block_stream(bundle.retire_block_array())
    print(f"workload            {bundle.workload}")
    print(f"instructions        {bundle.instructions:,}")
    print(f"retire records      {len(bundle.retire_pc):,}")
    print(f"fetch accesses      {len(bundle.access_block):,}")
    print(f"wrong-path fraction {bundle.wrong_path_fraction():.1%}")
    print(f"touched footprint   {bundle.footprint_blocks() * 64 // 1024} KB")
    print(f"sequential fraction {stats.sequential_fraction:.1%}")
    print(f"branch accuracy     "
          f"{trace.frontend_stats.conditional_accuracy():.1%}")
    if args.output:
        path = save_bundle(bundle, args.output)
        print(f"saved               {path}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one engine over one workload.

    Printed ``miss coverage`` and ``prefetch accuracy`` are percents of
    baseline misses eliminated / of prefetch fills referenced; the miss
    counts cover the post-warmup measurement window only.
    """
    bundle = cached_trace(args.workload, args.instructions, args.seed).bundle
    engine = _engine(args.engine)
    result = run_prefetch_simulation(bundle, engine,
                                     cache_config=_cache(args.cache_kb),
                                     warmup_fraction=args.warmup)
    print(f"engine              {engine.name}")
    print(f"baseline misses     {result.baseline_misses:,}")
    print(f"remaining misses    {result.remaining_misses:,}")
    print(f"miss coverage       {result.coverage():.1%}")
    print(f"prefetches issued   {result.prefetches_issued:,}")
    if result.cache_stats is not None:
        print(f"prefetch accuracy   "
              f"{result.cache_stats.prefetch_accuracy():.1%}")
    return 0


class _CompareTask(NamedTuple):
    """One compare-matrix row: a workload against every chosen engine."""

    workload: str
    engines: Tuple[str, ...]
    instructions: int
    seed: int
    cache_kb: int
    warmup: float


def _compare_row(task: _CompareTask) -> str:
    """Render one workload's coverage cells (single trace walk)."""
    bundle = cached_trace(task.workload, task.instructions, task.seed).bundle
    results = run_multi_prefetch_simulation(
        bundle, [_engine(name) for name in task.engines],
        cache_config=_cache(task.cache_kb), warmup_fraction=task.warmup)
    cells = [f"{result.coverage():10.1%}" for result in results]
    return f"{task.workload:12s}  " + "  ".join(cells)


def cmd_compare(args: argparse.Namespace) -> int:
    """Coverage matrix: chosen engines over all six workloads.

    Cells are miss coverage — the percent of no-prefetch baseline
    misses the engine eliminates in the measurement window (signed:
    a polluting engine prints negative).
    """
    engines = tuple(args.engines.split(","))
    for name in engines:
        if name not in ENGINE_NAMES:
            print(f"unknown engine {name!r}; choose from {ENGINE_NAMES}",
                  file=sys.stderr)
            return 2
    if args.jobs <= 0:
        print("--jobs must be positive", file=sys.stderr)
        return 2
    print(f"{'workload':12s}  " + "  ".join(f"{n:>10s}" for n in engines))
    tasks = [_CompareTask(workload, engines, args.instructions, args.seed,
                          args.cache_kb, args.warmup)
             for workload in WORKLOAD_NAMES]
    for row in parallel_map(_compare_row, tasks, jobs=args.jobs):
        print(row)
    return 0


def _store_for(args: argparse.Namespace) -> Optional[TraceStore]:
    """The store a ``traces`` subcommand operates on (``--store`` wins
    over the environment).  Prints the shared disabled-store error and
    returns None when persistence is off, so callers just exit 2."""
    if args.store is not None:
        return TraceStore(args.store)
    store = TraceStore.from_env()
    if store is None:
        print("trace store is disabled (REPRO_TRACE_STORE); pass --store",
              file=sys.stderr)
    return store


class _BuildTask(NamedTuple):
    """One (workload, core) archive to ensure in the store."""

    workload: str
    instructions: int
    seed: int
    core: int
    store_root: str


def _build_one(task: _BuildTask) -> str:
    """Ensure one trace archive exists; returns 'cached' or 'built'.

    Presence is checked by path, not by loading: decompressing a
    multi-MB archive (and bumping its LRU mtime) just to print "cached"
    would make a warm no-op build as expensive as a real load pass.
    Corrupt archives still self-heal on the consumer path
    (``cached_trace`` -> ``store.get``).
    """
    store = TraceStore(task.store_root)
    key = TraceKey(task.workload, task.instructions, task.seed, task.core)
    if store.path_for(key).exists():
        return "cached"
    trace = generate_trace(task.workload, instructions=task.instructions,
                           seed=task.seed, core=task.core)
    store.put(key, trace.bundle,
              extra={"frontend_stats": asdict(trace.frontend_stats)})
    return "built"


def cmd_traces_build(args: argparse.Namespace) -> int:
    """Pre-generate the experiment matrix's traces into the store.

    Defaults track the experiment configurations (``--quick`` selects
    ``QUICK_CONFIG``, otherwise ``ExperimentConfig``), so a plain
    ``repro traces build`` produces exactly the archives a subsequent
    ``python -m repro.experiments`` run will look up.
    """
    from .experiments.common import QUICK_CONFIG, ExperimentConfig

    store = _store_for(args)
    if store is None:
        return 2
    if args.jobs <= 0:
        print("--jobs must be positive", file=sys.stderr)
        return 2
    config = QUICK_CONFIG if args.quick else ExperimentConfig()
    instructions = (args.instructions if args.instructions is not None
                    else config.instructions)
    seed = args.seed if args.seed is not None else config.seed
    cores = args.cores if args.cores is not None else config.cores
    workloads = (sorted(WORKLOAD_NAMES) if args.workloads == "all"
                 else args.workloads.split(","))
    for workload in workloads:
        if workload not in WORKLOAD_NAMES:
            print(f"unknown workload {workload!r}; choose from "
                  f"{sorted(WORKLOAD_NAMES)}", file=sys.stderr)
            return 2
    tasks = [
        _BuildTask(workload, instructions, seed, core, str(store.root))
        for workload in workloads for core in range(cores)
    ]
    outcomes = parallel_map(_build_one, tasks, jobs=args.jobs)
    for task, outcome in zip(tasks, outcomes):
        print(f"{outcome:7s}  {task.workload} core {task.core} "
              f"({task.instructions:,} instructions, seed {task.seed})")
    built = sum(1 for outcome in outcomes if outcome == "built")
    print(f"{built} built, {len(outcomes) - built} already cached, "
          f"store at {store.root}")
    return 0


def cmd_traces_ls(args: argparse.Namespace) -> int:
    """List the store's archives, current generator version first.

    ``--format json`` emits one JSON document: store root, running
    generator version, and an entry list (``state`` is ``current``,
    ``stale``, or ``foreign``; key fields are null for foreign files) —
    the machine-readable surface for tooling and CI scripts.
    """
    store = _store_for(args)
    if store is None:
        return 2
    entries = store.entries()
    if args.format == "json":
        payload = {
            "store": str(store.root),
            "generator": generator_version_hash()[:12],
            "total_bytes": sum(entry.size_bytes for entry in entries),
            "entries": [
                {
                    "file": entry.path.name,
                    "state": ("foreign" if entry.key is None
                              else "current" if entry.current else "stale"),
                    "size_bytes": entry.size_bytes,
                    "workload": entry.key.workload if entry.key else None,
                    "instructions": (entry.key.instructions
                                     if entry.key else None),
                    "seed": entry.key.seed if entry.key else None,
                    "core": entry.key.core if entry.key else None,
                    "generator": entry.generator_hash,
                }
                for entry in entries
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"store   {store.root}")
    print(f"version {generator_version_hash()[:12]}")
    if not entries:
        print("(empty)")
        return 0
    total = 0
    for entry in entries:
        total += entry.size_bytes
        if entry.key is None:
            # Not a store-produced name: listed for visibility, but gc
            # deliberately never touches it.
            print(f"  {'foreign':8s} {entry.size_bytes / 1024:8.1f} KB  "
                  f"{entry.path.name} (not managed by the store)")
        else:
            state = "current" if entry.current else "stale"
            key = entry.key
            print(f"  {state:8s} {entry.size_bytes / 1024:8.1f} KB  "
                  f"{key.workload} i={key.instructions:,} s={key.seed} "
                  f"c={key.core}")
    print(f"{len(entries)} archives, {total / 1024:.1f} KB")
    return 0


def cmd_traces_gc(args: argparse.Namespace) -> int:
    """Evict stale (and optionally over-budget or all) archives."""
    store = _store_for(args)
    if store is None:
        return 2
    removed = store.gc(max_bytes=args.max_bytes, remove_all=args.all)
    # gc also sweeps abandoned atomic-write staging files (under .tmp/);
    # report those separately — they were never listed as archives.
    scratch = [path for path in removed if path.parent != store.root]
    archives = len(removed) - len(scratch)
    message = f"removed {archives} archives from {store.root}"
    if scratch:
        message += f" (+{len(scratch)} abandoned scratch files)"
    print(message)
    return 0


def _load_sweep_spec(args: argparse.Namespace):
    """The scenario a ``sweep`` subcommand operates on.

    ``run`` requires ``--spec``; ``status``/``report`` fall back to the
    ``scenario.json`` the last ``run`` recorded in the output directory.
    Returns None (after printing to stderr) when nothing resolves, so
    callers just exit 2.
    """
    from .scenarios import ResultsStore, SpecError, load_spec, parse_spec

    try:
        if args.spec is not None:
            return load_spec(args.spec)
        store = ResultsStore(args.out)
        try:
            return parse_spec(store.load_scenario())
        except FileNotFoundError:
            print(f"no scenario recorded under {store.root} "
                  "(run `repro sweep run` first, or pass --spec)",
                  file=sys.stderr)
            return None
    # CLI boundary: the error is reported on stderr and becomes exit
    # code 2; nothing downstream ever consumes the bad spec.
    # reprolint: disable=RL007 - converted to an exit code at the CLI boundary
    except SpecError as error:
        print(f"invalid scenario: {error}", file=sys.stderr)
        return None


def cmd_sweep_run(args: argparse.Namespace) -> int:
    """Run (or resume) a scenario sweep; exit 0 only when complete.

    ``--limit N`` computes at most N new points this invocation (the
    sweep stays resumable); ``--jobs N`` fans trace groups out over N
    processes — stored records are identical for any job count;
    ``--max-retries N`` bounds per-task retries before quarantine.
    ``--transport local`` executes through the distributed tier with
    ``--workers N`` subprocess workers on this host; ``--transport
    http`` binds a coordinator and waits for external ``repro worker``
    processes.  Stores are byte-equivalent across all transports after
    ``repro sweep verify --repair``.
    Exit codes: 0 complete, 1 incomplete (resumable), 2 usage, 3
    complete but *degraded* — quarantined groups are named on stdout
    and retried by the next run.
    """
    from .scenarios import run_sweep

    if args.jobs <= 0:
        print("--jobs must be positive", file=sys.stderr)
        return 2
    if args.limit is not None and args.limit < 0:
        print("--limit cannot be negative", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("--max-retries cannot be negative", file=sys.stderr)
        return 2
    if args.workers <= 0:
        print("--workers must be positive", file=sys.stderr)
        return 2
    if args.lease_timeout <= 0:
        print("--lease-timeout must be positive", file=sys.stderr)
        return 2
    if args.worker_store is not None and args.transport != "local":
        print("--worker-store only applies to --transport local "
              "(http workers set REPRO_TRACE_STORE and --fetch-traces "
              "themselves)", file=sys.stderr)
        return 2
    spec = _load_sweep_spec(args)
    if spec is None:
        return 2
    if args.transport == "inline":
        summary = run_sweep(spec, args.out, jobs=args.jobs,
                            limit=args.limit, kernel=args.kernel,
                            max_retries=args.max_retries)
    else:
        from .dist import run_distributed_sweep

        summary = run_distributed_sweep(
            spec, args.out, transport=args.transport,
            workers=args.workers, limit=args.limit, kernel=args.kernel,
            max_retries=args.max_retries,
            lease_timeout=args.lease_timeout,
            host=args.bind_host, port=args.bind_port,
            worker_store=args.worker_store)
    print(f"{summary.computed} points computed, {summary.skipped} already "
          f"stored, {summary.remaining} remaining")
    if summary.degraded():
        print(f"sweep degraded: {summary.failed} points quarantined in "
              f"{len(summary.quarantined)} groups: "
              + ", ".join(summary.quarantined))
        print("rerun to retry exactly the quarantined set",
              file=sys.stderr)
        return 3
    if not summary.complete():
        print(f"sweep incomplete; rerun `repro sweep run --spec ... --out "
              f"{args.out}` to resume", file=sys.stderr)
        return 1
    return 0


def cmd_sweep_verify(args: argparse.Namespace) -> int:
    """Offline integrity check of a sweep directory (and trace store).

    Exit 0 when clean, 1 when integrity errors were found (corrupt or
    quarantined records, damaged sidecar lines, unreadable plan caches
    or trace archives), 2 on usage errors.  ``--repair`` rewrites the
    stores canonically, dropping everything damaged so the next run
    recomputes exactly what was lost; see DESIGN.md "Failure model".
    """
    from .scenarios import ResultsStore, format_report, verify_store

    spec = None
    if args.spec is not None:
        spec = _load_sweep_spec(args)
        if spec is None:
            return 2
    else:
        from .scenarios import SpecError, parse_spec

        store = ResultsStore(args.out)
        try:
            spec = parse_spec(store.load_scenario())
        except FileNotFoundError:
            spec = None  # verify still runs schema/hash checks
        # reprolint: disable=RL007 - a corrupt recorded scenario must not stop the fsck; membership checks are skipped and the corruption is reported
        except SpecError:
            spec = None
    report = verify_store(spec, args.out, repair=args.repair)
    if args.format == "json":
        print(json.dumps({
            "findings": [finding._asdict()
                         for finding in report.findings],
            "checked": report.checked,
            "repaired": report.repaired,
            "clean": report.clean(),
        }, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0 if report.clean() else 1


def cmd_sweep_status(args: argparse.Namespace) -> int:
    """Print completion accounting for a sweep output directory.

    ``--format json`` emits the same accounting as one JSON document
    (see :func:`repro.scenarios.report.status_summary` for the fields)
    so scripts can gate on ``complete``/``missing`` without parsing
    prose.
    """
    from .scenarios import ResultsStore, format_status, status_summary

    spec = _load_sweep_spec(args)
    if spec is None:
        return 2
    if args.format == "json":
        print(json.dumps(status_summary(spec, ResultsStore(args.out)),
                         indent=2, sort_keys=True))
        return 0
    print(format_status(spec, ResultsStore(args.out)))
    return 0


def cmd_sweep_report(args: argparse.Namespace) -> int:
    """Render the sweep's summary tables (markdown or CSV) to stdout.

    Coverage cells are percents, misses/1K-instr cells are counts per
    1000 retired instructions, speedup cells are UIPC ratios; the CSV
    form keeps coverage as a signed fraction for machine consumers.
    """
    from .scenarios import ResultsStore, format_csv, format_markdown, summarize

    spec = _load_sweep_spec(args)
    if spec is None:
        return 2
    summary = summarize(spec, ResultsStore(args.out))
    if args.format == "csv":
        print(format_csv(summary), end="")
    else:
        print(format_markdown(summary), end="")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep-service HTTP daemon until SIGTERM/SIGINT.

    Shutdown is graceful: the signal wakes the main thread, the HTTP
    listener stops, and the worker finishes (and checkpoints) the trace
    group it is walking before the process exits — an interrupted job
    is persisted back to ``queued`` and the next start on the same
    ``--data-dir`` resumes it with zero recomputed points.
    """
    import os
    import signal
    import threading

    from .service import ServiceConfig, SweepService, build_server

    try:
        config = ServiceConfig(data_dir=args.data_dir, jobs=args.jobs,
                               queue_depth=args.queue_depth,
                               max_body_bytes=args.max_body_kb * 1024,
                               kernel=args.kernel)
    except ValueError as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return 2
    service = SweepService(config)
    try:
        server = build_server(args.host, args.port, service)
    except OSError as error:
        print(f"cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    stop = threading.Event()

    def _request_shutdown(signum: int, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)
    service.start()
    listener = threading.Thread(target=server.serve_forever,
                                name="http-listener", daemon=True)
    listener.start()
    host, port = server.server_address[:2]
    service.log_event("serve-started", host=host, port=port,
                      pid=os.getpid(), data_dir=args.data_dir,
                      jobs=args.jobs, queue_depth=args.queue_depth)
    print(f"repro serve listening on http://{host}:{port} "
          f"(data dir {args.data_dir}; SIGTERM for graceful shutdown)",
          file=sys.stderr)
    stop.wait()
    service.log_event("serve-stopping", reason="signal")
    server.shutdown()          # stop accepting requests first,
    listener.join()
    service.stop(wait=True)    # then checkpoint the in-flight sweep
    server.server_close()
    service.log_event("serve-stopped")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run a pull-based distributed-sweep worker until drained.

    Points at a coordinator started by ``repro sweep run --transport
    http`` (which prints the URL).  Each leased trace group runs
    through the exact same group path as every other execution mode,
    so the records streamed back are bit-identical to an inline run's.
    ``--fetch-traces`` replicates archives this host lacks from the
    coordinator's store (verified, resumable); on a generator mismatch
    it adopts the coordinator's store as authoritative instead of
    exiting 2.
    Exit codes: 0 sweep drained, 1 coordinator unreachable, 2 trace
    generator-version mismatch with the coordinator (when fetching is
    off, or the mismatch persists with an override installed).
    """
    import os

    from .dist.worker import run_worker
    from .trace.store import TraceStore

    if args.poll_interval <= 0:
        print("--poll-interval must be positive", file=sys.stderr)
        return 2
    budget_bytes = None
    if args.replica_budget_mb is not None:
        if args.replica_budget_mb <= 0:
            print("--replica-budget-mb must be positive", file=sys.stderr)
            return 2
        if not args.fetch_traces:
            print("--replica-budget-mb needs --fetch-traces",
                  file=sys.stderr)
            return 2
        budget_bytes = int(args.replica_budget_mb * 1024 * 1024)
    if args.fetch_traces and TraceStore.from_env() is None:
        print("--fetch-traces needs an enabled trace store; set "
              "REPRO_TRACE_STORE to the replica directory",
              file=sys.stderr)
        return 2
    worker_id = (args.worker_id if args.worker_id is not None
                 else f"worker-{os.getpid()}")
    return run_worker(args.coordinator, worker_id,
                      poll_interval=args.poll_interval,
                      fetch_traces=args.fetch_traces,
                      replica_budget_bytes=budget_bytes)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint (see :mod:`repro.analysis`) and gate on the result.

    Exit 0 = clean, 1 = non-baselined findings or unused baseline
    entries, 2 = usage error — the same contract CI relies on.
    """
    return lint_runner.run(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proactive Instruction Fetch reproduction toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser("trace", help="generate + characterize a trace")
    _add_common(trace)
    trace.add_argument("--output", default=None,
                       help="save the bundle to this .npz path")
    trace.set_defaults(func=cmd_trace)

    simulate = commands.add_parser("simulate",
                                   help="run one prefetch engine")
    _add_common(simulate)
    simulate.add_argument("--engine", default="pif", choices=ENGINE_NAMES)
    simulate.add_argument("--warmup", type=float, default=0.4,
                          help="warmup window as a fraction of trace "
                               "accesses in [0, 1), not a percent")
    simulate.set_defaults(func=cmd_simulate)

    compare = commands.add_parser("compare",
                                  help="coverage matrix over all workloads")
    _add_common(compare)
    compare.add_argument("--engines", default="next-line,tifs,pif",
                         help="comma-separated engine list")
    compare.add_argument("--warmup", type=float, default=0.4,
                         help="warmup window as a fraction of trace "
                              "accesses in [0, 1), not a percent")
    compare.add_argument("--jobs", type=_jobs_value, default=1,
                         help="worker processes for the workload rows, or "
                              "'auto' for all CPUs but one (output is "
                              "identical for any value)")
    compare.set_defaults(func=cmd_compare)

    traces = commands.add_parser(
        "traces", help="manage the on-disk trace store")
    trace_commands = traces.add_subparsers(dest="traces_command",
                                           required=True)

    def _add_store(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--store", default=None,
                            help="store directory (default: "
                                 "$REPRO_TRACE_STORE or ~/.cache/repro/traces)")

    build = trace_commands.add_parser(
        "build", help="pre-generate the experiment traces into the store")
    _add_store(build)
    build.add_argument("--workloads", default="all",
                       help="comma-separated workload list, or 'all'")
    build.add_argument("--quick", action="store_true",
                       help="QUICK_CONFIG scale (what the CI smoke and "
                            "--quick experiment runs replay)")
    build.add_argument("--instructions", type=int, default=None,
                       help="trace length per core (default: the "
                            "selected experiment config's)")
    build.add_argument("--seed", type=int, default=None,
                       help="root seed (default: the experiment config's)")
    build.add_argument("--cores", type=int, default=None,
                       help="cores (independent traces) per workload "
                            "(default: the experiment config's)")
    build.add_argument("--jobs", type=_jobs_value, default=1,
                       help="worker processes, one trace per task, or "
                            "'auto' for all CPUs but one")
    build.set_defaults(func=cmd_traces_build)

    ls = trace_commands.add_parser("ls", help="list stored archives")
    _add_store(ls)
    ls.add_argument("--format", default="text", choices=("text", "json"),
                    help="output format (json = machine-readable listing)")
    ls.set_defaults(func=cmd_traces_ls)

    gc = trace_commands.add_parser(
        "gc", help="evict stale or over-budget archives")
    _add_store(gc)
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="additionally evict LRU current archives to fit "
                         "this budget")
    gc.add_argument("--all", action="store_true",
                    help="clear the store completely")
    gc.set_defaults(func=cmd_traces_gc)

    sweep = commands.add_parser(
        "sweep", help="run declarative scenario sweeps")
    sweep_commands = sweep.add_subparsers(dest="sweep_command", required=True)

    def _add_out(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--out", required=True,
                            help="sweep output directory (results store)")

    sweep_run = sweep_commands.add_parser(
        "run", help="run or resume a scenario sweep")
    sweep_run.add_argument("--spec", required=True,
                           help="scenario file (.yaml/.yml/.json); see "
                                "examples/scenarios/")
    _add_out(sweep_run)
    sweep_run.add_argument("--jobs", type=_jobs_value, default=1,
                           help="worker processes for the task fan-out, or "
                                "'auto' for all CPUs but one (results are "
                                "identical for any value; jobs > 1 also "
                                "shards wide trace groups)")
    sweep_run.add_argument("--limit", type=int, default=None,
                           help="compute at most N new points this run "
                                "(the sweep stays resumable)")
    sweep_run.add_argument("--kernel", default=None,
                           choices=("fast", "reference"),
                           help="simulation kernel (default: "
                                "$REPRO_SIM_KERNEL or fast; recorded "
                                "metrics are bit-identical — records "
                                "differ only in the kernel provenance "
                                "field)")
    sweep_run.add_argument("--max-retries", type=int, default=2,
                           help="retries per failed trace-group task "
                                "before it is quarantined as failed "
                                "records (default: 2; a later run "
                                "retries exactly the quarantined set)")
    sweep_run.add_argument("--transport", default="inline",
                           choices=("inline", "local", "http"),
                           help="execution tier: inline (this process "
                                "plus --jobs pool workers), local "
                                "(coordinator + --workers subprocess "
                                "workers on this host), or http "
                                "(coordinator only; start repro worker "
                                "processes against the printed URL). "
                                "Stores are byte-equivalent across all "
                                "three after verify --repair")
    sweep_run.add_argument("--workers", type=int, default=2,
                           help="worker subprocesses for --transport "
                                "local (default: 2; ignored inline)")
    sweep_run.add_argument("--lease-timeout", type=float, default=60.0,
                           help="seconds a leased task may go without a "
                                "heartbeat before it is requeued "
                                "(default: 60; distributed transports "
                                "only)")
    sweep_run.add_argument("--bind-host", default="127.0.0.1",
                           help="coordinator bind address for the "
                                "distributed transports (default: "
                                "loopback; the protocol is "
                                "unauthenticated)")
    sweep_run.add_argument("--bind-port", type=int, default=0,
                           help="coordinator TCP port (default: 0 = "
                                "pick a free one; --transport http "
                                "prints the bound URL)")
    sweep_run.add_argument("--worker-store", default=None,
                           help="replica trace-store directory for "
                                "--transport local workers; they start "
                                "against it (even empty) and fetch "
                                "missing archives from this "
                                "coordinator's store with SHA-256 "
                                "verification")
    sweep_run.set_defaults(func=cmd_sweep_run)

    sweep_verify = sweep_commands.add_parser(
        "verify", help="offline integrity check of a sweep directory")
    _add_out(sweep_verify)
    sweep_verify.add_argument("--spec", default=None,
                              help="scenario file (default: the "
                                   "scenario.json recorded by run; "
                                   "enables membership checks)")
    sweep_verify.add_argument("--repair", action="store_true",
                              help="rewrite the stores canonically, "
                                   "dropping corrupt/quarantined/stale "
                                   "records and deleting unreadable "
                                   "caches so the next run recomputes "
                                   "exactly what was lost")
    sweep_verify.add_argument("--format", default="text",
                              choices=("text", "json"),
                              help="output format (json = machine-"
                                   "readable findings)")
    sweep_verify.set_defaults(func=cmd_sweep_verify)

    sweep_status = sweep_commands.add_parser(
        "status", help="show a sweep's completion state")
    _add_out(sweep_status)
    sweep_status.add_argument("--spec", default=None,
                              help="scenario file (default: the "
                                   "scenario.json recorded by run)")
    sweep_status.add_argument("--format", default="text",
                              choices=("text", "json"),
                              help="output format (json = machine-readable "
                                   "accounting)")
    sweep_status.set_defaults(func=cmd_sweep_status)

    sweep_report = sweep_commands.add_parser(
        "report", help="render a sweep's summary tables")
    _add_out(sweep_report)
    sweep_report.add_argument("--spec", default=None,
                              help="scenario file (default: the "
                                   "scenario.json recorded by run)")
    sweep_report.add_argument("--format", default="markdown",
                              choices=("markdown", "csv"),
                              help="output format (default: markdown)")
    sweep_report.set_defaults(func=cmd_sweep_report)

    serve = commands.add_parser(
        "serve", help="run the sweep-service HTTP daemon")
    serve.add_argument("--data-dir", required=True,
                       help="service state directory: job files plus one "
                            "resumable sweep store per job (restarting "
                            "on the same directory resumes in-flight "
                            "sweeps)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only; the "
                            "API is unauthenticated)")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 picks a free one; the chosen "
                            "port is printed at startup)")
    serve.add_argument("--jobs", type=_jobs_value, default=1,
                       help="worker processes per sweep, or 'auto' "
                            "(one job runs at a time; parallelism goes "
                            "inside the sweep so stores stay identical "
                            "to CLI runs)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="max queued jobs before submissions get "
                            "429 (backpressure)")
    serve.add_argument("--max-body-kb", type=int, default=1024,
                       help="max request body size in KiB; larger spec "
                            "submissions get 413")
    serve.add_argument("--kernel", default=None,
                       choices=("fast", "reference"),
                       help="simulation kernel for every job (default: "
                            "$REPRO_SIM_KERNEL or fast)")
    serve.set_defaults(func=cmd_serve)

    worker = commands.add_parser(
        "worker", help="run a distributed-sweep worker")
    worker.add_argument("--coordinator", required=True,
                        help="coordinator base URL (printed by repro "
                             "sweep run --transport http), e.g. "
                             "http://127.0.0.1:8731")
    worker.add_argument("--worker-id", default=None,
                        help="stable worker identity for lease "
                             "accounting (default: worker-<pid>)")
    worker.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds to sleep when the coordinator has "
                             "no pending task (default: 0.5)")
    worker.add_argument("--fetch-traces", action="store_true",
                        help="replicate missing trace archives from the "
                             "coordinator's store (SHA-256-verified, "
                             "resumable) instead of generating them "
                             "locally; on a generator mismatch the "
                             "coordinator's store becomes authoritative "
                             "rather than exiting 2. Needs "
                             "REPRO_TRACE_STORE")
    worker.add_argument("--replica-budget-mb", type=float, default=None,
                        help="cap the replica trace store at this many "
                             "MiB, evicting least-recently-used "
                             "archives after each fetch (default: "
                             "unbounded)")
    worker.set_defaults(func=cmd_worker)

    lint = commands.add_parser(
        "lint", help="run reprolint, the determinism contract checker")
    lint_runner.configure_parser(lint)
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
