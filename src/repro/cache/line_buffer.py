"""The line buffer between the core and the L1-I.

The paper (Section 4.3, citing Spracklen et al.) notes that a line
buffer gives the prefetch engine enough tag bandwidth without
duplicating the I-cache tags.  Functionally it behaves as a tiny
fully-associative staging cache of the most recent fetched lines; its
main observable effect is absorbing same-block fetch bursts so they do
not appear as repeated L1-I accesses.
"""

from __future__ import annotations

from typing import Optional

from ..common.lru import LRUSet


class LineBuffer:
    """A small fully-associative buffer of recently fetched blocks."""

    def __init__(self, entries: int = 4) -> None:
        if entries <= 0:
            raise ValueError("line buffer needs at least one entry")
        self._blocks: LRUSet[int] = LRUSet(entries)
        self.hits = 0
        self.misses = 0

    @property
    def entries(self) -> int:
        """Buffer capacity in blocks."""
        return self._blocks.capacity

    def access(self, block: int) -> bool:
        """True if ``block`` is already staged (no L1-I access needed)."""
        if block in self._blocks:
            self._blocks.touch(block)
            self.hits += 1
            return True
        self.misses += 1
        self._blocks.add(block)
        return False

    def filter_rate(self) -> float:
        """Fraction of fetches absorbed by the buffer."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def last_evicted(self) -> Optional[int]:  # pragma: no cover - trivial
        """Placeholder for symmetry with other structures; the buffer
        does not expose evictions because nothing downstream needs them."""
        return None
