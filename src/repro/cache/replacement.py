"""Per-set replacement policies for the set-associative cache model.

The paper's L1-I uses LRU (Table I); the instability analysis in
Section 2.1 is precisely about LRU treating temporally-correlated blocks
independently.  Random and FIFO are provided for the ablation study that
checks PIF's advantage is not an artifact of one replacement policy.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional


class ReplacementPolicy(ABC):
    """Recency/ordering state for one cache set.

    The cache owns the tag array; the policy only answers "which way is
    the victim" and observes accesses/fills.  Ways are integers in
    ``[0, associativity)``.
    """

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self.associativity = associativity

    @abstractmethod
    def on_access(self, way: int) -> None:
        """Record a demand hit on ``way``."""

    @abstractmethod
    def on_fill(self, way: int) -> None:
        """Record a fill into ``way``."""

    @abstractmethod
    def victim(self) -> int:
        """Way to evict next (all ways are assumed valid)."""

    def on_invalidate(self, way: int) -> None:
        """Record an invalidation of ``way`` (optional hook)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: victim is the way touched longest ago."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._order: List[int] = list(range(associativity))

    def _touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def on_access(self, way: int) -> None:
        self._touch(way)

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def on_invalidate(self, way: int) -> None:
        self._order.remove(way)
        self._order.insert(0, way)

    def victim(self) -> int:
        return self._order[0]

    def recency_order(self) -> List[int]:
        """Ways from LRU to MRU (exposed for tests and visualization)."""
        return list(self._order)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: victim is the oldest *fill*; hits don't promote."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._queue: List[int] = list(range(associativity))

    def on_access(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        self._queue.remove(way)
        self._queue.append(way)

    def victim(self) -> int:
        return self._queue[0]


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (deterministic under a seeded RNG)."""

    def __init__(self, associativity: int, rng: Optional[random.Random] = None) -> None:
        super().__init__(associativity)
        self._rng = rng if rng is not None else random.Random(0)

    def on_access(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.associativity)


def make_policy(name: str, associativity: int,
                rng: Optional[random.Random] = None) -> ReplacementPolicy:
    """Factory keyed by the :class:`~repro.common.config.CacheConfig` name."""
    if name == "lru":
        return LRUPolicy(associativity)
    if name == "fifo":
        return FIFOPolicy(associativity)
    if name == "random":
        return RandomPolicy(associativity, rng)
    raise ValueError(f"unknown replacement policy {name!r}")
