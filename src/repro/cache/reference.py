"""The object-model reference cache the flat-array kernel is tested against.

This is the original dict-and-dataclass implementation of the
set-associative L1-I model, kept verbatim as the *reference semantics*
for :class:`repro.cache.icache.InstructionCache`: per-set ``dict`` tag
stores, one :class:`~repro.cache.replacement.ReplacementPolicy` object
per set, a `_Line` dataclass per resident block.  It is deliberately
slow and deliberately simple — every behavioural question about the
fast kernel is answered by differentially replaying the same request
sequence through this model (``tests/cache/test_icache.py`` and the
engine equivalence suite in ``tests/sim/test_engine.py`` lock the two
implementations together, bit for bit).

Do not optimize this module; optimize :mod:`repro.cache.icache` and
prove the change here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.config import CacheConfig
from .icache import AccessResult
from .replacement import ReplacementPolicy, make_policy
from .stats import CacheStats


@dataclass(slots=True)
class _Line:
    block: int
    prefetched: bool
    referenced: bool


class ReferenceInstructionCache:
    """A set-associative cache of instruction blocks (object model).

    The model is functional: a miss is recorded and the block is
    (optionally) filled immediately.  All addresses are *block*
    addresses — the callers do the PC-to-block mapping.  API-compatible
    with :class:`~repro.cache.icache.InstructionCache`, including the
    ``access_fast`` result-code path, so the two are interchangeable in
    the simulation engines.
    """

    def __init__(self, config: Optional[CacheConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.config = config if config is not None else CacheConfig()
        self.stats = CacheStats()
        self._n_sets = self.config.n_sets
        self._ways = self.config.associativity
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self._n_sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(self.config.replacement, self._ways, rng)
            for _ in range(self._n_sets)
        ]
        self._way_of: List[Dict[int, int]] = [dict() for _ in range(self._n_sets)]

    def set_index(self, block: int) -> int:
        """Set an instruction block maps to."""
        return block % self._n_sets

    def contains(self, block: int) -> bool:
        """Presence probe with no side effects (used by prefetch filtering)."""
        return block in self._sets[self.set_index(block)]

    def access(self, block: int, fill_on_miss: bool = True) -> AccessResult:
        """Demand access for ``block``; updates replacement and counters.

        On a miss the block is filled immediately when ``fill_on_miss``
        (the functional-model default); timing simulators pass False and
        manage fills themselves.
        """
        index = self.set_index(block)
        lines = self._sets[index]
        self.stats.demand_accesses += 1
        line = lines.get(block)
        if line is not None:
            self.stats.demand_hits += 1
            was_prefetched = line.prefetched and not line.referenced
            if was_prefetched:
                self.stats.useful_prefetches += 1
            line.referenced = True
            self._policies[index].on_access(self._way_of[index][block])
            return AccessResult(hit=True, was_prefetched=was_prefetched)
        self.stats.demand_misses += 1
        if fill_on_miss:
            self._fill(block, prefetched=False)
        return AccessResult(hit=False, was_prefetched=False)

    def access_fast(self, block: int, fill_on_miss: bool = True) -> int:
        """Result-code variant of :meth:`access` (same state changes)."""
        result = self.access(block, fill_on_miss)
        if not result.hit:
            return 0
        return 2 if result.was_prefetched else 1

    def prefetch(self, block: int) -> bool:
        """Install ``block`` on behalf of a prefetcher.

        Probes first — "predictions first probe the instruction cache to
        confirm that the block is not present" (Section 4.3) — and
        returns True only if a fill actually happened.
        """
        self.stats.prefetch_requests += 1
        if self.contains(block):
            self.stats.prefetch_drops_present += 1
            return False
        self._fill(block, prefetched=True)
        self.stats.prefetch_fills += 1
        return True

    def fill(self, block: int, prefetched: bool = False) -> Optional[int]:
        """Explicit fill used by timing simulators; returns the evicted
        block, if any."""
        return self._fill(block, prefetched)

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present (True if it was resident)."""
        index = self.set_index(block)
        lines = self._sets[index]
        if block not in lines:
            return False
        way = self._way_of[index].pop(block)
        del lines[block]
        self._free_ways_of(index).append(way)
        self._policies[index].on_invalidate(way)
        return True

    def resident_blocks(self) -> List[int]:
        """All resident block addresses (unordered; for tests/tools)."""
        blocks: List[int] = []
        for lines in self._sets:
            blocks.extend(lines.keys())
        return blocks

    def _free_ways_of(self, index: int) -> List[int]:
        used = set(self._way_of[index].values())
        return [way for way in range(self._ways) if way not in used]

    def _fill(self, block: int, prefetched: bool) -> Optional[int]:
        index = self.set_index(block)
        lines = self._sets[index]
        if block in lines:
            # Refill of a resident block: refresh recency only.
            self._policies[index].on_fill(self._way_of[index][block])
            return None
        evicted_block: Optional[int] = None
        free = self._free_ways_of(index)
        if free:
            way = free[0]
        else:
            way = self._policies[index].victim()
            evicted_block = self._victim_block(index, way)
            evicted_line = lines.pop(evicted_block)
            del self._way_of[index][evicted_block]
            self.stats.evictions += 1
            if evicted_line.prefetched and not evicted_line.referenced:
                self.stats.evicted_unused_prefetches += 1
        lines[block] = _Line(block=block, prefetched=prefetched, referenced=False)
        self._way_of[index][block] = way
        self._policies[index].on_fill(way)
        return evicted_block

    def _victim_block(self, index: int, way: int) -> int:
        for block, block_way in self._way_of[index].items():
            if block_way == way:
                return block
        raise RuntimeError(f"victim way {way} of set {index} holds no block")
