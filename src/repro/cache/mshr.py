"""Miss-status holding registers (MSHRs).

The timing model uses MSHRs for two things the paper's evaluation
depends on: merging a demand request into an already-outstanding
prefetch (a *late* prefetch still hides part of the fill latency), and
bounding the number of in-flight fills (Table I: 32 MSHRs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(slots=True)
class OutstandingFill:
    """One in-flight fill."""

    block: int
    ready_at: int
    is_prefetch: bool


class MSHRFile:
    """A bounded table of in-flight block fills keyed by block address."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._fills: Dict[int, OutstandingFill] = {}
        self.allocations = 0
        self.merges = 0
        self.rejects_full = 0

    def __len__(self) -> int:
        return len(self._fills)

    def lookup(self, block: int) -> Optional[OutstandingFill]:
        """The outstanding fill for ``block``, if any."""
        return self._fills.get(block)

    def allocate(self, block: int, ready_at: int, is_prefetch: bool) -> bool:
        """Track a new fill; returns False (and counts a reject) when full.

        If the block already has an outstanding fill the request merges:
        a demand merge converts a prefetch entry to demand so accounting
        downstream can attribute the (partially hidden) latency.
        """
        existing = self._fills.get(block)
        if existing is not None:
            self.merges += 1
            if not is_prefetch:
                existing.is_prefetch = False
            return True
        if len(self._fills) >= self.capacity:
            self.rejects_full += 1
            return False
        self._fills[block] = OutstandingFill(block, ready_at, is_prefetch)
        self.allocations += 1
        return True

    def drain_ready(self, now: int):
        """Pop and return every fill whose data has arrived by ``now``."""
        ready = [fill for fill in self._fills.values() if fill.ready_at <= now]
        for fill in ready:
            del self._fills[fill.block]
        return ready

    def clear(self) -> None:
        """Forget all in-flight fills (used between measurement windows)."""
        self._fills.clear()
