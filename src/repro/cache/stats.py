"""Counters every cache-model consumer reads.

Kept as a plain mutable dataclass — the cache increments fields in its
hot path and experiments snapshot/derive ratios at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(slots=True)
class CacheStats:
    """Demand/prefetch counters for one cache instance."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_requests: int = 0
    prefetch_fills: int = 0
    prefetch_drops_present: int = 0
    useful_prefetches: int = 0
    evictions: int = 0
    evicted_unused_prefetches: int = 0

    def miss_rate(self) -> float:
        """Demand miss rate."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def hit_rate(self) -> float:
        """Demand hit rate."""
        return 1.0 - self.miss_rate() if self.demand_accesses else 0.0

    def prefetch_accuracy(self) -> float:
        """Fraction of prefetch fills that were demanded before eviction."""
        if self.prefetch_fills == 0:
            return 0.0
        return self.useful_prefetches / self.prefetch_fills

    def mpki(self, instructions: int) -> float:
        """Demand misses per kilo-instruction."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.demand_misses / instructions

    def describe(self) -> Dict[str, float]:
        """Flat dictionary including derived ratios."""
        return {
            "demand_accesses": float(self.demand_accesses),
            "demand_hits": float(self.demand_hits),
            "demand_misses": float(self.demand_misses),
            "miss_rate": self.miss_rate(),
            "prefetch_requests": float(self.prefetch_requests),
            "prefetch_fills": float(self.prefetch_fills),
            "prefetch_drops_present": float(self.prefetch_drops_present),
            "useful_prefetches": float(self.useful_prefetches),
            "prefetch_accuracy": self.prefetch_accuracy(),
            "evictions": float(self.evictions),
            "evicted_unused_prefetches": float(self.evicted_unused_prefetches),
        }


@dataclass(slots=True)
class CoverageAccounting:
    """Miss-coverage bookkeeping relative to a no-prefetch baseline.

    *Coverage* (Section 5.5) is the fraction of the baseline's demand
    misses that the prefetcher eliminated.  The trace simulator fills
    these fields by running baseline and prefetched caches side by side
    on the identical access stream.
    """

    baseline_misses: int = 0
    remaining_misses: int = 0
    extra_misses: int = 0
    per_level_baseline: Dict[int, int] = field(default_factory=dict)
    per_level_remaining: Dict[int, int] = field(default_factory=dict)

    def coverage(self) -> float:
        """Fraction of baseline misses eliminated.

        Signed, like :meth:`PrefetchSimResult.coverage`: a polluting
        prefetcher that inflicts more misses than it removes reports a
        negative value rather than a silently clamped 0.0.
        """
        if self.baseline_misses == 0:
            return 0.0
        eliminated = self.baseline_misses - self.remaining_misses
        return eliminated / self.baseline_misses

    def level_coverage(self, trap_level: int) -> float:
        """Coverage restricted to one trap level (signed, like
        :meth:`coverage`)."""
        baseline = self.per_level_baseline.get(trap_level, 0)
        if baseline == 0:
            return 0.0
        remaining = self.per_level_remaining.get(trap_level, 0)
        return (baseline - remaining) / baseline
