"""Set-associative instruction-cache model (flat-array fast kernel).

Functional (non-timed) model of the paper's 64 KB 2-way L1-I.  It tracks
a *prefetched* bit per resident block — the tag the PIF design threads
from the fetch stage to the compactors ("instructions that were not
explicitly prefetched are tagged at the fetch stage", Section 4.2) — and
all the counters needed for accuracy/coverage reporting.

This is the hot core of every simulation, so the state layout is flat:
one slot per (set, way) across three parallel arrays — a tag list, a
packed prefetched/referenced flag byte, and a recency stamp — instead
of per-set dictionaries of line objects with a replacement-policy object
per set.  LRU and FIFO are inlined as monotonic timestamps (LRU stamps
on access and fill, FIFO on fill only; the victim is the minimum stamp
in the set), and the random policy keeps the per-set ``Random(0)`` draw
sequence of :class:`~repro.cache.replacement.RandomPolicy`.  The
steady-state demand path, :meth:`InstructionCache.access_fast`, performs
no allocation at all: it returns one of the integer result codes below.

The object-model original lives on as
:class:`repro.cache.reference.ReferenceInstructionCache`; the two are
kept bit-identical by the differential suites in ``tests/cache`` and
``tests/sim``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..common.config import CacheConfig
from .stats import CacheStats

#: ``access_fast`` result codes.  ``HIT_PREFETCHED`` marks the *first*
#: demand hit on a block a prefetcher installed — the complement of the
#: PIF fetch-stage tag (``tagged == code != HIT_PREFETCHED``).
MISS = 0
HIT = 1
HIT_PREFETCHED = 2

#: Flag-byte bits: bit 0 = installed by a prefetch, bit 1 = demanded
#: since install.  A flag byte of exactly ``_PREFETCHED`` therefore
#: identifies an unused prefetch.
_PREFETCHED = 1
_REFERENCED = 2


@dataclass(slots=True)
class AccessResult:
    """Outcome of one demand access.

    ``was_prefetched`` is True when the access hit a block the
    prefetcher installed and that had not yet been demanded — exactly
    the complement of the PIF trigger tag.
    """

    hit: bool
    was_prefetched: bool

    @property
    def tagged(self) -> bool:
        """The PIF fetch-stage tag: set when the fetch was *not* served
        by a prefetch (Section 4.2)."""
        return not self.was_prefetched


class InstructionCache:
    """A set-associative cache of instruction blocks.

    The model is functional: a miss is recorded and the block is
    (optionally) filled immediately; timing is layered on by
    :mod:`repro.sim.timing`.  All addresses are *block* addresses — the
    callers do the PC-to-block mapping.

    Hot-path callers use :meth:`access_fast` (returns a result code and
    allocates nothing); :meth:`access` wraps it in an
    :class:`AccessResult` for external consumers.
    """

    def __init__(self, config: Optional[CacheConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.config = config if config is not None else CacheConfig()
        self.stats = CacheStats()
        self._n_sets = self.config.n_sets
        self._ways = self.config.associativity
        n_slots = self._n_sets * self._ways
        #: Resident block per slot; None marks a free way.  (None, not a
        #: numeric sentinel: block addresses are unconstrained ints —
        #: stride prefetchers can legitimately probe negative blocks.)
        self._tags: List[Optional[int]] = [None] * n_slots
        self._flags = bytearray(n_slots)
        self._stamps = [0] * n_slots
        self._tick = 0
        replacement = self.config.replacement
        if replacement == "random":
            # One RNG per set when none is shared, matching the policy
            # objects the reference model builds (Random(0) each).
            self._rngs: Optional[List[random.Random]] = [
                rng if rng is not None else random.Random(0)
                for _ in range(self._n_sets)
            ]
        else:
            self._rngs = None
        # Two-way LRU/FIFO (the paper's L1-I geometry) collapses recency
        # to a single "most recent way" byte per set: the victim is the
        # other way.  The general stamp machinery serves the remaining
        # (associativity, policy) combinations.  _mru doubles as the
        # capability flag the engine checks before selecting its inlined
        # 2-way lane walk — both planes share this one structure.
        self._mru: Optional[bytearray] = None
        self._mru_on_access = False
        if self._ways == 2 and replacement in ("lru", "fifo"):
            self._mru = bytearray(self._n_sets)
            self._mru_on_access = replacement == "lru"
            self._stamp_on_access = False
            self._stamp_on_fill = False
        else:
            self._stamp_on_access = replacement == "lru"
            self._stamp_on_fill = replacement in ("lru", "fifo")

    def set_index(self, block: int) -> int:
        """Set an instruction block maps to."""
        return block % self._n_sets

    def contains(self, block: int) -> bool:
        """Presence probe with no side effects (used by prefetch filtering)."""
        tags = self._tags
        slot = (block % self._n_sets) * self._ways
        end = slot + self._ways
        while slot < end:
            if tags[slot] == block:
                return True
            slot += 1
        return False

    def access_fast(self, block: int, fill_on_miss: bool = True) -> int:
        """Demand access returning a result code; allocation-free.

        Returns :data:`MISS`, :data:`HIT` or :data:`HIT_PREFETCHED`,
        with exactly the state transitions and counter updates of
        :meth:`access`.  On a miss the block is filled immediately when
        ``fill_on_miss`` (the functional-model default); timing
        simulators pass False and manage fills themselves.
        """
        stats = self.stats
        stats.demand_accesses += 1
        index = block % self._n_sets
        slot = index * self._ways
        end = slot + self._ways
        tags = self._tags
        base = slot
        while slot < end:
            if tags[slot] == block:
                stats.demand_hits += 1
                if self._mru_on_access:
                    self._mru[index] = slot - base
                elif self._stamp_on_access:
                    self._tick = tick = self._tick + 1
                    self._stamps[slot] = tick
                flags = self._flags
                state = flags[slot]
                if state == _PREFETCHED:
                    flags[slot] = _PREFETCHED | _REFERENCED
                    stats.useful_prefetches += 1
                    return 2
                flags[slot] = state | _REFERENCED
                return 1
            slot += 1
        stats.demand_misses += 1
        if fill_on_miss:
            self._install(block, index, 0)
        return 0

    def access(self, block: int, fill_on_miss: bool = True) -> AccessResult:
        """Demand access for ``block``; updates replacement and counters.

        Object-API wrapper over :meth:`access_fast` for external
        callers; simulation hot loops use the code path directly.
        """
        code = self.access_fast(block, fill_on_miss)
        if code == 0:
            return AccessResult(hit=False, was_prefetched=False)
        return AccessResult(hit=True, was_prefetched=code == 2)

    def prefetch(self, block: int) -> bool:
        """Install ``block`` on behalf of a prefetcher.

        Probes first — "predictions first probe the instruction cache to
        confirm that the block is not present" (Section 4.3) — and
        returns True only if a fill actually happened.  The probe and
        the fill share one set lookup.
        """
        stats = self.stats
        stats.prefetch_requests += 1
        index = block % self._n_sets
        slot = index * self._ways
        end = slot + self._ways
        tags = self._tags
        while slot < end:
            if tags[slot] == block:
                stats.prefetch_drops_present += 1
                return False
            slot += 1
        self._install(block, index, _PREFETCHED)
        stats.prefetch_fills += 1
        return True

    def fill(self, block: int, prefetched: bool = False) -> Optional[int]:
        """Explicit fill used by timing simulators; returns the evicted
        block, if any."""
        index = block % self._n_sets
        slot = index * self._ways
        end = slot + self._ways
        tags = self._tags
        base = slot
        while slot < end:
            if tags[slot] == block:
                # Refill of a resident block: refresh recency only.
                if self._mru is not None:
                    self._mru[index] = slot - base
                elif self._stamp_on_fill:
                    self._tick = tick = self._tick + 1
                    self._stamps[slot] = tick
                return None
            slot += 1
        return self._install(block, index, _PREFETCHED if prefetched else 0)

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present (True if it was resident)."""
        tags = self._tags
        slot = (block % self._n_sets) * self._ways
        end = slot + self._ways
        while slot < end:
            if tags[slot] == block:
                tags[slot] = None
                self._flags[slot] = 0
                return True
            slot += 1
        return False

    def resident_blocks(self) -> List[int]:
        """All resident block addresses (unordered; for tests/tools)."""
        return [block for block in self._tags if block is not None]

    def _install(self, block: int, index: int, flag: int) -> Optional[int]:
        """Fill ``block`` into its set; the caller has established that
        the block is absent.  Returns the evicted block, if any."""
        base = index * self._ways
        end = base + self._ways
        tags = self._tags
        # Free ways fill lowest-index first (the reference model's
        # ``_free_ways_of`` order).
        slot = base
        while slot < end:
            if tags[slot] is None:
                break
            slot += 1
        evicted: Optional[int] = None
        mru = self._mru
        if slot == end:
            if mru is not None:
                slot = base + 1 - mru[index]
            else:
                rngs = self._rngs
                if rngs is not None:
                    slot = base + rngs[index].randrange(self._ways)
                else:
                    stamps = self._stamps
                    slot = base
                    best = stamps[base]
                    probe = base + 1
                    while probe < end:
                        if stamps[probe] < best:
                            best = stamps[probe]
                            slot = probe
                        probe += 1
            evicted = tags[slot]
            stats = self.stats
            stats.evictions += 1
            if self._flags[slot] == _PREFETCHED:
                stats.evicted_unused_prefetches += 1
        tags[slot] = block
        self._flags[slot] = flag
        if mru is not None:
            mru[index] = slot - base
        elif self._stamp_on_fill:
            self._tick = tick = self._tick + 1
            self._stamps[slot] = tick
        return evicted
