"""Instruction-cache substrate: set-associative model, MSHRs, line buffer."""

from .icache import AccessResult, InstructionCache
from .line_buffer import LineBuffer
from .mshr import MSHRFile, OutstandingFill
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .stats import CacheStats, CoverageAccounting

__all__ = [
    "AccessResult",
    "InstructionCache",
    "LineBuffer",
    "MSHRFile",
    "OutstandingFill",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "CacheStats",
    "CoverageAccounting",
]
