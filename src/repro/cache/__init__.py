"""Instruction-cache substrate: set-associative model, MSHRs, line buffer."""

from .icache import AccessResult, HIT, HIT_PREFETCHED, InstructionCache, MISS
from .line_buffer import LineBuffer
from .mshr import MSHRFile, OutstandingFill
from .reference import ReferenceInstructionCache
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .stats import CacheStats, CoverageAccounting

__all__ = [
    "AccessResult",
    "InstructionCache",
    "ReferenceInstructionCache",
    "MISS",
    "HIT",
    "HIT_PREFETCHED",
    "LineBuffer",
    "MSHRFile",
    "OutstandingFill",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "CacheStats",
    "CoverageAccounting",
]
