"""Core pipeline model: fetch engine with wrong-path noise, trace generation."""

from .frontend import FetchModel, FrontEndStats
from .tracegen import (
    DEFAULT_INSTRUCTIONS,
    GeneratedTrace,
    cached_trace,
    generate_trace,
    multi_core_traces,
    program_for,
)

__all__ = [
    "FetchModel",
    "FrontEndStats",
    "DEFAULT_INSTRUCTIONS",
    "GeneratedTrace",
    "cached_trace",
    "generate_trace",
    "multi_core_traces",
    "program_for",
]
