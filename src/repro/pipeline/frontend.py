"""Front-end fetch model: turns the architectural control stream into the
instruction-cache *access* stream, wrong-path noise included.

The executor (:mod:`repro.workloads.executor`) supplies ground-truth
control flow.  This model replays it through a branch predictor, BTB and
return-address stack.  Whenever the predictor disagrees with the actual
outcome, the model walks the *static* CFG along the predicted (wrong)
path for a bounded number of blocks — the squashed references a real
out-of-order core would have issued before resolving the misprediction
(Figure 1, right) — and injects them into the access stream flagged as
wrong-path.

Alignment invariant: the correct-path subsequence of the produced access
stream corresponds 1:1, in order, with the collapsed retire-order
records.  Coverage measurements rely on this to attribute each cache
outcome to its retire event without timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..branch.btb import BranchTargetBuffer, ReturnAddressStack
from ..branch.predictors import DirectionPredictor, make_direction_predictor
from ..common.addressing import INSTRUCTION_BYTES, block_bits_for
from ..common.config import BranchPredictorConfig, PipelineConfig
from ..common.rng import make_rng
from ..trace.records import FetchAccess, RetiredInstruction
from ..workloads.executor import ControlRecord
from ..workloads.program import BlockKind, SyntheticProgram


@dataclass(slots=True)
class FrontEndStats:
    """Branch-prediction and noise accounting for one trace generation."""

    conditional_branches: int = 0
    mispredicted_conditionals: int = 0
    ras_mispredictions: int = 0
    btb_misses: int = 0
    indirect_mispredictions: int = 0
    wrong_path_accesses: int = 0
    correct_path_accesses: int = 0

    def conditional_accuracy(self) -> float:
        """Direction-prediction accuracy over conditional branches."""
        if self.conditional_branches == 0:
            return 1.0
        return 1.0 - self.mispredicted_conditionals / self.conditional_branches


class FetchModel:
    """Replays control records, producing aligned access/retire streams."""

    def __init__(
        self,
        program: SyntheticProgram,
        pipeline: Optional[PipelineConfig] = None,
        branch_config: Optional[BranchPredictorConfig] = None,
        predictor_kind: str = "hybrid",
        block_bytes: int = 64,
        seed: int = 0,
    ) -> None:
        self.program = program
        self.pipeline = pipeline if pipeline is not None else PipelineConfig()
        self.branch_config = (branch_config if branch_config is not None
                              else BranchPredictorConfig())
        self.predictor_kind = predictor_kind
        self.block_bytes = block_bytes
        self.seed = seed
        self.stats = FrontEndStats()
        self._block_bits = block_bits_for(block_bytes)
        self._predictor: DirectionPredictor = make_direction_predictor(
            predictor_kind, self.branch_config)
        self._btb = BranchTargetBuffer(self.branch_config.btb_entries)
        self._ras = ReturnAddressStack(self.branch_config.ras_depth)
        self._rng: random.Random = make_rng(seed, "frontend", program.name)
        self._last_block: Optional[int] = None
        self._last_tl: Optional[int] = None

    # ------------------------------------------------------------------

    def process(self, records: Iterable[ControlRecord]
                ) -> Tuple[List[FetchAccess], List[RetiredInstruction], int]:
        """Consume the control stream; return (accesses, retires, instructions).

        ``retires`` is block-run collapsed (one record per change of
        cache block or trap level), matching what the PIF compactor sees.
        """
        accesses: List[FetchAccess] = []
        retires: List[RetiredInstruction] = []
        instructions = 0
        for record in records:
            instructions += record.instructions
            self._emit_correct_path(record, accesses, retires)
            wrong_path_start, wrong_path_blocks = self._resolve_terminator(record)
            if wrong_path_start is not None and wrong_path_blocks > 0:
                self._emit_wrong_path(record, wrong_path_start,
                                      wrong_path_blocks, accesses)
        return accesses, retires, instructions

    # ------------------------------------------------------------------

    def _emit_correct_path(self, record: ControlRecord,
                           accesses: List[FetchAccess],
                           retires: List[RetiredInstruction]) -> None:
        first_block = record.pc >> self._block_bits
        last_block = (
            record.pc + (record.instructions - 1) * INSTRUCTION_BYTES
        ) >> self._block_bits
        for block in range(first_block, last_block + 1):
            if block == self._last_block and record.trap_level == self._last_tl:
                continue
            pc = max(record.pc, block << self._block_bits)
            accesses.append(
                FetchAccess(block=block, pc=pc, trap_level=record.trap_level,
                            wrong_path=False))
            retires.append(RetiredInstruction(pc=pc, trap_level=record.trap_level))
            self.stats.correct_path_accesses += 1
            self._last_block = block
            self._last_tl = record.trap_level

    def _resolve_terminator(self, record: ControlRecord
                            ) -> Tuple[Optional[int], int]:
        """Run the predictors over the terminator; return the wrong-path
        start PC and length in blocks (or (None, 0) for correct
        prediction)."""
        kind = record.kind
        fallthrough = record.branch_pc + INSTRUCTION_BYTES
        if kind in (BlockKind.CONDITIONAL, BlockKind.LOOP):
            self.stats.conditional_branches += 1
            predicted_taken = self._predictor.predict(record.branch_pc)
            self._predictor.update(record.branch_pc, record.taken)
            if record.taken:
                self._btb.update(record.branch_pc, record.taken_target)
            if predicted_taken == record.taken:
                return None, 0
            self.stats.mispredicted_conditionals += 1
            start = record.taken_target if predicted_taken else fallthrough
            return start, self._draw_wrong_path_blocks()
        if kind == BlockKind.CALL:
            self._ras.push(fallthrough)
            predicted_target = self._btb.lookup(record.branch_pc)
            self._btb.update(record.branch_pc, record.next_pc)
            if predicted_target is None:
                self.stats.btb_misses += 1
                return fallthrough, 1
            if predicted_target != record.next_pc:
                self.stats.indirect_mispredictions += 1
                return predicted_target, self._draw_wrong_path_blocks()
            return None, 0
        if kind == BlockKind.JUMP:
            predicted_target = self._btb.lookup(record.branch_pc)
            self._btb.update(record.branch_pc, record.next_pc)
            if predicted_target is None:
                self.stats.btb_misses += 1
                return fallthrough, 1
            if predicted_target != record.next_pc:
                self.stats.indirect_mispredictions += 1
                return predicted_target, self._draw_wrong_path_blocks()
            return None, 0
        if kind == BlockKind.RETURN:
            predicted = self._ras.pop()
            if predicted == record.next_pc:
                return None, 0
            self.stats.ras_mispredictions += 1
            start = predicted if predicted is not None else fallthrough
            return start, self._draw_wrong_path_blocks()
        return None, 0

    def _draw_wrong_path_blocks(self) -> int:
        """Blocks fetched beyond a misprediction before the squash.

        The resolve latency is data-dependent and therefore arbitrary
        (Section 2.2); we draw it uniformly over the configured range
        and convert to blocks at roughly one block per four cycles of
        front-end run-ahead, bounded by the fetch queue.
        """
        latency = self._rng.randint(self.pipeline.min_resolve_latency,
                                    self.pipeline.max_resolve_latency)
        blocks = 1 + latency // 4
        return min(blocks, self.pipeline.fetch_queue_entries)

    def _emit_wrong_path(self, record: ControlRecord, start_pc: int,
                         n_blocks: int, accesses: List[FetchAccess]) -> None:
        """Walk the static CFG from ``start_pc`` along predicted paths."""
        emitted = 0
        pc = start_pc
        last_block: Optional[int] = None
        shadow_stack: List[int] = []
        guard = 0
        while emitted < n_blocks and guard < 4 * n_blocks + 16:
            guard += 1
            block_obj = self.program.block_at(pc)
            if block_obj is None:
                break
            first_block = pc >> self._block_bits
            remaining = block_obj.end_pc - pc
            last_pc = pc + remaining - INSTRUCTION_BYTES
            final_block = last_pc >> self._block_bits
            for block in range(first_block, final_block + 1):
                if block == last_block:
                    continue
                accesses.append(
                    FetchAccess(block=block,
                                pc=max(pc, block << self._block_bits),
                                trap_level=record.trap_level,
                                wrong_path=True))
                self.stats.wrong_path_accesses += 1
                last_block = block
                emitted += 1
                if emitted >= n_blocks:
                    return
            pc = self._speculative_successor(block_obj, shadow_stack)
            if pc is None:
                break

    def _speculative_successor(self, block_obj, shadow_stack: List[int]
                               ) -> Optional[int]:
        """Where the front-end would speculate next from ``block_obj``
        (predict-only: no predictor state is updated on the wrong path)."""
        kind = block_obj.kind
        if kind == BlockKind.FALLTHROUGH:
            return block_obj.end_pc
        if kind in (BlockKind.CONDITIONAL, BlockKind.LOOP):
            if self._predictor.predict(block_obj.last_pc):
                return block_obj.target
            return block_obj.end_pc
        if kind == BlockKind.JUMP:
            return block_obj.target
        if kind == BlockKind.CALL:
            shadow_stack.append(block_obj.end_pc)
            predicted = self._btb.lookup(block_obj.last_pc)
            return predicted if predicted is not None else block_obj.target
        if kind == BlockKind.RETURN:
            if shadow_stack:
                return shadow_stack.pop()
            # Speculating through a return beyond the misprediction
            # point: hardware would consume (and corrupt) the RAS.  Peek
            # the stale top — this is what sends wrong-path fetches into
            # *distant* code, the worst kind of access-stream noise.
            return self._ras.peek()
        return None
