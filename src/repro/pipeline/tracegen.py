"""High-level trace generation: workload name in, TraceBundle out.

This is the reproduction's stand-in for the paper's Flexus trace
collection (Section 5): it wires the synthetic program, the executor,
and the fetch model together and returns the paired access/retire
streams of one simulated core.

Programs and traces are cached per parameter tuple because every
experiment in the evaluation matrix replays the same six workloads.
The cache is two-level: an in-process ``lru_cache`` in front of the
content-addressed on-disk :class:`~repro.trace.store.TraceStore`, so
repeat runs (and every :class:`~repro.experiments.parallel.ExperimentPool`
worker process) load columnar ``.npz`` archives instead of re-executing
the generator.  Store round-trips are bit-identical to fresh
generation; set ``REPRO_TRACE_STORE=off`` to disable persistence.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Optional, Union

from ..common.config import SystemConfig
from ..common.profiling import STAGE_TRACE_LOAD, stage
from ..trace import replicate
from ..trace.bundle import TraceBundle
from ..trace.store import TraceKey, TraceStore
from ..workloads.executor import ProgramExecutor
from ..workloads.generator import build_program
from ..workloads.program import SyntheticProgram
from ..workloads.spec import WorkloadSpec, get_spec
from .frontend import FetchModel, FrontEndStats

#: Default trace length per core.  The paper uses 1 G instructions per
#: core; the synthetic workloads reach stream steady state far sooner.
DEFAULT_INSTRUCTIONS = 400_000


@dataclass(slots=True)
class GeneratedTrace:
    """A trace bundle plus the front-end statistics that produced it."""

    bundle: TraceBundle
    frontend_stats: FrontEndStats = field(default_factory=FrontEndStats)


@lru_cache(maxsize=32)
def _cached_program(name: str, seed: int) -> SyntheticProgram:
    return build_program(get_spec(name), seed)


def program_for(workload: Union[str, WorkloadSpec], seed: int) -> SyntheticProgram:
    """The synthetic program for a workload (cached for paper workloads)."""
    if isinstance(workload, WorkloadSpec):
        return build_program(workload, seed)
    return _cached_program(workload, seed)


def generate_trace(
    workload: Union[str, WorkloadSpec],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 42,
    core: int = 0,
    system: Optional[SystemConfig] = None,
    predictor_kind: str = "hybrid",
) -> GeneratedTrace:
    """Generate one core's trace for ``workload``.

    All cores share the program (the code segment); each core gets its
    own executor RNG stream, so per-core traces differ the way threads
    of one server process differ.
    """
    spec = get_spec(workload) if isinstance(workload, str) else workload
    cfg = system if system is not None else SystemConfig()
    program = program_for(workload, seed)
    executor = ProgramExecutor(program, spec, seed=seed, core=core)
    frontend = FetchModel(
        program=program,
        pipeline=cfg.pipeline,
        branch_config=cfg.branch,
        predictor_kind=predictor_kind,
        block_bytes=cfg.l1i.block_bytes,
        seed=seed + core,
    )
    accesses, retires, retired = frontend.process(executor.run(instructions))
    bundle = TraceBundle(
        workload=spec.name,
        core=core,
        seed=seed,
        block_bytes=cfg.l1i.block_bytes,
        retires=retires,
        accesses=accesses,
        instructions=retired,
    )
    return GeneratedTrace(bundle=bundle, frontend_stats=frontend.stats)


def _stats_from_extra(extra: Dict[str, Any]) -> FrontEndStats:
    """Rebuild front-end statistics from a store archive's metadata."""
    recorded = extra.get("frontend_stats")
    if not isinstance(recorded, dict):
        return FrontEndStats()
    known = FrontEndStats.__dataclass_fields__
    return FrontEndStats(**{name: int(value)
                            for name, value in recorded.items()
                            if name in known})


@lru_cache(maxsize=128)
def cached_trace(workload: str, instructions: int, seed: int,
                 core: int = 0) -> GeneratedTrace:
    """Memoized :func:`generate_trace` for the named paper workloads.

    Wall-clock spent here (store load or fresh generation; in-process
    ``lru_cache`` hits never enter) is attributed to the ``trace-load``
    stage when the runner's ``--profile`` collector is active.

    Experiments and benchmarks share traces through this entry point so
    the expensive generation cost is paid once per parameter tuple —
    first from the in-process cache, then from the on-disk
    :class:`~repro.trace.store.TraceStore` (keyed by the same tuple plus
    the generator-version hash), and only then by running the
    generator.  Freshly generated traces are persisted back to the
    store, front-end statistics included.
    """
    with stage(STAGE_TRACE_LOAD):
        store = TraceStore.from_env()
        key = TraceKey(workload=workload, instructions=instructions,
                       seed=seed, core=core)
        if store is not None:
            loaded = store.get(key)
            if loaded is None:
                # Local miss: before generating, consult the installed
                # replication fetcher (a --fetch-traces worker) — the
                # coordinator's verified archive beats regeneration.
                fetcher = replicate.active_fetcher()
                if fetcher is not None and fetcher.fetch(key, store):
                    loaded = store.get(key)
                    if loaded is None and fetcher.require_fetch:
                        raise replicate.ReplicationError(
                            f"replicated archive for {key} did not load "
                            "back, and a generator override forbids "
                            "local generation")
            if loaded is not None:
                bundle, extra = loaded
                return GeneratedTrace(bundle=bundle,
                                      frontend_stats=_stats_from_extra(extra))
        trace = generate_trace(workload, instructions=instructions, seed=seed,
                               core=core)
        if store is not None:
            store.put(key, trace.bundle,
                      extra={"frontend_stats": asdict(trace.frontend_stats)})
        return trace


def multi_core_traces(workload: str, instructions: int, seed: int,
                      cores: int) -> List[GeneratedTrace]:
    """Traces for ``cores`` independent cores of the same workload."""
    if cores <= 0:
        raise ValueError("cores must be positive")
    return [cached_trace(workload, instructions, seed, core)
            for core in range(cores)]
