"""History buffer and index table.

These two structures are shared by PIF (region-granularity records,
Section 4.2) and by the GHB-style baselines and trace-study oracles
(block-granularity records): a circular FIFO holding the recorded
stream, and a bounded set-associative index mapping a trigger key to the
most recent history position where its stream begins.

Positions are *monotonic sequence numbers*, not raw array slots: a
reader can always tell whether a position has been overwritten, which is
what bounds effective history depth (the Figure 9 right sweep).
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

from ..common.lru import LRUCache

R = TypeVar("R")


class HistoryBuffer(Generic[R]):
    """A circular buffer of records addressed by monotonic position.

    ``capacity=None`` gives the unbounded history of the trace studies
    (a growing list); bounded instances overwrite FIFO-style, which is
    what makes old streams unreachable (the Figure 9 right effect).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("history capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[R]] = [] if capacity is None else [None] * capacity
        self._next_position = 0

    @property
    def tail(self) -> int:
        """Position the next append will occupy."""
        return self._next_position

    @property
    def oldest_live(self) -> int:
        """Smallest position still resident."""
        if self.capacity is None:
            return 0
        return max(0, self._next_position - self.capacity)

    def append(self, record: R) -> int:
        """Store ``record``; return its position."""
        position = self._next_position
        if self.capacity is None:
            self._ring.append(record)
        else:
            self._ring[position % self.capacity] = record
        self._next_position += 1
        return position

    def read(self, position: int) -> Optional[R]:
        """The record at ``position``, or None if overwritten/unwritten."""
        if position < 0 or position >= self._next_position:
            return None
        if self.capacity is None:
            return self._ring[position]
        if position < self.oldest_live:
            return None
        return self._ring[position % self.capacity]

    def read_run(self, position: int, count: int) -> List[Tuple[int, R]]:
        """Up to ``count`` consecutive live records starting at ``position``.

        Returns (position, record) pairs; stops early at the tail or at
        an overwritten region.
        """
        values = self.read_run_values(position, count)
        return list(zip(range(position, position + len(values)), values))

    def read_run_values(self, position: int, count: int) -> List[R]:
        """Like :meth:`read_run` but records only, no position pairs —
        for consumers (the TIFS window refill) that re-read from a fixed
        pointer and do not need the positions materialized.

        Everything in ``[oldest_live, tail)`` is live by construction,
        so the run is carved out with ring slices rather than per-record
        :meth:`read` calls — this sits on the stream-replay hot path of
        every history consumer.
        """
        next_position = self._next_position
        if count <= 0 or position < 0 or position >= next_position:
            return []
        end = position + count
        if end > next_position:
            end = next_position
        capacity = self.capacity
        if capacity is None:
            return self._ring[position:end]
        if position < next_position - capacity:
            # The start has been overwritten: nothing is readable.
            return []
        start_slot = position % capacity
        length = end - position
        if start_slot + length <= capacity:
            return self._ring[start_slot:start_slot + length]
        return (self._ring[start_slot:]
                + self._ring[:start_slot + length - capacity])

    def __len__(self) -> int:
        if self.capacity is None:
            return self._next_position
        return min(self._next_position, self.capacity)


class IndexTable:
    """Trigger-key to history-position mapping.

    ``capacity=None`` models the unbounded index of the trace studies
    (Sections 2 and 3); bounded instances use a set-associative layout
    with per-set LRU, matching a cache-like hardware budget
    (Section 4.2).
    """

    def __init__(self, capacity: Optional[int] = None,
                 associativity: int = 8) -> None:
        if capacity is not None:
            if capacity <= 0 or associativity <= 0:
                raise ValueError("index geometry must be positive")
            if capacity % associativity:
                raise ValueError("capacity must divide evenly into ways")
        self.capacity = capacity
        self.associativity = associativity
        self.insertions = 0
        self.hits = 0
        self.misses = 0
        if capacity is None:
            self._unbounded: dict = {}
            self._sets: List[LRUCache[int, int]] = []
        else:
            self._unbounded = {}
            self._sets = [
                LRUCache(associativity)
                for _ in range(capacity // associativity)
            ]

    def _set_for(self, key: int) -> LRUCache[int, int]:
        # Trigger PCs are region heads and therefore strongly aligned
        # (often block-aligned, frequently sharing layout strides); a
        # plain low-bits index would leave most sets empty.  XOR-folding
        # the upper PC bits in spreads aligned keys over all sets.
        folded = (key >> 2) ^ (key >> 9) ^ (key >> 17)
        return self._sets[folded % len(self._sets)]

    def insert(self, key: int, position: int) -> None:
        """Map ``key`` to ``position`` (replacing any older mapping)."""
        self.insertions += 1
        if self.capacity is None:
            self._unbounded[key] = position
        else:
            self._set_for(key).put(key, position)

    def lookup(self, key: int) -> Optional[int]:
        """Most recent recorded position for ``key``, or None."""
        if self.capacity is None:
            position = self._unbounded.get(key)
        else:
            position = self._set_for(key).get(key)
        if position is None:
            self.misses += 1
        else:
            self.hits += 1
        return position

    def __len__(self) -> int:
        if self.capacity is None:
            return len(self._unbounded)
        return sum(len(s) for s in self._sets)
