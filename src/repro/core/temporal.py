"""Temporal compaction of region records (Section 4.1, Figure 5 steps 4-7).

Tight loops spanning several blocks re-emit the same spatial region
record once per iteration.  Recording every iteration would waste
history capacity *and* make streams less repetitive (the trip count is
data-dependent).  The temporal compactor holds the few most recent
region records; an incoming record that matches a tracked one — same
trigger and a bit-vector subset — is discarded and the tracked record
promoted to MRU; anything else is recorded to the history buffer.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.lru import LRUCache
from .spatial import SpatialRegionRecord


class TemporalCompactor:
    """An LRU filter of recently recorded spatial region records.

    ``entries=0`` disables temporal compaction entirely (the spatial-only
    ablation): every record passes through.
    """

    def __init__(self, entries: int = 4) -> None:
        if entries < 0:
            raise ValueError("entries cannot be negative")
        self.entries = entries
        self._recent: LRUCache[int, SpatialRegionRecord] = LRUCache(entries)
        self.discarded = 0
        self.passed = 0

    def feed(self, record: SpatialRegionRecord
             ) -> Optional[SpatialRegionRecord]:
        """Filter one record; return it if it should be recorded."""
        if self.entries == 0:
            self.passed += 1
            return record
        tracked = self._recent.peek(record.trigger_pc)
        if tracked is not None and record.bits & ~tracked.bits == 0:
            # Subset of a tracked record: a loop iteration re-covering
            # known blocks.  Discard and promote (Figure 5, step 7).
            self._recent.promote(record.trigger_pc)
            self.discarded += 1
            return None
        self._recent.put(record.trigger_pc, record)
        self.passed += 1
        return record

    def compaction_ratio(self) -> float:
        """Fraction of incoming records discarded."""
        total = self.discarded + self.passed
        return self.discarded / total if total else 0.0

    def tracked_records(self) -> List[SpatialRegionRecord]:
        """Current contents, MRU first (exposed for tests)."""
        return [record for _, record in self._recent.items_mru_first()]

    def reset(self) -> None:
        """Forget all tracked records and counters."""
        self._recent.clear()
        self.discarded = 0
        self.passed = 0
