"""Proactive Instruction Fetch: the paper's contribution, assembled.

PIF wires the four hardware structures of Figure 4 around the existing
L1-I:

* the **compactors** (spatial + temporal) watch the back-end's retire
  stream and produce compact spatial-region records;
* the **history buffer** logs the records in FIFO order;
* the **index table** maps trigger PCs to their most recent history
  position — inserted only for *tagged* triggers (fetches the
  prefetcher did not cover), so index entries mark stream heads;
* the **stream address buffers** replay recorded streams, watching the
  front-end's fetches and issuing prefetch requests ahead of them.

Trap-level separation (Section 2.3) is implemented as one complete
channel per trap level: handler streams are recorded and replayed
independently so they neither fragment application streams nor get
fragmented by them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.addressing import RegionGeometry
from ..common.config import PIFConfig
from ..prefetch.base import Prefetcher
from .history import HistoryBuffer, IndexTable
from .sab import SABFile
from .spatial import SpatialCompactor, SpatialRegionRecord
from .temporal import TemporalCompactor

#: Fraction of history/index capacity granted to each non-zero trap
#: level when trap-level separation is on.  Handler code is tiny
#: compared to application code; a narrow channel suffices.
_HANDLER_CHANNEL_FRACTION = 8


@dataclass(slots=True)
class PIFChannelStats:
    """Per-trap-level accounting."""

    regions_recorded: int = 0
    index_insertions: int = 0
    stream_allocations: int = 0
    window_advances: int = 0


class _Channel:
    """All PIF state for one trap level."""

    def __init__(self, config: PIFConfig, block_bytes: int,
                 history_entries: int, index_entries: Optional[int]) -> None:
        self.spatial = SpatialCompactor(config.geometry, block_bytes)
        self.temporal = TemporalCompactor(config.temporal_compactor_entries)
        self.history: HistoryBuffer[SpatialRegionRecord] = HistoryBuffer(
            history_entries)
        self.index = IndexTable(index_entries, config.index_associativity)
        self.sabs = SABFile(config.geometry, config.sab_count,
                            config.sab_window_regions, block_bytes)
        self.stats = PIFChannelStats()


class ProactiveInstructionFetch(Prefetcher):
    """The PIF prefetch engine (one per core, as in the paper).

    ``unbounded_index=True`` switches the index table to the unlimited
    variant used in the trace studies; the hardware configuration uses
    the bounded set-associative table from :class:`PIFConfig`.
    """

    def __init__(self, config: Optional[PIFConfig] = None,
                 block_bytes: int = 64,
                 separate_trap_levels: bool = True,
                 unbounded_index: bool = False) -> None:
        super().__init__()
        self.name = "pif"
        self.config = config if config is not None else PIFConfig()
        self.block_bytes = block_bytes
        self.separate_trap_levels = separate_trap_levels
        self.unbounded_index = unbounded_index
        self._channels: Dict[int, _Channel] = {}
        # Reusable per-engine scratch for the access hot path: raw
        # candidates land in _scratch, then are deduplicated into the
        # caller's buffer via _seen.  Both are cleared, never replaced.
        self._scratch: List[int] = []
        self._seen: set = set()

    # ------------------------------------------------------------------

    def _channel(self, trap_level: int) -> _Channel:
        key = trap_level if self.separate_trap_levels else 0
        channel = self._channels.get(key)
        if channel is None:
            shrink = _HANDLER_CHANNEL_FRACTION if key else 1
            history_entries = max(64, self.config.history_entries // shrink)
            if self.unbounded_index:
                index_entries: Optional[int] = None
            else:
                index_entries = max(
                    self.config.index_associativity,
                    self.config.index_entries // shrink,
                )
                # Keep the way count dividing evenly after shrinking.
                index_entries -= index_entries % self.config.index_associativity
                index_entries = max(index_entries,
                                    self.config.index_associativity)
            channel = _Channel(self.config, self.block_bytes,
                               history_entries, index_entries)
            self._channels[key] = channel
        return channel

    # ------------------------------------------------------------------
    # back-end side: record

    def on_retire(self, pc: int, trap_level: int, tagged: bool) -> None:
        """Feed one collapsed retire record through the compactors."""
        key = trap_level if self.separate_trap_levels else 0
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channel(trap_level)
        region = channel.spatial.feed(pc, tagged)
        if region is None:
            return
        self._record(channel, region)

    def _record(self, channel: _Channel, region: SpatialRegionRecord) -> None:
        survivor = channel.temporal.feed(region)
        if survivor is None:
            return
        position = channel.history.append(survivor)
        channel.stats.regions_recorded += 1
        if survivor.tagged:
            channel.index.insert(survivor.trigger_pc, position)
            channel.stats.index_insertions += 1

    # ------------------------------------------------------------------
    # front-end side: predict

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        """Advance active streams; on a tagged miss, try to start one.

        Stream allocation follows Section 4.3: the index table is probed
        only for *tagged misses* — fetches that both missed the L1-I and
        were not covered by a prefetch.  Tagged hits merely advance
        active windows; they never allocate.  A window match (even an
        empty head-region match) does not suppress allocation: a tagged
        miss inside a tracked window means the replay fell behind, and
        re-allocating from the most recent history position resyncs it.
        """
        out: List[int] = []
        self.on_demand_access_into(block, pc, trap_level, hit,
                                   was_prefetched, out)
        return out

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        """Buffer-reuse form of :meth:`on_demand_access`: deduplicated
        candidates are appended to ``out``; the count is returned.

        The SAB window probe is inlined here (the common case — no
        active stream covers the fetch — must cost a couple of dict
        probes, not a call chain), mirroring
        :meth:`~repro.core.sab.SABFile.advance_into` exactly.
        """
        key = trap_level if self.separate_trap_levels else 0
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channel(trap_level)
        scratch = self._scratch
        advanced = -1
        sabs = channel.sabs._sabs
        for position, sab in enumerate(sabs):
            slot = sab._block_map.get(block)
            if slot is None:
                continue
            sab.matches += 1
            if slot == 0:
                advanced = 0
            else:
                sab.window = sab.window[slot:]
                sab._rebuild_block_map()
                advanced = sab._refill_into(channel.history, scratch)
            if position:
                del sabs[position]
                sabs.insert(0, sab)
            break
        if advanced >= 0:
            channel.stats.window_advances += 1
        if not hit and not was_prefetched:
            self.stats.triggers += 1
            start = channel.index.lookup(pc)
            if start is not None:
                channel.sabs.allocate_into(channel.history, start, scratch)
                channel.stats.stream_allocations += 1
                self.stats.stream_allocations += 1
        if not scratch:
            return 0
        # Deduplicate preserving order (a region's trigger block often
        # also arrives via the window slide) so issue counters stay
        # meaningful; the cache would drop the duplicates anyway.
        seen = self._seen
        issued = 0
        for candidate in scratch:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
                issued += 1
        scratch.clear()
        seen.clear()
        self.stats.issued += issued
        return issued

    # ------------------------------------------------------------------

    def channel_stats(self) -> Dict[int, PIFChannelStats]:
        """Per-trap-level statistics snapshot."""
        return {level: channel.stats
                for level, channel in self._channels.items()}

    def compaction_ratio(self, trap_level: int = 0) -> float:
        """Temporal-compactor discard ratio for one channel."""
        channel = self._channels.get(
            trap_level if self.separate_trap_levels else 0)
        if channel is None:
            return 0.0
        return channel.temporal.compaction_ratio()

    def reset(self) -> None:
        super().reset()
        self._channels = {}
        self._scratch = []
        self._seen = set()

    @property
    def geometry(self) -> RegionGeometry:
        """The configured spatial-region geometry."""
        return self.config.geometry


class AccessOrderPIF(ProactiveInstructionFetch):
    """Ablation: the identical PIF hardware fed the *fetch-order* stream.

    Records from demand accesses (wrong-path noise included, since the
    front-end cannot distinguish it) instead of from retirement.  The
    coverage gap between this variant and the real PIF isolates the
    paper's central claim — that observing retirement, not fetch, is
    what makes the predictor nearly perfect — inside one design.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.name = "pif-access-order"

    def on_retire(self, pc: int, trap_level: int, tagged: bool) -> None:
        """Retirement is invisible to this variant."""

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        issued = super().on_demand_access_into(block, pc, trap_level, hit,
                                               was_prefetched, out)
        channel = self._channel(trap_level)
        region = channel.spatial.feed(pc, tagged=not was_prefetched)
        if region is not None:
            self._record(channel, region)
        return issued
