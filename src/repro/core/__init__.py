"""The paper's contribution: Proactive Instruction Fetch and its parts."""

from .history import HistoryBuffer, IndexTable
from .pif import PIFChannelStats, ProactiveInstructionFetch
from .sab import SABFile, StreamAddressBuffer
from .spatial import SpatialCompactor, SpatialRegionRecord, compact_stream
from .temporal import TemporalCompactor

__all__ = [
    "HistoryBuffer",
    "IndexTable",
    "PIFChannelStats",
    "ProactiveInstructionFetch",
    "SABFile",
    "StreamAddressBuffer",
    "SpatialCompactor",
    "SpatialRegionRecord",
    "compact_stream",
    "TemporalCompactor",
]
