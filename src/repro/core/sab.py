"""Stream address buffers (Section 4.3, Figure 6).

An SAB is one active replay of a recorded stream: it holds a window of
consecutive spatial-region records read from the history buffer, watches
the core's L1-I fetches, and advances its history pointer whenever a
fetch lands inside the window — issuing prefetches for the records that
slide into view.  A small file of SABs, most-recently-matched first,
supports several concurrent streams (the paper uses four, each tracking
seven regions).

The file is probed on *every* front-end fetch of every lane, so the
probe path follows the simulator's buffer-reuse protocol: the ``_into``
variants append candidate blocks to a caller-owned list and return a
count (−1 for "no stream matched"), allocating nothing on the
steady-state no-match path.  The list-returning methods remain as thin
wrappers for tests and external callers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.addressing import RegionGeometry
from .history import HistoryBuffer
from .spatial import SpatialRegionRecord


#: Entries kept in a shared record->blocks memo before it is dropped
#: wholesale (records recycle as the history wraps, so the memo cannot
#: grow without bound).
_BLOCK_CACHE_LIMIT = 1 << 16


class StreamAddressBuffer:
    """One active prediction stream.

    ``block_cache`` memoizes :meth:`SpatialRegionRecord.blocks` per
    record — the decode is pure (records are immutable tuples and the
    geometry is fixed per file) and windows re-read the same history
    records on every slide, so the owning :class:`SABFile` shares one
    cache across its SABs.  Cached lists are never mutated.
    """

    def __init__(self, geometry: RegionGeometry, window_regions: int,
                 block_bytes: int = 64,
                 block_cache: Optional[Dict[SpatialRegionRecord,
                                            List[int]]] = None) -> None:
        if window_regions <= 0:
            raise ValueError("window_regions must be positive")
        self.geometry = geometry
        self.window_regions = window_regions
        self.block_bytes = block_bytes
        self._block_cache = block_cache if block_cache is not None else {}
        #: Next history position to read when the window slides.
        self.pointer = 0
        #: Window entries: (history position, record).
        self.window: List[Tuple[int, SpatialRegionRecord]] = []
        #: block address -> index of the first window region covering it.
        self._block_map: Dict[int, int] = {}
        self.matches = 0
        self.regions_replayed = 0

    # ------------------------------------------------------------------

    def allocate(self, history: HistoryBuffer[SpatialRegionRecord],
                 start_position: int) -> List[int]:
        """Point the SAB at ``start_position`` and fill the window.

        Returns the block addresses of the initial window, in replay
        order — the initial prefetch burst.
        """
        blocks: List[int] = []
        self.allocate_into(history, start_position, blocks)
        return blocks

    def allocate_into(self, history: HistoryBuffer[SpatialRegionRecord],
                      start_position: int, out: List[int]) -> int:
        """Buffer-reuse form of :meth:`allocate`: the initial burst is
        appended to ``out``; returns the number of blocks appended."""
        self.pointer = start_position
        self.window = []
        self._block_map = {}
        return self._refill_into(history, out)

    def covers(self, block: int) -> bool:
        """True if ``block`` is inside the current window."""
        return block in self._block_map

    def advance(self, history: HistoryBuffer[SpatialRegionRecord],
                block: int) -> Optional[List[int]]:
        """Advance past ``block`` if it matches the window.

        Returns new prefetch candidates (possibly empty) on a match,
        None when the block is not part of this stream.
        """
        blocks: List[int] = []
        if self.advance_into(history, block, blocks) < 0:
            return None
        return blocks

    def advance_into(self, history: HistoryBuffer[SpatialRegionRecord],
                     block: int, out: List[int]) -> int:
        """Buffer-reuse form of :meth:`advance`.

        Returns −1 when ``block`` is not part of this stream; otherwise
        the number of new candidates appended to ``out`` (0 for a match
        in the head region, which does not slide the window).
        """
        slot = self._block_map.get(block)
        if slot is None:
            return -1
        self.matches += 1
        if slot == 0:
            # Still in the head region: the pointer does not move.
            return 0
        self.window = self.window[slot:]
        self._rebuild_block_map()
        return self._refill_into(history, out)

    # ------------------------------------------------------------------

    def _blocks_of(self, record: SpatialRegionRecord) -> List[int]:
        """Memoized record decode; the returned list is shared, read-only."""
        cache = self._block_cache
        blocks = cache.get(record)
        if blocks is None:
            if len(cache) >= _BLOCK_CACHE_LIMIT:
                cache.clear()
            blocks = record.blocks(self.geometry, self.block_bytes)
            cache[record] = blocks
        return blocks

    def _refill_into(self, history: HistoryBuffer[SpatialRegionRecord],
                     out: List[int]) -> int:
        """Read records at ``pointer`` until the window is full; append
        the blocks of the newly read records to ``out`` in replay order
        and return how many were appended."""
        needed = self.window_regions - len(self.window)
        if needed <= 0:
            return 0
        appended = 0
        run = history.read_run(self.pointer, needed)
        window = self.window
        block_map = self._block_map
        setdefault = block_map.setdefault
        for position, record in run:
            slot = len(window)
            window.append((position, record))
            self.regions_replayed += 1
            for block in self._blocks_of(record):
                setdefault(block, slot)
                out.append(block)
                appended += 1
        if run:
            self.pointer = run[-1][0] + 1
        return appended

    def _rebuild_block_map(self) -> None:
        self._block_map = block_map = {}
        setdefault = block_map.setdefault
        for slot, (_, record) in enumerate(self.window):
            for block in self._blocks_of(record):
                setdefault(block, slot)


class SABFile:
    """The file of concurrent SABs with LRU replacement.

    Stored as a plain list, most-recently-matched first — the file holds
    four entries, so ordered scans beat any keyed structure and the
    per-fetch probe allocates nothing.
    """

    def __init__(self, geometry: RegionGeometry, count: int = 4,
                 window_regions: int = 7, block_bytes: int = 64) -> None:
        if count <= 0:
            raise ValueError("need at least one SAB")
        self.geometry = geometry
        self.count = count
        self.window_regions = window_regions
        self.block_bytes = block_bytes
        self._sabs: List[StreamAddressBuffer] = []
        self._block_cache: Dict[SpatialRegionRecord, List[int]] = {}
        self.allocations = 0

    def advance(self, history: HistoryBuffer[SpatialRegionRecord],
                block: int) -> Optional[List[int]]:
        """Offer a fetched block to every active SAB (MRU first).

        Returns the new prefetch candidates from the first SAB that
        matches, or None when no active stream covers the block.
        """
        blocks: List[int] = []
        if self.advance_into(history, block, blocks) < 0:
            return None
        return blocks

    def advance_into(self, history: HistoryBuffer[SpatialRegionRecord],
                     block: int, out: List[int]) -> int:
        """Buffer-reuse form of :meth:`advance`: candidates from the
        first matching SAB are appended to ``out``.  Returns the count
        appended, or −1 when no active stream covers the block.

        The window probe is inlined over each SAB's block map — this
        runs once per front-end fetch of every PIF lane, and the common
        outcome is "no stream covers the block", which must cost no
        more than a few dict probes.
        """
        sabs = self._sabs
        for position, sab in enumerate(sabs):
            slot = sab._block_map.get(block)
            if slot is None:
                continue
            sab.matches += 1
            if slot == 0:
                # Still in the head region: the pointer does not move.
                appended = 0
            else:
                sab.window = sab.window[slot:]
                sab._rebuild_block_map()
                appended = sab._refill_into(history, out)
            if position:
                del sabs[position]
                sabs.insert(0, sab)
            return appended
        return -1

    def allocate(self, history: HistoryBuffer[SpatialRegionRecord],
                 start_position: int) -> List[int]:
        """Start a new stream, evicting the LRU SAB if the file is full."""
        blocks: List[int] = []
        self.allocate_into(history, start_position, blocks)
        return blocks

    def allocate_into(self, history: HistoryBuffer[SpatialRegionRecord],
                      start_position: int, out: List[int]) -> int:
        """Buffer-reuse form of :meth:`allocate`; the initial burst is
        appended to ``out`` and the count returned."""
        self.allocations += 1
        sab = StreamAddressBuffer(self.geometry, self.window_regions,
                                  self.block_bytes, self._block_cache)
        appended = sab.allocate_into(history, start_position, out)
        sabs = self._sabs
        if len(sabs) >= self.count:
            sabs.pop()
        sabs.insert(0, sab)
        return appended

    def active_streams(self) -> List[StreamAddressBuffer]:
        """Current SABs, MRU first (for tests and introspection)."""
        return list(self._sabs)

    def reset(self) -> None:
        """Drop all active streams."""
        self._sabs = []
