"""Stream address buffers (Section 4.3, Figure 6).

An SAB is one active replay of a recorded stream: it holds a window of
consecutive spatial-region records read from the history buffer, watches
the core's L1-I fetches, and advances its history pointer whenever a
fetch lands inside the window — issuing prefetches for the records that
slide into view.  A small LRU-managed file of SABs supports several
concurrent streams (the paper uses four, each tracking seven regions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.addressing import RegionGeometry
from ..common.lru import LRUCache
from .history import HistoryBuffer
from .spatial import SpatialRegionRecord


class StreamAddressBuffer:
    """One active prediction stream."""

    def __init__(self, geometry: RegionGeometry, window_regions: int,
                 block_bytes: int = 64) -> None:
        if window_regions <= 0:
            raise ValueError("window_regions must be positive")
        self.geometry = geometry
        self.window_regions = window_regions
        self.block_bytes = block_bytes
        #: Next history position to read when the window slides.
        self.pointer = 0
        #: Window entries: (history position, record).
        self.window: List[Tuple[int, SpatialRegionRecord]] = []
        #: block address -> index of the first window region covering it.
        self._block_map: Dict[int, int] = {}
        self.matches = 0
        self.regions_replayed = 0

    # ------------------------------------------------------------------

    def allocate(self, history: HistoryBuffer[SpatialRegionRecord],
                 start_position: int) -> List[int]:
        """Point the SAB at ``start_position`` and fill the window.

        Returns the block addresses of the initial window, in replay
        order — the initial prefetch burst.
        """
        self.pointer = start_position
        self.window = []
        self._block_map = {}
        return self._refill(history)

    def covers(self, block: int) -> bool:
        """True if ``block`` is inside the current window."""
        return block in self._block_map

    def advance(self, history: HistoryBuffer[SpatialRegionRecord],
                block: int) -> Optional[List[int]]:
        """Advance past ``block`` if it matches the window.

        Returns new prefetch candidates (possibly empty) on a match,
        None when the block is not part of this stream.
        """
        slot = self._block_map.get(block)
        if slot is None:
            return None
        self.matches += 1
        if slot == 0:
            # Still in the head region: the pointer does not move.
            return []
        self.window = self.window[slot:]
        self._rebuild_block_map()
        return self._refill(history)

    # ------------------------------------------------------------------

    def _refill(self, history: HistoryBuffer[SpatialRegionRecord]
                ) -> List[int]:
        """Read records at ``pointer`` until the window is full; return
        the blocks of the newly read records in replay order."""
        new_blocks: List[int] = []
        needed = self.window_regions - len(self.window)
        if needed <= 0:
            return new_blocks
        run = history.read_run(self.pointer, needed)
        for position, record in run:
            slot = len(self.window)
            self.window.append((position, record))
            self.regions_replayed += 1
            for block in record.blocks(self.geometry, self.block_bytes):
                self._block_map.setdefault(block, slot)
                new_blocks.append(block)
        if run:
            self.pointer = run[-1][0] + 1
        return new_blocks

    def _rebuild_block_map(self) -> None:
        self._block_map = {}
        for slot, (_, record) in enumerate(self.window):
            for block in record.blocks(self.geometry, self.block_bytes):
                self._block_map.setdefault(block, slot)


class SABFile:
    """The file of concurrent SABs with LRU replacement."""

    def __init__(self, geometry: RegionGeometry, count: int = 4,
                 window_regions: int = 7, block_bytes: int = 64) -> None:
        if count <= 0:
            raise ValueError("need at least one SAB")
        self.geometry = geometry
        self.count = count
        self.window_regions = window_regions
        self.block_bytes = block_bytes
        self._sabs: LRUCache[int, StreamAddressBuffer] = LRUCache(count)
        self._next_id = 0
        self.allocations = 0

    def advance(self, history: HistoryBuffer[SpatialRegionRecord],
                block: int) -> Optional[List[int]]:
        """Offer a fetched block to every active SAB (MRU first).

        Returns the new prefetch candidates from the first SAB that
        matches, or None when no active stream covers the block.
        """
        for sab_id, sab in list(self._sabs.items_mru_first()):
            result = sab.advance(history, block)
            if result is not None:
                self._sabs.promote(sab_id)
                return result
        return None

    def allocate(self, history: HistoryBuffer[SpatialRegionRecord],
                 start_position: int) -> List[int]:
        """Start a new stream, evicting the LRU SAB if the file is full."""
        self.allocations += 1
        sab = StreamAddressBuffer(self.geometry, self.window_regions,
                                  self.block_bytes)
        blocks = sab.allocate(history, start_position)
        self._next_id += 1
        self._sabs.put(self._next_id, sab)
        return blocks

    def active_streams(self) -> List[StreamAddressBuffer]:
        """Current SABs, MRU first (for tests and introspection)."""
        return [sab for _, sab in self._sabs.items_mru_first()]

    def reset(self) -> None:
        """Drop all active streams."""
        self._sabs.clear()
