"""Spatial compaction of the retire-order stream (Section 4.1, Figure 5).

The spatial compactor turns the block-run-collapsed retire stream into
*spatial region records*: a trigger PC plus a bit vector over the
neighbouring blocks of the region anchored at the trigger's block.  A
new region opens whenever a retired instruction falls outside the
current region's bounds; the closed region is emitted downstream (to the
temporal compactor).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple

from ..common.addressing import RegionGeometry, block_bits_for
from ..common.bitvec import BitVector


class SpatialRegionRecord(NamedTuple):
    """One history-buffer entry: a trigger and its region bit vector.

    ``bits`` is the raw mask of a :class:`BitVector` laid out by the
    owning geometry (preceding blocks first); storing the mask keeps the
    record a flat, hashable tuple.  ``tagged`` is the PIF fetch-stage
    tag of the *trigger* instruction — it decides index insertion.
    """

    trigger_pc: int
    bits: int
    tagged: bool

    def bit_vector(self, geometry: RegionGeometry) -> BitVector:
        """The record's bit vector under ``geometry``."""
        return BitVector(geometry.preceding + geometry.succeeding, self.bits)

    def trigger_block(self, block_bytes: int = 64) -> int:
        """Block address of the trigger instruction."""
        return self.trigger_pc >> block_bits_for(block_bytes)

    def blocks(self, geometry: RegionGeometry,
               block_bytes: int = 64) -> List[int]:
        """All encoded block addresses in replay order.

        The trigger block comes first, then bit-vector blocks left to
        right — the order the paper replays them (Section 4.3).
        """
        trigger = self.trigger_block(block_bytes)
        ordered = [trigger]
        vector = self.bit_vector(geometry)
        for index in vector.set_bits():
            ordered.append(trigger + geometry.offset_for_bit(index))
        return ordered

    def block_count(self, geometry: RegionGeometry) -> int:
        """Number of encoded blocks including the trigger."""
        return 1 + self.bit_vector(geometry).popcount()

    def is_subset_of(self, other: SpatialRegionRecord,
                     geometry: RegionGeometry) -> bool:
        """The temporal compactor's discard test: same trigger and the
        incoming vector adds no blocks."""
        if self.trigger_pc != other.trigger_pc:
            return False
        return self.bits & ~other.bits == 0


class SpatialCompactor:
    """Builds spatial region records from retired block-run PCs.

    Feed it the (pc, tagged) pairs of the collapsed retire stream; it
    returns a completed region record whenever one closes.  Call
    :meth:`flush` at end of trace to recover the open region.
    """

    def __init__(self, geometry: Optional[RegionGeometry] = None,
                 block_bytes: int = 64) -> None:
        self.geometry = geometry if geometry is not None else RegionGeometry()
        self._block_bits = block_bits_for(block_bytes)
        # The feed path runs once per retired block-run of every PIF
        # lane; the geometry tests are inlined over these three ints
        # (bit_index(offset) == offset + preceding, minus one for
        # positive offsets, which `offset > 0` folds in below).
        self._preceding = self.geometry.preceding
        self._succeeding = self.geometry.succeeding
        self._trigger_pc: Optional[int] = None
        self._trigger_block: int = 0
        self._bits: int = 0
        self._tagged: bool = False
        self.regions_emitted = 0

    def feed(self, pc: int, tagged: bool = False
             ) -> Optional[SpatialRegionRecord]:
        """Observe one retired block-run record; maybe emit a region."""
        block = pc >> self._block_bits
        if self._trigger_pc is None:
            self._open(pc, block, tagged)
            return None
        offset = block - self._trigger_block
        if offset == 0:
            # Re-entry of the trigger block (a tight loop inside one
            # block): nothing to record, the trigger is implicit.
            return None
        preceding = self._preceding
        if -preceding <= offset <= self._succeeding:
            if offset > 0:
                offset -= 1
            self._bits |= 1 << (offset + preceding)
            return None
        emitted = self._emit()
        self._open(pc, block, tagged)
        return emitted

    def flush(self) -> Optional[SpatialRegionRecord]:
        """Close and return the open region (None if none is open)."""
        if self._trigger_pc is None:
            return None
        emitted = self._emit()
        self._trigger_pc = None
        return emitted

    def _open(self, pc: int, block: int, tagged: bool) -> None:
        self._trigger_pc = pc
        self._trigger_block = block
        self._bits = 0
        self._tagged = tagged

    def _emit(self) -> SpatialRegionRecord:
        assert self._trigger_pc is not None
        self.regions_emitted += 1
        return SpatialRegionRecord(self._trigger_pc, self._bits, self._tagged)


def compact_stream(pcs: Iterable[Tuple[int, bool]],
                   geometry: Optional[RegionGeometry] = None,
                   block_bytes: int = 64) -> Iterator[SpatialRegionRecord]:
    """Run a whole (pc, tagged) stream through a fresh spatial compactor."""
    compactor = SpatialCompactor(geometry, block_bytes)
    for pc, tagged in pcs:
        record = compactor.feed(pc, tagged)
        if record is not None:
            yield record
    final = compactor.flush()
    if final is not None:
        yield final
