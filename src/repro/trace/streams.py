"""Stream transformations between the observation points of Figure 2.

The paper compares the predictability of four views of the same
execution: the cache *miss* stream, the front-end *access* stream, the
*retire* stream, and the retire stream *separated by trap level*.  The
helpers here derive each view from a :class:`~repro.trace.bundle.TraceBundle`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..common.addressing import DEFAULT_BLOCK_BYTES, block_of
from .records import FetchAccess, RetiredInstruction


def collapse_block_runs(
    pcs: Iterable[Tuple[int, int]], block_bytes: int = DEFAULT_BLOCK_BYTES
) -> Iterator[RetiredInstruction]:
    """Collapse consecutive (pc, trap_level) pairs in the same block.

    This is the first stage of the PIF compactor (Section 4.1) applied
    eagerly at trace-recording time.  A new record is emitted whenever
    the block address *or* the trap level changes — a handler entering
    mid-block must still start a fresh record because the RetireSep view
    files it in a different stream.
    """
    previous_block = None
    previous_tl = None
    for pc, trap_level in pcs:
        block = block_of(pc, block_bytes)
        if block != previous_block or trap_level != previous_tl:
            yield RetiredInstruction(pc, trap_level)
            previous_block = block
            previous_tl = trap_level


def retire_block_stream(
    retires: Sequence[RetiredInstruction], block_bytes: int = DEFAULT_BLOCK_BYTES
) -> List[int]:
    """Block addresses of a retire stream in order."""
    return [block_of(r.pc, block_bytes) for r in retires]


def access_block_stream(accesses: Sequence[FetchAccess]) -> List[int]:
    """Block addresses of a fetch/access stream in order (incl. wrong path)."""
    return [a.block for a in accesses]


def correct_path_block_stream(accesses: Sequence[FetchAccess]) -> List[int]:
    """Block addresses of the correct-path subsequence of an access stream."""
    return [a.block for a in accesses if not a.wrong_path]


def split_stream_by_trap_level(
    retires: Sequence[RetiredInstruction],
) -> List[Tuple[int, List[RetiredInstruction]]]:
    """Partition a retire stream into per-trap-level streams.

    Returns (trap_level, stream) pairs ordered by trap level.  Relative
    order *within* each level is preserved; interleaving across levels is
    deliberately discarded — that is the whole point of the RetireSep
    view (Section 2.3).
    """
    groups: dict = {}
    for record in retires:
        groups.setdefault(record.trap_level, []).append(record)
    return sorted(groups.items())


def unique_blocks(blocks: Iterable[int]) -> int:
    """Cardinality of a block stream's footprint."""
    return len(set(blocks))


def deduplicate_consecutive(blocks: Iterable[int]) -> Iterator[int]:
    """Drop immediate repeats from a block stream.

    Useful when deriving block streams from raw PC traces that have not
    been run-collapsed.
    """
    previous = object()
    for block in blocks:
        if block != previous:
            yield block
            previous = block
