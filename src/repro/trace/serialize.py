"""Compact on-disk format for trace bundles.

Traces are stored as ``.npz`` archives of parallel numpy arrays — a few
bytes per record instead of Python-object overhead — so a workload's
trace can be generated once and replayed across the whole experiment
matrix.  Since :class:`~repro.trace.bundle.TraceBundle` itself is
columnar, serialization is a direct dump of its arrays: no per-record
conversion in either direction.

Format (version 2): a JSON ``meta`` member (identity fields plus an
optional caller-supplied ``extra`` dictionary, e.g. front-end stats for
the trace store) and six arrays — ``retire_pc``/``retire_tl`` (int64 /
uint8) and ``access_block``/``access_pc``/``access_tl``/``access_wp``
(int64 / int64 / uint8 / bool).  Version 1 stored the same layout with
unsigned addresses and no ``extra``; it is rejected rather than
migrated.

All load-side failures — truncated or corrupt archives, missing arrays,
undecodable metadata, version mismatches — raise
:class:`TraceFormatError` (a ``ValueError``), so callers like the trace
store can treat any bad file as a cache miss instead of crashing.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from .bundle import TraceBundle

_FORMAT_VERSION = 2

#: Array members every valid archive must contain.
_ARRAY_KEYS = ("retire_pc", "retire_tl", "access_block", "access_pc",
               "access_tl", "access_wp")

#: Metadata fields every valid archive must carry.
_META_KEYS = ("version", "workload", "core", "seed", "block_bytes",
              "instructions")


class TraceFormatError(ValueError):
    """A trace archive is unreadable, incomplete, or version-mismatched."""


def save_bundle(bundle: TraceBundle, path: Union[str, Path],
                extra: Optional[Dict[str, Any]] = None) -> Path:
    """Serialize ``bundle`` to ``path`` (``.npz`` appended if missing).

    ``extra`` is an optional JSON-serializable dictionary stored in the
    metadata member and returned verbatim by :func:`load_bundle_extra`
    (the trace store uses it for front-end statistics).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": _FORMAT_VERSION,
        "workload": bundle.workload,
        "core": bundle.core,
        "seed": bundle.seed,
        "block_bytes": bundle.block_bytes,
        "instructions": bundle.instructions,
        "extra": extra if extra is not None else {},
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        retire_pc=bundle.retire_pc,
        retire_tl=bundle.retire_trap,
        access_block=bundle.access_block,
        access_pc=bundle.access_pc,
        access_tl=bundle.access_trap,
        access_wp=bundle.access_wrong_path,
    )
    return path


#: Subdirectory (of the target's directory) atomic writes stage into.
#: Kept out of the target directory itself so directory-level ``*.npz``
#: scans (the trace store's) can never observe half-written archives.
SCRATCH_DIR = ".tmp"


def save_bundle_atomic(bundle: TraceBundle, path: Union[str, Path],
                       extra: Optional[Dict[str, Any]] = None) -> Path:
    """Like :func:`save_bundle` but crash/concurrency-safe: the archive
    is staged under a ``.tmp/`` sibling directory and renamed into
    place, so readers (and parallel writers racing on the same key)
    never observe a partial file."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    staging = path.parent / SCRATCH_DIR
    staging.mkdir(parents=True, exist_ok=True)
    scratch = staging / f"{path.name}.{os.getpid()}.npz"
    try:
        save_bundle(bundle, scratch, extra=extra)
        os.replace(scratch, path)
    finally:
        scratch.unlink(missing_ok=True)
    return path


def load_bundle_extra(path: Union[str, Path]
                      ) -> Tuple[TraceBundle, Dict[str, Any]]:
    """Deserialize a bundle and its ``extra`` metadata dictionary.

    Raises :class:`TraceFormatError` on any malformed or
    version-mismatched archive.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            if "meta" not in archive.files:
                raise TraceFormatError(f"no metadata member in {path}")
            try:
                meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise TraceFormatError(
                    f"undecodable trace metadata in {path}: {error}"
                ) from error
            if meta.get("version") != _FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {meta.get('version')!r} "
                    f"in {path} (expected {_FORMAT_VERSION})"
                )
            missing = [key for key in _META_KEYS if key not in meta]
            if missing:
                raise TraceFormatError(
                    f"trace metadata in {path} lacks fields: {missing}")
            missing = [key for key in _ARRAY_KEYS if key not in archive.files]
            if missing:
                raise TraceFormatError(
                    f"trace archive {path} lacks arrays: {missing}")
            arrays = {key: archive[key] for key in _ARRAY_KEYS}
    except TraceFormatError:
        raise
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as error:
        # np.load raises BadZipFile/ValueError on corrupt archives and
        # EOFError/OSError on truncated members; fold them all into the
        # one recoverable error type.  A missing file stays FileNotFound.
        if isinstance(error, FileNotFoundError):
            raise
        raise TraceFormatError(
            f"unreadable trace archive {path}: {error}") from error
    if len(arrays["retire_pc"]) != len(arrays["retire_tl"]) or not (
            len(arrays["access_block"]) == len(arrays["access_pc"])
            == len(arrays["access_tl"]) == len(arrays["access_wp"])):
        raise TraceFormatError(f"column lengths disagree in {path}")
    bundle = TraceBundle.from_columns(
        workload=meta["workload"],
        core=meta["core"],
        seed=meta["seed"],
        block_bytes=meta["block_bytes"],
        retire_pc=arrays["retire_pc"],
        retire_trap=arrays["retire_tl"],
        access_block=arrays["access_block"],
        access_pc=arrays["access_pc"],
        access_trap=arrays["access_tl"],
        access_wrong_path=arrays["access_wp"],
        instructions=meta["instructions"],
    )
    return bundle, meta.get("extra", {})


def load_bundle(path: Union[str, Path]) -> TraceBundle:
    """Deserialize a bundle previously written by :func:`save_bundle`."""
    bundle, _ = load_bundle_extra(path)
    return bundle
