"""Compact on-disk format for trace bundles.

Traces are stored as ``.npz`` archives of parallel numpy arrays — a few
bytes per record instead of Python-object overhead — so a workload's
trace can be generated once and replayed across the whole experiment
matrix.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .bundle import TraceBundle
from .records import FetchAccess, RetiredInstruction

_FORMAT_VERSION = 1


def save_bundle(bundle: TraceBundle, path: Union[str, Path]) -> Path:
    """Serialize ``bundle`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": _FORMAT_VERSION,
        "workload": bundle.workload,
        "core": bundle.core,
        "seed": bundle.seed,
        "block_bytes": bundle.block_bytes,
        "instructions": bundle.instructions,
    }
    retire_pc = np.fromiter((r.pc for r in bundle.retires), dtype=np.uint64,
                            count=len(bundle.retires))
    retire_tl = np.fromiter((r.trap_level for r in bundle.retires), dtype=np.uint8,
                            count=len(bundle.retires))
    access_block = np.fromiter((a.block for a in bundle.accesses), dtype=np.uint64,
                               count=len(bundle.accesses))
    access_pc = np.fromiter((a.pc for a in bundle.accesses), dtype=np.uint64,
                            count=len(bundle.accesses))
    access_tl = np.fromiter((a.trap_level for a in bundle.accesses), dtype=np.uint8,
                            count=len(bundle.accesses))
    access_wp = np.fromiter((a.wrong_path for a in bundle.accesses), dtype=np.bool_,
                            count=len(bundle.accesses))
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        retire_pc=retire_pc,
        retire_tl=retire_tl,
        access_block=access_block,
        access_pc=access_pc,
        access_tl=access_tl,
        access_wp=access_wp,
    )
    return path


def load_bundle(path: Union[str, Path]) -> TraceBundle:
    """Deserialize a bundle previously written by :func:`save_bundle`."""
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')!r} "
                f"in {path}"
            )
        retires = [
            RetiredInstruction(int(pc), int(tl))
            for pc, tl in zip(archive["retire_pc"], archive["retire_tl"])
        ]
        accesses = [
            FetchAccess(int(block), int(pc), int(tl), bool(wp))
            for block, pc, tl, wp in zip(
                archive["access_block"],
                archive["access_pc"],
                archive["access_tl"],
                archive["access_wp"],
            )
        ]
    bundle = TraceBundle(
        workload=meta["workload"],
        core=meta["core"],
        seed=meta["seed"],
        block_bytes=meta["block_bytes"],
        retires=retires,
        accesses=accesses,
        instructions=meta["instructions"],
    )
    return bundle
