"""Compact on-disk format for trace bundles.

Traces are stored as ``.npz`` archives of parallel numpy arrays — a few
bytes per record instead of Python-object overhead — so a workload's
trace can be generated once and replayed across the whole experiment
matrix.  Since :class:`~repro.trace.bundle.TraceBundle` itself is
columnar, serialization is a direct dump of its arrays: no per-record
conversion in either direction.

Format (version 3): an *uncompressed* (``ZIP_STORED``) ``.npz`` archive
with a JSON ``meta`` member (identity fields plus an optional
caller-supplied ``extra`` dictionary, e.g. front-end stats for the
trace store) and six arrays — ``retire_pc``/``retire_tl`` (int64 /
uint8) and ``access_block``/``access_pc``/``access_tl``/``access_wp``
(int64 / int64 / uint8 / bool).  Because the members are stored flat,
each column's ``.npy`` payload sits contiguously in the file and is
loaded as a **read-only memory map** (:func:`_mmap_member`): worker
processes replaying the same archive share the OS page cache instead of
each inflating a compressed copy, and loads cost page faults, not
decompression.  Set ``REPRO_TRACE_MMAP=off`` to fall back to plain
in-memory loading (the arrays are then writable copies).

Version 2 (the compressed PR 2 layout, same members) remains fully
readable — it simply never maps.  Version 1 stored unsigned addresses
and is rejected rather than migrated.  :func:`save_bundle` accepts
``format_version=2`` for compatibility tooling and tests.

All load-side failures — truncated or corrupt archives, short or
misaligned members, missing arrays, undecodable metadata, version
mismatches — raise :class:`TraceFormatError` (a ``ValueError``), so
callers like the trace store can treat any bad file as a cache miss
instead of crashing.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zipfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..faults import fire
from .bundle import TraceBundle

_FORMAT_VERSION = 3

#: Format versions the loader accepts.
_READABLE_VERSIONS = (2, 3)

#: Array members every valid archive must contain.
_ARRAY_KEYS = ("retire_pc", "retire_tl", "access_block", "access_pc",
               "access_tl", "access_wp")

#: Metadata fields every valid archive must carry.
_META_KEYS = ("version", "workload", "core", "seed", "block_bytes",
              "instructions")

#: Environment variable disabling memory-mapped column loading.
MMAP_ENV = "REPRO_TRACE_MMAP"

#: ``REPRO_TRACE_MMAP`` values that disable mapping.
_MMAP_OFF_VALUES = frozenset({"0", "off", "none", "disabled", "false"})


class TraceFormatError(ValueError):
    """A trace archive is unreadable, incomplete, or version-mismatched."""


def mmap_enabled() -> bool:
    """Whether v3 archives should be loaded as read-only memory maps
    (the default; ``REPRO_TRACE_MMAP=off`` disables)."""
    value = os.environ.get(MMAP_ENV)
    if value is None:
        return True
    return value.strip().lower() not in _MMAP_OFF_VALUES


def save_bundle(bundle: TraceBundle, path: Union[str, Path],
                extra: Optional[Dict[str, Any]] = None,
                format_version: int = _FORMAT_VERSION) -> Path:
    """Serialize ``bundle`` to ``path`` (``.npz`` appended if missing).

    ``extra`` is an optional JSON-serializable dictionary stored in the
    metadata member and returned verbatim by :func:`load_bundle_extra`
    (the trace store uses it for front-end statistics).
    ``format_version`` selects the on-disk layout: 3 (uncompressed,
    mmap-loadable — the default) or 2 (compressed, for compatibility
    tooling and the read-compat tests).
    """
    if format_version not in _READABLE_VERSIONS:
        raise ValueError(f"cannot write format version {format_version}; "
                         f"choices: {_READABLE_VERSIONS}")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": format_version,
        "workload": bundle.workload,
        "core": bundle.core,
        "seed": bundle.seed,
        "block_bytes": bundle.block_bytes,
        "instructions": bundle.instructions,
        "extra": extra if extra is not None else {},
    }
    writer = np.savez if format_version >= 3 else np.savez_compressed
    writer(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        retire_pc=bundle.retire_pc,
        retire_tl=bundle.retire_trap,
        access_block=bundle.access_block,
        access_pc=bundle.access_pc,
        access_tl=bundle.access_trap,
        access_wp=bundle.access_wrong_path,
    )
    return path


#: Subdirectory (of the target's directory) atomic writes stage into.
#: Kept out of the target directory itself so directory-level ``*.npz``
#: scans (the trace store's) can never observe half-written archives.
SCRATCH_DIR = ".tmp"


def save_bundle_atomic(bundle: TraceBundle, path: Union[str, Path],
                       extra: Optional[Dict[str, Any]] = None,
                       format_version: int = _FORMAT_VERSION) -> Path:
    """Like :func:`save_bundle` but crash/concurrency-safe: the archive
    is staged under a ``.tmp/`` sibling directory and renamed into
    place, so readers (and parallel writers racing on the same key)
    never observe a partial file."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    staging = path.parent / SCRATCH_DIR
    staging.mkdir(parents=True, exist_ok=True)
    scratch = staging / f"{path.name}.{os.getpid()}.npz"
    try:
        save_bundle(bundle, scratch, extra=extra,
                    format_version=format_version)
        os.replace(scratch, path)
    finally:
        scratch.unlink(missing_ok=True)
    return path


#: Bytes hashed per read when digesting an archive file.
_HASH_CHUNK_BYTES = 1 << 20


def archive_sha256(path: Union[str, Path]) -> str:
    """Streamed SHA-256 over an archive's file bytes.

    This is the *transfer* integrity hash the replication tier verifies
    fetched archives against (:mod:`repro.trace.replicate`) — the raw
    on-disk bytes, not the semantic column digest of
    :meth:`repro.trace.bundle.TraceBundle.content_hash` — so a replica
    admitted under this hash is byte-identical to the coordinator's
    copy, mmap offsets and all.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(_HASH_CHUNK_BYTES)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


#: Size of a local zip file header up to the variable-length fields.
_LOCAL_HEADER_FMT = "<4s5H3I2H"
_LOCAL_HEADER_SIZE = struct.calcsize(_LOCAL_HEADER_FMT)
_LOCAL_HEADER_MAGIC = b"PK\x03\x04"


def _mmap_member(path: Path, info: zipfile.ZipInfo,
                 file_size: int) -> np.ndarray:
    """Map one stored (uncompressed) ``.npy`` member as a read-only
    array.

    The member's payload offset is recovered from its *local* zip
    header (central-directory offsets do not include the local header's
    variable-length name/extra fields), then the standard ``.npy``
    header is parsed in place and the data region handed to
    ``np.memmap``.  Every structural surprise — compressed member,
    header mismatch, payload extending past EOF (a truncated archive
    whose central directory survived) — raises :class:`TraceFormatError`.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        raise TraceFormatError(
            f"member {info.filename!r} in {path} is compressed; "
            "v3 members must be stored flat")
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        raw = handle.read(_LOCAL_HEADER_SIZE)
        if len(raw) != _LOCAL_HEADER_SIZE:
            raise TraceFormatError(f"truncated local header in {path}")
        fields = struct.unpack(_LOCAL_HEADER_FMT, raw)
        if fields[0] != _LOCAL_HEADER_MAGIC:
            raise TraceFormatError(f"bad local header magic in {path}")
        name_length, extra_length = fields[9], fields[10]
        payload_offset = (info.header_offset + _LOCAL_HEADER_SIZE
                          + name_length + extra_length)
        handle.seek(payload_offset)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                handle)
        else:
            raise TraceFormatError(
                f"unsupported npy version {version} in {path}")
        data_offset = handle.tell()
    if fortran or len(shape) != 1:
        raise TraceFormatError(
            f"member {info.filename!r} in {path} is not a flat column")
    count = shape[0]
    end = data_offset + count * dtype.itemsize
    if end > file_size or end > payload_offset + info.file_size:
        raise TraceFormatError(
            f"member {info.filename!r} in {path} is truncated")
    if count == 0:
        return np.empty(0, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="r", offset=data_offset,
                     shape=(count,))


def _read_meta(archive: zipfile.ZipFile, path: Path
               ) -> Tuple[Dict[str, str], Dict[str, Any]]:
    """(member stem -> member name, decoded+validated metadata) for an
    open archive — one pass shared by the mmap and copy load paths."""
    names = {Path(name).stem: name for name in archive.namelist()}
    if "meta" not in names:
        raise TraceFormatError(f"no metadata member in {path}")
    try:
        meta = json.loads(
            bytes(np.load(archive.open(names["meta"]))).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as error:
        raise TraceFormatError(
            f"undecodable trace metadata in {path}: {error}") from error
    if meta.get("version") not in _READABLE_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace format version {meta.get('version')!r} "
            f"in {path} (expected one of {_READABLE_VERSIONS})")
    missing = [key for key in _ARRAY_KEYS if key not in names]
    if missing:
        raise TraceFormatError(
            f"trace archive {path} lacks arrays: {missing}")
    return names, meta


def load_bundle_extra(path: Union[str, Path],
                      mmap: Optional[bool] = None
                      ) -> Tuple[TraceBundle, Dict[str, Any]]:
    """Deserialize a bundle and its ``extra`` metadata dictionary.

    v3 archives are loaded as read-only memory maps when ``mmap`` is
    true (default: :func:`mmap_enabled`, i.e. on unless
    ``REPRO_TRACE_MMAP=off``); v2 archives always load in memory.
    Raises :class:`TraceFormatError` on any malformed or
    version-mismatched archive.
    """
    path = Path(path)
    fire("trace.open", path.name)
    use_mmap = mmap_enabled() if mmap is None else mmap
    try:
        with zipfile.ZipFile(path) as archive:
            names, meta = _read_meta(archive, path)
            if meta["version"] >= 3 and use_mmap:
                file_size = path.stat().st_size
                arrays: Optional[Dict[str, np.ndarray]] = {
                    key: _mmap_member(path, archive.getinfo(names[key]),
                                      file_size)
                    for key in _ARRAY_KEYS
                }
            else:
                arrays = None
        if arrays is None:
            # Compressed v2 (or mapping disabled): inflate in memory.
            with np.load(path) as npz:
                arrays = {key: npz[key] for key in _ARRAY_KEYS}
    except TraceFormatError:
        raise
    except (zipfile.BadZipFile, KeyError, ValueError, EOFError,
            OSError) as error:
        # np.load/zipfile raise BadZipFile/ValueError on corrupt
        # archives and EOFError/OSError on truncated members; fold them
        # all into the one recoverable error type.  A missing file
        # stays FileNotFound.
        if isinstance(error, FileNotFoundError):
            raise
        raise TraceFormatError(
            f"unreadable trace archive {path}: {error}") from error
    missing = [key for key in _META_KEYS if key not in meta]
    if missing:
        raise TraceFormatError(
            f"trace metadata in {path} lacks fields: {missing}")
    if len(arrays["retire_pc"]) != len(arrays["retire_tl"]) or not (
            len(arrays["access_block"]) == len(arrays["access_pc"])
            == len(arrays["access_tl"]) == len(arrays["access_wp"])):
        raise TraceFormatError(f"column lengths disagree in {path}")
    bundle = TraceBundle.from_columns(
        workload=meta["workload"],
        core=meta["core"],
        seed=meta["seed"],
        block_bytes=meta["block_bytes"],
        retire_pc=arrays["retire_pc"],
        retire_trap=arrays["retire_tl"],
        access_block=arrays["access_block"],
        access_pc=arrays["access_pc"],
        access_trap=arrays["access_tl"],
        access_wrong_path=arrays["access_wp"],
        instructions=meta["instructions"],
    )
    return bundle, meta.get("extra", {})


def load_bundle(path: Union[str, Path],
                mmap: Optional[bool] = None) -> TraceBundle:
    """Deserialize a bundle previously written by :func:`save_bundle`."""
    bundle, _ = load_bundle_extra(path, mmap=mmap)
    return bundle
