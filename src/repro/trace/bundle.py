"""A trace bundle: everything one simulated core produced.

Experiments consume traces, not live pipelines, so that (a) the same
trace can be replayed against many prefetcher configurations — the
paper's own methodology ("the processor behavior is undisturbed by the
experiment", Section 2.1) — and (b) trace generation cost is paid once
per workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..common.addressing import DEFAULT_BLOCK_BYTES, block_of
from .records import FetchAccess, RetiredInstruction, TL_APPLICATION


@dataclass(slots=True)
class TraceBundle:
    """The paired access/retire streams of one core plus provenance.

    Attributes:
        workload: name of the generating workload model.
        core: index of the simulated core (0-based).
        seed: root RNG seed the trace was generated from.
        block_bytes: cache-block size the access stream was produced at.
        retires: correct-path retire-order records (block-run collapsed).
        accesses: front-end access stream including wrong-path noise.
        instructions: number of *instructions* retired (pre-collapse),
            kept for UIPC computation.
    """

    workload: str
    core: int
    seed: int
    block_bytes: int = DEFAULT_BLOCK_BYTES
    retires: List[RetiredInstruction] = field(default_factory=list)
    accesses: List[FetchAccess] = field(default_factory=list)
    instructions: int = 0

    def retire_blocks(self) -> List[int]:
        """Block addresses of the retire stream, in order."""
        return [block_of(r.pc, self.block_bytes) for r in self.retires]

    def correct_path_accesses(self) -> List[FetchAccess]:
        """The access stream with wrong-path requests removed."""
        return [a for a in self.accesses if not a.wrong_path]

    def application_retires(self) -> List[RetiredInstruction]:
        """Retire records at trap level 0 only."""
        return [r for r in self.retires if r.trap_level == TL_APPLICATION]

    def wrong_path_fraction(self) -> float:
        """Fraction of front-end accesses that were wrong-path."""
        if not self.accesses:
            return 0.0
        wrong = sum(1 for a in self.accesses if a.wrong_path)
        return wrong / len(self.accesses)

    def footprint_blocks(self) -> int:
        """Number of distinct correct-path instruction blocks touched."""
        return len({block_of(r.pc, self.block_bytes) for r in self.retires})

    def split_by_trap_level(self) -> Dict[int, List[RetiredInstruction]]:
        """Retire records grouped by trap level (the RetireSep view)."""
        groups: Dict[int, List[RetiredInstruction]] = {}
        for record in self.retires:
            groups.setdefault(record.trap_level, []).append(record)
        return groups

    def validate(self) -> None:
        """Raise ValueError if the bundle violates basic invariants."""
        if self.instructions < len(self.retires):
            raise ValueError(
                "instruction count cannot be below the collapsed retire count: "
                f"{self.instructions} < {len(self.retires)}"
            )
        for record in self.retires:
            if record.pc < 0:
                raise ValueError(f"negative PC in retire stream: {record}")
        previous_block = None
        for record in self.retires:
            block = block_of(record.pc, self.block_bytes)
            if block == previous_block:
                raise ValueError(
                    "retire stream is not block-run collapsed at "
                    f"pc={record.pc:#x}"
                )
            previous_block = block
        for access in self.accesses:
            if access.block != block_of(access.pc, self.block_bytes):
                raise ValueError(
                    f"access block/pc mismatch: {access!r} with "
                    f"block_bytes={self.block_bytes}"
                )


def merge_statistics(bundles: Sequence[TraceBundle]) -> Dict[str, float]:
    """Aggregate headline statistics over per-core bundles.

    Returns a dictionary with total instruction count, mean wrong-path
    fraction, and the union instruction footprint in blocks — the
    numbers experiments print alongside their results for sanity
    checking against the paper's workload characterization.
    """
    if not bundles:
        raise ValueError("need at least one bundle")
    footprint: set = set()
    instructions = 0
    wrong_path = 0.0
    for bundle in bundles:
        instructions += bundle.instructions
        wrong_path += bundle.wrong_path_fraction()
        block_bytes = bundle.block_bytes
        footprint.update(block_of(r.pc, block_bytes) for r in bundle.retires)
    return {
        "instructions": float(instructions),
        "mean_wrong_path_fraction": wrong_path / len(bundles),
        "union_footprint_blocks": float(len(footprint)),
    }
