"""A trace bundle: everything one simulated core produced.

Experiments consume traces, not live pipelines, so that (a) the same
trace can be replayed against many prefetcher configurations — the
paper's own methodology ("the processor behavior is undisturbed by the
experiment", Section 2.1) — and (b) trace generation cost is paid once
per workload.

Storage is *columnar*: the two record streams live as parallel numpy
arrays (one per field), a few bytes per record instead of Python-object
overhead, ready to be saved/loaded as ``.npz`` archives
(:mod:`repro.trace.serialize`) and replayed with vectorized passes
(:mod:`repro.sim.baseline`, :mod:`repro.trace.stats`).  The classic
object views — ``bundle.retires`` / ``bundle.accesses`` as lists of
:class:`RetiredInstruction` / :class:`FetchAccess` — are materialized
lazily on first use and cached, so consumers that walk records keep
working unchanged.  The views are snapshots of the columns: mutating a
materialized list does not write back into the arrays.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.addressing import DEFAULT_BLOCK_BYTES, block_bits_for
from .records import (
    FetchAccess,
    RetiredInstruction,
    TL_APPLICATION,
    access_columns,
    accesses_from_columns,
    retire_columns,
    retires_from_columns,
)


class TraceBundle:
    """The paired access/retire streams of one core plus provenance.

    Attributes:
        workload: name of the generating workload model.
        core: index of the simulated core (0-based).
        seed: root RNG seed the trace was generated from.
        block_bytes: cache-block size the access stream was produced at.
        instructions: number of *instructions* retired (pre-collapse),
            kept for UIPC computation.
        retire_pc / retire_trap: retire-stream columns (block-run
            collapsed), ``int64`` / ``uint8``.
        access_block / access_pc / access_trap / access_wrong_path:
            access-stream columns including wrong-path noise,
            ``int64`` / ``int64`` / ``uint8`` / ``bool``.
    """

    __slots__ = ("workload", "core", "seed", "block_bytes", "instructions",
                 "retire_pc", "retire_trap",
                 "access_block", "access_pc", "access_trap",
                 "access_wrong_path", "_retires_view", "_accesses_view",
                 "_derived")

    def __init__(self, workload: str, core: int, seed: int,
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 retires: Sequence[RetiredInstruction] = (),
                 accesses: Sequence[FetchAccess] = (),
                 instructions: int = 0) -> None:
        self.workload = workload
        self.core = core
        self.seed = seed
        self.block_bytes = block_bytes
        self.instructions = instructions
        self.retire_pc, self.retire_trap = retire_columns(retires)
        (self.access_block, self.access_pc, self.access_trap,
         self.access_wrong_path) = access_columns(accesses)
        self._retires_view: Optional[List[RetiredInstruction]] = None
        self._accesses_view: Optional[List[FetchAccess]] = None
        self._derived: Dict[Any, Any] = {}

    @classmethod
    def from_columns(cls, workload: str, core: int, seed: int,
                     block_bytes: int,
                     retire_pc: np.ndarray, retire_trap: np.ndarray,
                     access_block: np.ndarray, access_pc: np.ndarray,
                     access_trap: np.ndarray, access_wrong_path: np.ndarray,
                     instructions: int = 0) -> TraceBundle:
        """Build a bundle directly from its columns (no record objects)."""
        bundle = cls(workload=workload, core=core, seed=seed,
                     block_bytes=block_bytes, instructions=instructions)
        bundle.retire_pc = np.asarray(retire_pc, dtype=np.int64)
        bundle.retire_trap = np.asarray(retire_trap, dtype=np.uint8)
        bundle.access_block = np.asarray(access_block, dtype=np.int64)
        bundle.access_pc = np.asarray(access_pc, dtype=np.int64)
        bundle.access_trap = np.asarray(access_trap, dtype=np.uint8)
        bundle.access_wrong_path = np.asarray(access_wrong_path,
                                              dtype=np.bool_)
        return bundle

    def __repr__(self) -> str:
        return (f"TraceBundle(workload={self.workload!r}, core={self.core}, "
                f"seed={self.seed}, block_bytes={self.block_bytes}, "
                f"retires={len(self.retire_pc)}, "
                f"accesses={len(self.access_block)}, "
                f"instructions={self.instructions})")

    # ------------------------------------------------------------------
    # Lazy object views (compatibility surface for record-walking code).

    @property
    def retires(self) -> List[RetiredInstruction]:
        """Correct-path retire-order records (block-run collapsed)."""
        if self._retires_view is None:
            self._retires_view = retires_from_columns(self.retire_pc,
                                                      self.retire_trap)
        return self._retires_view

    @property
    def accesses(self) -> List[FetchAccess]:
        """Front-end access stream including wrong-path noise."""
        if self._accesses_view is None:
            self._accesses_view = accesses_from_columns(
                self.access_block, self.access_pc, self.access_trap,
                self.access_wrong_path)
        return self._accesses_view

    # ------------------------------------------------------------------
    # Derived-value cache (sweep-scale execution engine support).

    def derived_cache(self) -> Dict[Any, Any]:
        """Per-bundle cache for values derived purely from the columns.

        Consumers (the simulation engine's decoded columns, the PIF
        train plan, the baseline memo key) store expensive pure
        derivations here so that lane shards and sweep points replaying
        the same bundle inside one process compute them once.  Keys are
        namespaced tuples; the cache lives and dies with the bundle (the
        trace-generation ``lru_cache`` bounds how many stay resident).
        """
        return self._derived

    def decoded_columns(self) -> Tuple[List[int], List[int], List[int],
                                       List[bool], List[int], List[int]]:
        """The six columns decoded to plain Python lists, cached.

        Order: (access blocks, access PCs, access trap levels, access
        wrong-path flags, retire PCs, retire trap levels) — exactly what
        the lane-walk kernels iterate.  Decoding a few-hundred-thousand
        element column set costs tens of milliseconds; lane shards of
        one trace group re-walk the same bundle many times, so the
        decode is paid once per process.
        """
        decoded = self._derived.get("decoded")
        if decoded is None:
            decoded = (self.access_block.tolist(), self.access_pc.tolist(),
                       self.access_trap.tolist(),
                       self.access_wrong_path.tolist(),
                       self.retire_pc.tolist(), self.retire_trap.tolist())
            self._derived["decoded"] = decoded
        return decoded

    def access_trap_segments(self) -> List[Tuple[int, int, int]]:
        """Maximal runs of constant access trap level, cached.

        Returns ``[(start, end, trap_level), ...]`` covering the access
        stream.  Trap transitions are rare (hundreds per trace), so
        walkers that resolve per-trap-level state can hoist it out of
        the per-access loop by iterating segments.
        """
        segments = self._derived.get("trap_segments")
        if segments is None:
            trap = self.access_trap
            total = len(trap)
            if total == 0:
                segments = []
            else:
                boundaries = (np.flatnonzero(trap[1:] != trap[:-1]) + 1
                              ).tolist()
                starts = [0] + boundaries
                ends = boundaries + [total]
                levels = trap[starts].tolist()
                segments = list(zip(starts, ends, levels))
            self._derived["trap_segments"] = segments
        return segments

    def content_hash(self) -> str:
        """SHA-256 hex digest over the raw column bytes plus identity.

        This is the *trace content* part of cross-point memoization keys
        (the baseline-replay memo): two bundles with equal columns and
        block size hash identically regardless of how they were loaded,
        so sidecar entries survive process and run boundaries.
        """
        digest = self._derived.get("content_hash")
        if digest is None:
            hasher = hashlib.sha256()
            hasher.update(f"block_bytes={self.block_bytes};"
                          f"instructions={self.instructions};".encode())
            for column in (self.retire_pc, self.retire_trap,
                           self.access_block, self.access_pc,
                           self.access_trap, self.access_wrong_path):
                hasher.update(np.ascontiguousarray(column).tobytes())
                hasher.update(b"|")
            digest = hasher.hexdigest()
            self._derived["content_hash"] = digest
        return digest

    # ------------------------------------------------------------------
    # Derived views (vectorized over the columns).

    @property
    def _block_bits(self) -> int:
        return block_bits_for(self.block_bytes)

    def retire_block_array(self) -> np.ndarray:
        """Block addresses of the retire stream, in order (``int64``)."""
        return self.retire_pc >> self._block_bits

    def retire_blocks(self) -> List[int]:
        """Block addresses of the retire stream, in order."""
        return self.retire_block_array().tolist()

    def correct_path_accesses(self) -> List[FetchAccess]:
        """The access stream with wrong-path requests removed."""
        keep = ~self.access_wrong_path
        return accesses_from_columns(
            self.access_block[keep], self.access_pc[keep],
            self.access_trap[keep], self.access_wrong_path[keep])

    def application_retires(self) -> List[RetiredInstruction]:
        """Retire records at trap level 0 only."""
        keep = self.retire_trap == TL_APPLICATION
        return retires_from_columns(self.retire_pc[keep],
                                    self.retire_trap[keep])

    def wrong_path_fraction(self) -> float:
        """Fraction of front-end accesses that were wrong-path."""
        total = len(self.access_wrong_path)
        if not total:
            return 0.0
        return int(np.count_nonzero(self.access_wrong_path)) / total

    def footprint_blocks(self) -> int:
        """Number of distinct correct-path instruction blocks touched."""
        return int(np.unique(self.retire_block_array()).size)

    def split_by_trap_level(self) -> Dict[int, List[RetiredInstruction]]:
        """Retire records grouped by trap level (the RetireSep view)."""
        groups: Dict[int, List[RetiredInstruction]] = {}
        for level in np.unique(self.retire_trap).tolist():
            keep = self.retire_trap == level
            groups[level] = retires_from_columns(self.retire_pc[keep],
                                                 self.retire_trap[keep])
        return groups

    def validate(self) -> None:
        """Raise ValueError if the bundle violates basic invariants."""
        if self.instructions < len(self.retire_pc):
            raise ValueError(
                "instruction count cannot be below the collapsed retire count: "
                f"{self.instructions} < {len(self.retire_pc)}"
            )
        if len(self.retire_pc) and int(self.retire_pc.min()) < 0:
            offender = int(self.retire_pc[self.retire_pc < 0][0])
            raise ValueError(f"negative PC in retire stream: pc={offender}")
        blocks = self.retire_block_array()
        repeats = np.flatnonzero(blocks[1:] == blocks[:-1])
        if repeats.size:
            pc = int(self.retire_pc[repeats[0] + 1])
            raise ValueError(
                f"retire stream is not block-run collapsed at pc={pc:#x}")
        mismatches = np.flatnonzero(
            self.access_block != (self.access_pc >> self._block_bits))
        if mismatches.size:
            index = int(mismatches[0])
            raise ValueError(
                f"access block/pc mismatch: block={int(self.access_block[index])} "
                f"pc={int(self.access_pc[index]):#x} with "
                f"block_bytes={self.block_bytes}"
            )


def merge_statistics(bundles: Sequence[TraceBundle]) -> Dict[str, float]:
    """Aggregate headline statistics over per-core bundles.

    Returns a dictionary with total instruction count, mean wrong-path
    fraction, and the union instruction footprint in blocks — the
    numbers experiments print alongside their results for sanity
    checking against the paper's workload characterization.
    """
    if not bundles:
        raise ValueError("need at least one bundle")
    instructions = 0
    wrong_path = 0.0
    footprints = []
    for bundle in bundles:
        instructions += bundle.instructions
        wrong_path += bundle.wrong_path_fraction()
        footprints.append(bundle.retire_block_array())
    footprint = np.unique(np.concatenate(footprints)) if footprints else ()
    return {
        "instructions": float(instructions),
        "mean_wrong_path_fraction": wrong_path / len(bundles),
        "union_footprint_blocks": float(len(footprint)),
    }
