"""Descriptive statistics over block streams.

These are the measurements Section 2 and Section 3 of the paper report
when characterizing stream quality: footprint, repetition, run lengths,
and discontinuity structure.  Experiments print them alongside results
so a reader can check the synthetic workloads exhibit the properties the
paper attributes to real server workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True, slots=True)
class StreamStats:
    """Summary statistics of one block stream."""

    length: int
    unique_blocks: int
    sequential_fraction: float
    discontinuities: int
    reuse_mean: float

    def describe(self) -> Dict[str, float]:
        """Dictionary view for experiment logs."""
        return {
            "length": float(self.length),
            "unique_blocks": float(self.unique_blocks),
            "sequential_fraction": self.sequential_fraction,
            "discontinuities": float(self.discontinuities),
            "reuse_mean": self.reuse_mean,
        }


def analyze_block_stream(blocks: Sequence[int]) -> StreamStats:
    """Compute :class:`StreamStats` for a block stream.

    A transition is *sequential* when the next block is the current
    block + 1 (the case next-line prefetchers capture); anything else is
    a discontinuity (the case that motivates temporal streaming).
    """
    length = len(blocks)
    if length == 0:
        return StreamStats(0, 0, 0.0, 0, 0.0)
    unique = len(set(blocks))
    sequential = 0
    discontinuities = 0
    for previous, current in zip(blocks, blocks[1:]):
        if current == previous + 1:
            sequential += 1
        else:
            discontinuities += 1
    transitions = length - 1
    sequential_fraction = sequential / transitions if transitions else 0.0
    return StreamStats(
        length=length,
        unique_blocks=unique,
        sequential_fraction=sequential_fraction,
        discontinuities=discontinuities,
        reuse_mean=length / unique,
    )


def reuse_distance_histogram(blocks: Sequence[int], max_bins: int = 32) -> Counter:
    """Histogram of log2 reuse distances (in stream positions).

    Bin ``b`` counts reuses whose distance ``d`` satisfies
    ``2**b <= d < 2**(b+1)``; bin ``max_bins`` collects the tail and a
    special bin ``-1`` counts first-ever uses.  This is the measurement
    underlying the paper's jump-distance analysis (Figure 7), applied to
    raw blocks rather than stream heads.
    """
    last_seen: Dict[int, int] = {}
    histogram: Counter = Counter()
    for position, block in enumerate(blocks):
        if block in last_seen:
            distance = position - last_seen[block]
            bin_index = min(distance.bit_length() - 1, max_bins)
            histogram[bin_index] += 1
        else:
            histogram[-1] += 1
        last_seen[block] = position
    return histogram


def run_length_distribution(blocks: Sequence[int]) -> Counter:
    """Distribution of sequential-run lengths in a block stream.

    A run is a maximal subsequence ``b, b+1, b+2, ...``.  Long runs are
    what next-line prefetchers exploit; the distribution's short tail on
    server-like streams is the paper's motivation for temporal
    streaming.
    """
    runs: Counter = Counter()
    if not blocks:
        return runs
    current_run = 1
    for previous, current in zip(blocks, blocks[1:]):
        if current == previous + 1:
            current_run += 1
        else:
            runs[current_run] += 1
            current_run = 1
    runs[current_run] += 1
    return runs


def stream_overlap(first: Sequence[int], second: Sequence[int]) -> float:
    """Jaccard similarity of the footprints of two block streams."""
    set_first, set_second = set(first), set(second)
    if not set_first and not set_second:
        return 1.0
    return len(set_first & set_second) / len(set_first | set_second)


def repetition_score(blocks: Sequence[int], window: int = 4096) -> float:
    """Fraction of windowed block n-grams (n=4) that recur in the stream.

    A cheap proxy for "how learnable is this stream by temporal
    correlation": near 1.0 for retire-order streams of loopy server
    code, visibly lower for miss streams of the same execution.
    """
    n = 4
    if len(blocks) < 2 * n:
        return 0.0
    seen: Dict[tuple, int] = {}
    repeats = 0
    total = 0
    limit = min(len(blocks) - n + 1, window * 16)
    for position in range(limit):
        gram = tuple(blocks[position:position + n])
        total += 1
        if gram in seen:
            repeats += 1
        seen[gram] = position
    return repeats / total if total else 0.0


def per_level_lengths(levels: Sequence[int]) -> Dict[int, int]:
    """Count of records per trap level in a stream of trap levels."""
    counts: Counter = Counter(levels)
    return dict(counts)


def summarize_streams(named_streams: Dict[str, List[int]]) -> Dict[str, StreamStats]:
    """Analyze several named streams at once (convenience for reports)."""
    return {name: analyze_block_stream(stream)
            for name, stream in named_streams.items()}
