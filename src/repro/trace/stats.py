"""Descriptive statistics over block streams.

These are the measurements Section 2 and Section 3 of the paper report
when characterizing stream quality: footprint, repetition, run lengths,
and discontinuity structure.  Experiments print them alongside results
so a reader can check the synthetic workloads exhibit the properties the
paper attributes to real server workloads.

Every function accepts either a plain Python sequence or a numpy array
(the columnar views of :class:`~repro.trace.bundle.TraceBundle` feed in
directly) and computes with vectorized numpy passes — unique counts,
diff-based transition analysis, argsort-grouped reuse distances —
instead of per-element Python loops.  Outputs are plain Python types
(``Counter`` of ``int``), identical to the scalar implementations they
replaced.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

#: Input type every stream statistic accepts.
BlockStream = Union[Sequence[int], np.ndarray]


@dataclass(frozen=True, slots=True)
class StreamStats:
    """Summary statistics of one block stream."""

    length: int
    unique_blocks: int
    sequential_fraction: float
    discontinuities: int
    reuse_mean: float

    def describe(self) -> Dict[str, float]:
        """Dictionary view for experiment logs."""
        return {
            "length": float(self.length),
            "unique_blocks": float(self.unique_blocks),
            "sequential_fraction": self.sequential_fraction,
            "discontinuities": float(self.discontinuities),
            "reuse_mean": self.reuse_mean,
        }


def _as_array(blocks: BlockStream) -> np.ndarray:
    return np.asarray(blocks, dtype=np.int64)


def analyze_block_stream(blocks: BlockStream) -> StreamStats:
    """Compute :class:`StreamStats` for a block stream.

    A transition is *sequential* when the next block is the current
    block + 1 (the case next-line prefetchers capture); anything else is
    a discontinuity (the case that motivates temporal streaming).
    """
    array = _as_array(blocks)
    length = int(array.size)
    if length == 0:
        return StreamStats(0, 0, 0.0, 0, 0.0)
    unique = int(np.unique(array).size)
    steps = np.diff(array)
    sequential = int(np.count_nonzero(steps == 1))
    transitions = length - 1
    discontinuities = transitions - sequential
    sequential_fraction = sequential / transitions if transitions else 0.0
    return StreamStats(
        length=length,
        unique_blocks=unique,
        sequential_fraction=sequential_fraction,
        discontinuities=discontinuities,
        reuse_mean=length / unique,
    )


def _log2_bins(distances: np.ndarray, max_bins: int) -> np.ndarray:
    """``bit_length(d) - 1`` per positive distance, clamped to
    ``max_bins`` (exact: frexp exponents, not float log2 rounding)."""
    _, exponents = np.frexp(distances.astype(np.float64))
    return np.minimum(exponents - 1, max_bins)


def reuse_distance_histogram(blocks: BlockStream,
                             max_bins: int = 32) -> Counter:
    """Histogram of log2 reuse distances (in stream positions).

    Bin ``b`` counts reuses whose distance ``d`` satisfies
    ``2**b <= d < 2**(b+1)``; bin ``max_bins`` collects the tail and a
    special bin ``-1`` counts first-ever uses.  This is the measurement
    underlying the paper's jump-distance analysis (Figure 7), applied to
    raw blocks rather than stream heads.

    Vectorized: positions are grouped by block with a stable argsort,
    reuse distances fall out of one diff over the grouped positions.
    """
    array = _as_array(blocks)
    histogram: Counter = Counter()
    if array.size == 0:
        return histogram
    _, inverse, first_counts = np.unique(array, return_inverse=True,
                                         return_counts=True)
    histogram[-1] = int(first_counts.size)
    order = np.argsort(inverse, kind="stable")
    grouped = inverse[order]
    positions = np.arange(array.size)[order]
    distances = np.diff(positions)
    same_block = np.diff(grouped) == 0
    reuse_distances = distances[same_block]
    if reuse_distances.size:
        bins, counts = np.unique(_log2_bins(reuse_distances, max_bins),
                                 return_counts=True)
        for bin_index, count in zip(bins.tolist(), counts.tolist()):
            histogram[bin_index] = count
    return histogram


def run_length_distribution(blocks: BlockStream) -> Counter:
    """Distribution of sequential-run lengths in a block stream.

    A run is a maximal subsequence ``b, b+1, b+2, ...``.  Long runs are
    what next-line prefetchers exploit; the distribution's short tail on
    server-like streams is the paper's motivation for temporal
    streaming.
    """
    array = _as_array(blocks)
    runs: Counter = Counter()
    if array.size == 0:
        return runs
    breaks = np.flatnonzero(np.diff(array) != 1)
    boundaries = np.concatenate(([-1], breaks, [array.size - 1]))
    lengths, counts = np.unique(np.diff(boundaries), return_counts=True)
    for length, count in zip(lengths.tolist(), counts.tolist()):
        runs[length] = count
    return runs


def stream_overlap(first: BlockStream, second: BlockStream) -> float:
    """Jaccard similarity of the footprints of two block streams."""
    set_first = np.unique(_as_array(first))
    set_second = np.unique(_as_array(second))
    union = np.union1d(set_first, set_second)
    if union.size == 0:
        return 1.0
    intersection = np.intersect1d(set_first, set_second,
                                  assume_unique=True)
    return intersection.size / union.size


def repetition_score(blocks: BlockStream, window: int = 4096) -> float:
    """Fraction of windowed block n-grams (n=4) that recur in the stream.

    A cheap proxy for "how learnable is this stream by temporal
    correlation": near 1.0 for retire-order streams of loopy server
    code, visibly lower for miss streams of the same execution.

    Vectorized: n-grams become rows of a sliding-window view, duplicate
    rows are found with one ``np.unique`` over the raw row bytes (exact
    matching, no hashing collisions), and a gram counts as a repeat when
    an identical gram started at any earlier position.
    """
    n = 4
    array = _as_array(blocks)
    if array.size < 2 * n:
        return 0.0
    limit = min(array.size - n + 1, window * 16)
    grams = np.lib.stride_tricks.sliding_window_view(
        array[:limit + n - 1], n)
    rows = np.ascontiguousarray(grams).view(
        np.dtype((np.void, grams.dtype.itemsize * n))).ravel()
    _, first_position = np.unique(rows, return_index=True)
    total = int(rows.size)
    repeats = total - int(first_position.size)
    return repeats / total if total else 0.0


def per_level_lengths(levels: BlockStream) -> Dict[int, int]:
    """Count of records per trap level in a stream of trap levels."""
    values, counts = np.unique(np.asarray(levels, dtype=np.int64),
                               return_counts=True)
    return {int(level): int(count)
            for level, count in zip(values, counts)}


def summarize_streams(named_streams: Dict[str, List[int]]
                      ) -> Dict[str, StreamStats]:
    """Analyze several named streams at once (convenience for reports)."""
    return {name: analyze_block_stream(stream)
            for name, stream in named_streams.items()}
