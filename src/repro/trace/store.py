"""Content-addressed on-disk store for generated trace bundles.

Trace generation is deterministic in (workload, instructions, seed,
core) — but only for a fixed version of the generator code.  The store
therefore keys every archive by those four parameters *plus a
generator-version hash*: a SHA-256 digest over the source of every
module that can influence the produced streams (workload synthesis, the
front-end fetch model, branch predictors, addressing/RNG helpers, and
the trace record/serialization format).  Touch any of those files and
every existing entry silently stops matching — stale traces can never
be replayed against new code.

Layout: one ``.npz`` archive per key, named
``{workload}__i{instructions}__s{seed}__c{core}__g{hash12}.npz``, in a
single flat directory.  Writes go through the atomic renamer in
:mod:`repro.trace.serialize`, so concurrent
:class:`~repro.experiments.parallel.ExperimentPool` workers racing on
one key at worst write the identical file twice.  Unreadable or
truncated archives are treated as cache misses and deleted.

The store root comes from the ``REPRO_TRACE_STORE`` environment
variable: unset falls back to ``~/.cache/repro/traces`` (honouring
``XDG_CACHE_HOME``), and the values ``0``/``off``/``none``/``disabled``
turn persistence off entirely.  ``repro traces build|ls|gc`` manage the
store from the command line; CI caches the directory keyed by the same
generator hash.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union

from ..faults import fire
from . import serialize
from .bundle import TraceBundle
from .serialize import TraceFormatError, load_bundle_extra, save_bundle_atomic

#: Environment variable selecting (or disabling) the store root.
STORE_ENV = "REPRO_TRACE_STORE"

#: Reserved ``extra`` field under which :meth:`TraceStore.put` embeds
#: the archive's full key (stripped again by :meth:`TraceStore.get`).
_KEY_META = "store_key"

#: ``REPRO_TRACE_STORE`` values that disable on-disk persistence.
_DISABLE_VALUES = frozenset({"", "0", "off", "none", "disabled"})

#: Source files whose content defines the generator version, relative to
#: the ``repro`` package root.  Everything trace generation executes or
#: that shapes the stored representation belongs here.
_GENERATOR_SOURCE_GLOBS = (
    "common/*.py",
    "branch/*.py",
    "workloads/*.py",
    "pipeline/*.py",
    "trace/records.py",
    "trace/bundle.py",
    "trace/serialize.py",
)

#: Subdirectory of the store root where the replication tier stages
#: partially fetched archives (``{name}.npz.part``).  Kept out of the
#: flat ``*.npz`` namespace so directory scans and gc never mistake a
#: half-transferred file for a real entry.
PARTIAL_DIR = "partial"

_generator_hash_cache: Optional[str] = None

#: When set (a 12-char prefix), :func:`active_generator` reports this
#: instead of the local source hash — see :func:`set_generator_override`.
_generator_override: Optional[str] = None


def _hash_sources(package_root: Path) -> str:
    """SHA-256 over the generator source files under ``package_root``
    (path and content both feed the digest, so renames invalidate too)."""
    digest = hashlib.sha256()
    for pattern in _GENERATOR_SOURCE_GLOBS:
        for source in sorted(package_root.glob(pattern)):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(source.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()


def generator_version_hash() -> str:
    """Hex digest identifying the current trace-generator source.

    Computed once per process over the ``repro`` package's generator
    sources (:data:`_GENERATOR_SOURCE_GLOBS`).
    """
    global _generator_hash_cache
    if _generator_hash_cache is None:
        _generator_hash_cache = _hash_sources(
            Path(__file__).resolve().parent.parent)
    return _generator_hash_cache


def active_generator() -> str:
    """The 12-char generator prefix store paths and records key by.

    Normally the local source hash's prefix; a ``--fetch-traces``
    worker that accepted the coordinator's store as authoritative
    reports the coordinator's prefix instead
    (:func:`set_generator_override`).
    """
    return (_generator_override if _generator_override is not None
            else generator_version_hash()[:12])


def generator_override() -> Optional[str]:
    """The installed override prefix, or None when keying locally."""
    return _generator_override


def set_generator_override(prefix: Optional[str]) -> None:
    """Key store paths (and result records) by ``prefix`` instead of
    this process's own generator-source hash.

    This is the ``repro worker --fetch-traces`` escape hatch for a
    generator-version mismatch: the worker stops trusting its own
    generator entirely — local generation is forbidden while an
    override is active (:mod:`repro.trace.replicate` enforces it) — and
    replays only coordinator-fetched archives, so the records it
    reports are exactly what the coordinator's own code would have
    produced.  ``None`` removes the override.
    """
    global _generator_override
    if prefix is not None and not (
            len(prefix) == 12
            and all(ch in "0123456789abcdef" for ch in prefix)):
        raise ValueError(f"generator override must be a 12-char lowercase "
                         f"hex prefix, got {prefix!r}")
    _generator_override = prefix


class TraceKey(NamedTuple):
    """Identity of one generated trace (minus the generator version)."""

    workload: str
    instructions: int
    seed: int
    core: int


@dataclass(frozen=True, slots=True)
class StoreEntry:
    """One archive in the store, as listed by :meth:`TraceStore.entries`."""

    path: Path
    key: Optional[TraceKey]
    generator_hash: Optional[str]
    size_bytes: int
    mtime: float

    @property
    def current(self) -> bool:
        """True when the entry matches the active generator version."""
        return self.generator_hash == active_generator()


def ensure_scratch_store(prefix: str = "repro-traces-") -> Optional[Path]:
    """Point the store at a throwaway directory unless one is configured.

    For test/benchmark harnesses: when the caller has not exported
    ``REPRO_TRACE_STORE`` (CI does, to cache traces across runs), the
    variable is set to a fresh temporary directory that is removed at
    interpreter exit, so ad-hoc runs never touch the user's real cache.
    Returns the scratch root, or None when the environment already
    decides.
    """
    if STORE_ENV in os.environ:
        return None
    scratch = tempfile.mkdtemp(prefix=prefix)
    os.environ[STORE_ENV] = scratch
    atexit.register(shutil.rmtree, scratch, True)
    return Path(scratch)


def store_root_from_env() -> Optional[Path]:
    """Resolve the configured store root (None when disabled)."""
    value = os.environ.get(STORE_ENV)
    if value is not None:
        if value.strip().lower() in _DISABLE_VALUES:
            return None
        return Path(value).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home).expanduser() if cache_home else (
        Path.home() / ".cache")
    return base / "repro" / "traces"


class TraceStore:
    """A directory of content-addressed trace archives."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @classmethod
    def from_env(cls) -> Optional[TraceStore]:
        """The process-wide store, or None when persistence is disabled."""
        root = store_root_from_env()
        return cls(root) if root is not None else None

    def path_for(self, key: TraceKey) -> Path:
        """The archive path a key resolves to under the current
        generator version."""
        name = (f"{key.workload}__i{key.instructions}__s{key.seed}"
                f"__c{key.core}__g{active_generator()}.npz")
        return self.root / name

    # ------------------------------------------------------------------

    def get(self, key: TraceKey) -> Optional[Tuple[TraceBundle,
                                                   Dict[str, Any]]]:
        """Load ``key``'s bundle and extra metadata, or None on a miss.

        Archives that fail to parse, or whose recorded identity (the
        full :class:`TraceKey` :meth:`put` embedded, requested
        instruction count included — the bundle's own ``instructions``
        is the *retired* count and cannot stand in for it) disagrees
        with the key, are deleted and reported as misses so a corrupted
        or misplaced archive heals itself.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            # ``exception: format`` faults fired here land in the
            # TraceFormatError arm below — the self-heal contract.
            fire("store.get", path.name)
            bundle, extra = load_bundle_extra(path)
        except FileNotFoundError:
            return None
        except TraceFormatError:
            path.unlink(missing_ok=True)
            return None
        recorded = extra.pop(_KEY_META, None)
        if recorded != dict(key._asdict()) or (
                bundle.workload, bundle.seed, bundle.core) != (
                key.workload, key.seed, key.core):
            path.unlink(missing_ok=True)
            return None
        try:
            os.utime(path)  # LRU signal for size-budget eviction.
        except OSError:
            pass
        return bundle, extra

    def put(self, key: TraceKey, bundle: TraceBundle,
            extra: Optional[Dict[str, Any]] = None) -> Path:
        """Persist ``bundle`` under ``key`` (atomic; last writer wins).

        The full key is embedded in the archive metadata so :meth:`get`
        can verify a file really is what its path claims.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        stamped = dict(extra) if extra is not None else {}
        stamped[_KEY_META] = dict(key._asdict())
        return save_bundle_atomic(bundle, self.path_for(key), extra=stamped)

    # ------------------------------------------------------------------

    def entries(self) -> List[StoreEntry]:
        """Every archive currently in the store, newest first."""
        found: List[StoreEntry] = []
        if not self.root.is_dir():
            return found
        for path in self.root.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue
            key, generator_hash = _parse_entry_name(path.name)
            found.append(StoreEntry(path=path, key=key,
                                    generator_hash=generator_hash,
                                    size_bytes=stat.st_size,
                                    mtime=stat.st_mtime))
        found.sort(key=lambda entry: entry.mtime, reverse=True)
        return found

    def total_bytes(self) -> int:
        """Bytes the store currently occupies."""
        return sum(entry.size_bytes for entry in self.entries())

    def gc(self, max_bytes: Optional[int] = None,
           remove_all: bool = False) -> List[Path]:
        """Evict archives; returns the paths removed.

        Default policy removes entries that no longer match the running
        generator version, plus atomic-write scratch files old enough
        (one hour) that no live writer can still own them.  ``.npz``
        files whose names the store did not produce are left untouched —
        they are not the store's to delete, even under ``remove_all``.
        ``max_bytes`` additionally evicts least-recently-used *current*
        entries until the store fits the budget — except entries written
        within the last :data:`_FRESH_GRACE_SECONDS`, so a budgeted gc
        racing a concurrent fetcher can never delete a just-verified
        archive before its reader has opened it.  ``remove_all`` clears
        every store-produced archive.
        """
        removed: List[Path] = []
        survivors: List[StoreEntry] = []
        for entry in self.entries():
            if entry.key is None:
                continue
            if remove_all or not entry.current:
                entry.path.unlink(missing_ok=True)
                removed.append(entry.path)
            else:
                survivors.append(entry)
        removed.extend(self._sweep_scratch())
        removed.extend(self._sweep_partial(remove_all))
        if remove_all:
            removed.extend(self._sweep_plans())
        if max_bytes is not None:
            fresh_cutoff = time.time() - self._FRESH_GRACE_SECONDS
            occupancy = sum(entry.size_bytes for entry in survivors)
            for entry in reversed(survivors):  # oldest mtime first
                if occupancy <= max_bytes:
                    break
                if entry.mtime >= fresh_cutoff:
                    continue
                entry.path.unlink(missing_ok=True)
                removed.append(entry.path)
                occupancy -= entry.size_bytes
        return removed

    #: Entries younger than this never fall to ``max_bytes`` eviction —
    #: a freshly admitted (replicated or generated) archive is assumed
    #: to have a live reader about to open it.
    _FRESH_GRACE_SECONDS = 300.0

    #: Scratch files younger than this are assumed to have live writers.
    _SCRATCH_MAX_AGE_SECONDS = 3600.0

    def _sweep_plans(self) -> List[Path]:
        """Clear the PIF train-plan sidecar directory (``plans/``).

        Plans are keyed by trace *content hash* (see
        :mod:`repro.sim.trainplan`), so they never go semantically
        stale — entries for traces that stopped being generated merely
        become unreachable.  ``gc --all`` clears them with everything
        else; the default sweep leaves them alone.
        """
        plans = self.root / "plans"
        if not plans.is_dir():
            return []
        removed: List[Path] = []
        for path in plans.glob("*"):
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                continue
        return removed

    def _sweep_partial(self, remove_all: bool) -> List[Path]:
        """Delete abandoned replication ``.part`` files (``partial/``).

        A fresh ``.part`` belongs to a live fetcher mid-download and is
        never touched (the gc-exemption half of the replica-store
        contract); one older than the scratch age gate was orphaned by
        a dead worker and is reclaimed.  ``remove_all`` clears them
        unconditionally.
        """
        staging = self.root / PARTIAL_DIR
        if not staging.is_dir():
            return []
        removed: List[Path] = []
        cutoff = time.time() - self._SCRATCH_MAX_AGE_SECONDS
        for partial in staging.glob("*.part"):
            try:
                if remove_all or partial.stat().st_mtime < cutoff:
                    partial.unlink(missing_ok=True)
                    removed.append(partial)
            except OSError:
                continue
        return removed

    def _sweep_scratch(self) -> List[Path]:
        """Delete abandoned atomic-write staging files (age-gated so a
        concurrently running writer is never raced)."""
        staging = self.root / serialize.SCRATCH_DIR
        if not staging.is_dir():
            return []
        removed: List[Path] = []
        cutoff = time.time() - self._SCRATCH_MAX_AGE_SECONDS
        for scratch in staging.glob("*.npz"):
            try:
                if scratch.stat().st_mtime < cutoff:
                    scratch.unlink(missing_ok=True)
                    removed.append(scratch)
            except OSError:
                continue
        return removed


def _parse_entry_name(name: str
                      ) -> Tuple[Optional[TraceKey], Optional[str]]:
    """Recover (key, generator hash) from an archive filename.

    Returns ``(None, None)`` for names the store did not produce;
    :meth:`TraceStore.entries` lists such files for visibility, but
    :meth:`TraceStore.gc` deliberately leaves them alone.
    """
    stem = name[:-len(".npz")] if name.endswith(".npz") else name
    parts = stem.split("__")
    if len(parts) != 5:
        return None, None
    workload, raw_instructions, raw_seed, raw_core, raw_hash = parts
    if not (raw_instructions.startswith("i") and raw_seed.startswith("s")
            and raw_core.startswith("c") and raw_hash.startswith("g")):
        return None, None
    try:
        key = TraceKey(workload=workload,
                       instructions=int(raw_instructions[1:]),
                       seed=int(raw_seed[1:]),
                       core=int(raw_core[1:]))
    except ValueError:
        return None, None
    return key, raw_hash[1:]
