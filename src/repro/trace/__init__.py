"""Instruction-trace records, bundles, stream views, stats, and storage."""

from .bundle import TraceBundle, merge_statistics
from .records import (
    TL_APPLICATION,
    TL_INTERRUPT,
    FetchAccess,
    RetiredInstruction,
    StreamKind,
)
from .serialize import load_bundle, save_bundle
from .stats import (
    StreamStats,
    analyze_block_stream,
    repetition_score,
    reuse_distance_histogram,
    run_length_distribution,
    stream_overlap,
    summarize_streams,
)
from .streams import (
    access_block_stream,
    collapse_block_runs,
    correct_path_block_stream,
    deduplicate_consecutive,
    retire_block_stream,
    split_stream_by_trap_level,
    unique_blocks,
)

__all__ = [
    "TraceBundle",
    "merge_statistics",
    "TL_APPLICATION",
    "TL_INTERRUPT",
    "FetchAccess",
    "RetiredInstruction",
    "StreamKind",
    "load_bundle",
    "save_bundle",
    "StreamStats",
    "analyze_block_stream",
    "repetition_score",
    "reuse_distance_histogram",
    "run_length_distribution",
    "stream_overlap",
    "summarize_streams",
    "access_block_stream",
    "collapse_block_runs",
    "correct_path_block_stream",
    "deduplicate_consecutive",
    "retire_block_stream",
    "split_stream_by_trap_level",
    "unique_blocks",
]
