"""Instruction-trace records, bundles, stream views, stats, and storage."""

from .bundle import TraceBundle, merge_statistics
from .records import (
    FetchAccess,
    RetiredInstruction,
    StreamKind,
    TL_APPLICATION,
    TL_INTERRUPT,
)
from .serialize import (
    TraceFormatError,
    load_bundle,
    load_bundle_extra,
    save_bundle,
    save_bundle_atomic,
)
from .stats import (
    StreamStats,
    analyze_block_stream,
    repetition_score,
    reuse_distance_histogram,
    run_length_distribution,
    stream_overlap,
    summarize_streams,
)
from .store import TraceKey, TraceStore, generator_version_hash
from .streams import (
    access_block_stream,
    collapse_block_runs,
    correct_path_block_stream,
    deduplicate_consecutive,
    retire_block_stream,
    split_stream_by_trap_level,
    unique_blocks,
)

__all__ = [
    "TraceBundle",
    "merge_statistics",
    "TL_APPLICATION",
    "TL_INTERRUPT",
    "FetchAccess",
    "RetiredInstruction",
    "StreamKind",
    "TraceFormatError",
    "load_bundle",
    "load_bundle_extra",
    "save_bundle",
    "save_bundle_atomic",
    "TraceKey",
    "TraceStore",
    "generator_version_hash",
    "StreamStats",
    "analyze_block_stream",
    "repetition_score",
    "reuse_distance_histogram",
    "run_length_distribution",
    "stream_overlap",
    "summarize_streams",
    "access_block_stream",
    "collapse_block_runs",
    "correct_path_block_stream",
    "deduplicate_consecutive",
    "retire_block_stream",
    "split_stream_by_trap_level",
    "unique_blocks",
]
