"""Record types for instruction traces.

Two streams flow out of the pipeline model, mirroring the two
observation points the paper contrasts (Section 2):

* the **fetch/access stream** — block-granularity requests issued by the
  front-end, including wrong-path requests injected by branch
  mispredictions (:class:`FetchAccess`);
* the **retire stream** — correct-path instructions in retirement order
  (:class:`RetiredInstruction`), already collapsed to one record per
  run of same-block PCs, which is exactly the granularity the PIF
  compactor consumes (Section 4.1: "consecutively retired PCs belonging
  to the same instruction block [collapse] into a single address").

``NamedTuple`` is used rather than a dataclass because these records are
created tens of millions of times in trace generation; tuple creation is
the cheapest structured allocation CPython offers.
"""

from __future__ import annotations

from typing import NamedTuple

#: Trap level of ordinary application/OS-service execution.
TL_APPLICATION = 0

#: Trap level of spontaneous hardware-interrupt handlers.
TL_INTERRUPT = 1


class RetiredInstruction(NamedTuple):
    """One correct-path, retire-order record (block-run collapsed).

    ``pc`` is the address of the *first* instruction retired in this
    block run — the candidate trigger PC if this record opens a new
    spatial region.
    """

    pc: int
    trap_level: int


class FetchAccess(NamedTuple):
    """One front-end instruction-cache access at block granularity.

    ``wrong_path`` marks requests issued beyond a mispredicted branch
    and later squashed; they pollute the access stream exactly as the
    paper's Figure 1 (right) illustrates.
    """

    block: int
    pc: int
    trap_level: int
    wrong_path: bool


class StreamKind:
    """Names for the four observation points compared in Figure 2."""

    MISS = "miss"
    ACCESS = "access"
    RETIRE = "retire"
    RETIRE_SEP = "retire_sep"

    ALL = (MISS, ACCESS, RETIRE, RETIRE_SEP)
