"""Record types for instruction traces.

Two streams flow out of the pipeline model, mirroring the two
observation points the paper contrasts (Section 2):

* the **fetch/access stream** — block-granularity requests issued by the
  front-end, including wrong-path requests injected by branch
  mispredictions (:class:`FetchAccess`);
* the **retire stream** — correct-path instructions in retirement order
  (:class:`RetiredInstruction`), already collapsed to one record per
  run of same-block PCs, which is exactly the granularity the PIF
  compactor consumes (Section 4.1: "consecutively retired PCs belonging
  to the same instruction block [collapse] into a single address").

``NamedTuple`` is used rather than a dataclass because these records are
created tens of millions of times in trace generation; tuple creation is
the cheapest structured allocation CPython offers.

Storage, however, is *columnar*: a :class:`~repro.trace.bundle.TraceBundle`
holds each record field as one contiguous numpy array instead of a list
of record objects, and the converters below translate between the two
representations.  Column dtypes are part of the on-disk trace format
(see :mod:`repro.trace.serialize`): addresses are ``int64`` (signed, so
invalid negative PCs remain representable and detectable by
``validate``), trap levels are ``uint8``, wrong-path flags are ``bool``.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence, Tuple

import numpy as np

#: Column dtypes of the retire stream: (pc, trap_level).
RETIRE_DTYPES = (np.int64, np.uint8)

#: Column dtypes of the access stream: (block, pc, trap_level, wrong_path).
ACCESS_DTYPES = (np.int64, np.int64, np.uint8, np.bool_)

#: Trap level of ordinary application/OS-service execution.
TL_APPLICATION = 0

#: Trap level of spontaneous hardware-interrupt handlers.
TL_INTERRUPT = 1


class RetiredInstruction(NamedTuple):
    """One correct-path, retire-order record (block-run collapsed).

    ``pc`` is the address of the *first* instruction retired in this
    block run — the candidate trigger PC if this record opens a new
    spatial region.
    """

    pc: int
    trap_level: int


class FetchAccess(NamedTuple):
    """One front-end instruction-cache access at block granularity.

    ``wrong_path`` marks requests issued beyond a mispredicted branch
    and later squashed; they pollute the access stream exactly as the
    paper's Figure 1 (right) illustrates.
    """

    block: int
    pc: int
    trap_level: int
    wrong_path: bool


class StreamKind:
    """Names for the four observation points compared in Figure 2."""

    MISS = "miss"
    ACCESS = "access"
    RETIRE = "retire"
    RETIRE_SEP = "retire_sep"

    ALL = (MISS, ACCESS, RETIRE, RETIRE_SEP)


# ----------------------------------------------------------------------
# Record-list <-> column conversions.
#
# ``np.asarray`` over a list of (named) tuples produces one C-level pass
# into a 2-D int64 table — far cheaper than a ``np.fromiter`` per field.


def retire_columns(records: Sequence[RetiredInstruction]
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """``(pc, trap_level)`` columns of a retire-record sequence."""
    if not len(records):
        return np.empty(0, np.int64), np.empty(0, np.uint8)
    table = np.asarray(records, dtype=np.int64)
    return np.ascontiguousarray(table[:, 0]), table[:, 1].astype(np.uint8)


def access_columns(records: Sequence[FetchAccess]
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(block, pc, trap_level, wrong_path)`` columns of an access
    sequence."""
    if not len(records):
        return (np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.uint8), np.empty(0, np.bool_))
    table = np.asarray(records, dtype=np.int64)
    return (np.ascontiguousarray(table[:, 0]),
            np.ascontiguousarray(table[:, 1]),
            table[:, 2].astype(np.uint8),
            table[:, 3].astype(np.bool_))


def retires_from_columns(pc: np.ndarray, trap_level: np.ndarray
                         ) -> List[RetiredInstruction]:
    """Materialize retire-record objects from their columns."""
    return list(map(RetiredInstruction._make,
                    zip(pc.tolist(), trap_level.tolist())))


def accesses_from_columns(block: np.ndarray, pc: np.ndarray,
                          trap_level: np.ndarray, wrong_path: np.ndarray
                          ) -> List[FetchAccess]:
    """Materialize access-record objects from their columns."""
    return list(map(FetchAccess._make,
                    zip(block.tolist(), pc.tolist(), trap_level.tolist(),
                        wrong_path.tolist())))
