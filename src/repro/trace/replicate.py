"""Replicated trace distribution: verified, resumable archive fetch.

Multi-host sweeps break the trace store's one silent assumption — that
``REPRO_TRACE_STORE`` resolves to a directory that already holds (or
can regenerate) every archive.  A fresh worker host has neither.  This
module closes the gap with a classic content-distribution pair:

* :class:`TraceExport` — the coordinator side.  Wraps the
  coordinator's store root, advertises every parseable archive as
  ``(key, size, sha256)`` over ``GET /v1/dist/traces``, and serves
  byte ranges of individual archives over
  ``GET /v1/dist/traces/{key}`` (:mod:`repro.dist.http`).  Transfer
  hashes are streamed once per ``(name, size, mtime)`` and cached.

* :class:`TraceFetcher` — the worker side.  Consulted by
  :func:`repro.pipeline.tracegen.cached_trace` between a local store
  miss and fresh generation (:func:`installed` /
  :func:`active_fetcher`), it downloads the archive in fixed-size
  chunks into ``partial/{name}.part`` under the local store root,
  resumes from the partial file's length after any interruption,
  re-hashes the completed file against the coordinator-advertised
  SHA-256, and only then renames it into the store — an unverified
  byte is never admitted.  Transport errors and hash mismatches retry
  on the shared capped-exponential backoff
  (:func:`repro.common.backoff.backoff_delay`); when the attempts are
  exhausted the fetch raises :class:`ReplicationError`, which the
  worker's task boundary converts into a structured ``task-failed``
  report — never a hang, never a silently wrong trace.

Replica-store state machine (one archive)::

    absent ──chunk append──► partial/{name}.part ──interrupt──┐
       ▲                          │        ▲                  │
       │ hash mismatch (delete)   │        └────── resume ────┘
       └──────────────────────────┤ complete
                                  ▼
                          re-hash == advertised?
                                  │ yes (atomic rename)
                                  ▼
                           {name}.npz in store

Fault sites (DESIGN.md "Failure model"): ``replicate.fetch`` fires
once per fetch attempt (key ``{name}:attempt={n}``) and models
whole-transfer failures — ``raise`` a transport error before any byte
moves, ``truncate`` a connection dropped mid-transfer (the partial
file survives for resume).  ``replicate.chunk`` fires per received
chunk (key ``{name}:offset={o}:attempt={n}``) — ``truncate`` shears
the chunk and drops the connection, ``corrupt`` flips bytes in flight
(caught by the final hash check), ``raise`` a per-chunk transport
error.
"""

from __future__ import annotations

import os
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..common.backoff import backoff_delay
from ..faults import InjectedFault, fire
from .serialize import archive_sha256
from .store import PARTIAL_DIR, TraceKey, TraceStore, _parse_entry_name

#: Environment variable overriding the fetch chunk size in bytes.
CHUNK_ENV = "REPRO_FETCH_CHUNK"

#: Default fetch chunk size: small enough that CI-scale archives take
#: several chunks (so resume/corruption paths are really exercised),
#: large enough that real multi-MB traces need few round trips.
DEFAULT_CHUNK_BYTES = 256 * 1024

#: Fetch attempts per archive before the fetch fails the task.
DEFAULT_FETCH_ATTEMPTS = 5

#: Response headers advertising the whole archive's transfer identity
#: (sent on every ranged chunk, so a mid-fetch store change is caught).
SHA_HEADER = "X-Repro-Sha256"
SIZE_HEADER = "X-Repro-Size"


class ReplicationError(RuntimeError):
    """An archive could not be replicated within the retry budget (or
    replication was mandatory and the coordinator lacks the archive).
    Raised from the trace-load path, so the worker's task boundary
    turns it into a structured ``task-failed`` report."""


class _RetryableFetchError(RuntimeError):
    """One fetch attempt failed in a way worth retrying."""


def chunk_bytes_from_env() -> int:
    """The configured fetch chunk size (``REPRO_FETCH_CHUNK`` bytes,
    default :data:`DEFAULT_CHUNK_BYTES`; invalid values fall back)."""
    raw = os.environ.get(CHUNK_ENV)  # reprolint: disable=RL004 - transfer tuning knob resolved where the transfer runs; never touches result values
    if raw is None:
        return DEFAULT_CHUNK_BYTES
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CHUNK_BYTES
    return value if value > 0 else DEFAULT_CHUNK_BYTES


# ---------------------------------------------------------------------------
# coordinator side


class TraceExport:
    """Advertise and serve one store directory's archives.

    Thread-safe (the coordinator's HTTP server is threaded): the
    transfer-hash cache is keyed by ``(name, size, mtime_ns)``, so a
    rewritten archive re-hashes and an untouched one hashes once.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self._hashes: Dict[Tuple[str, int, int], str] = {}

    def _transfer_hash(self, path: Path, stat: os.stat_result) -> str:
        cache_key = (path.name, stat.st_size, stat.st_mtime_ns)
        with self._lock:
            known = self._hashes.get(cache_key)
        if known is not None:
            return known
        digest = archive_sha256(path)
        with self._lock:
            self._hashes[cache_key] = digest
        return digest

    def listing(self) -> List[Dict[str, Any]]:
        """Every servable archive as ``{"key", "size", "sha256"}``
        entries, name-sorted (the ``traces`` payload's ``traces``
        list).  Only store-produced names are advertised — exactly the
        set :meth:`open_entry` will serve."""
        ads: List[Dict[str, Any]] = []
        if not self.root.is_dir():
            return ads
        for path in sorted(self.root.glob("*.npz")):
            key, generator_hash = _parse_entry_name(path.name)
            if key is None or generator_hash is None:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            ads.append({"key": path.name, "size": stat.st_size,
                        "sha256": self._transfer_hash(path, stat)})
        return ads

    def open_entry(self, name: str) -> Optional[Tuple[Path, int, str]]:
        """Resolve one advertised archive to ``(path, size, sha256)``,
        or None when the store has no such entry.  Only names the
        store itself produces resolve (the route's charset plus this
        parse make traversal a 404, not a file read)."""
        key, generator_hash = _parse_entry_name(name)
        if key is None or generator_hash is None:
            return None
        path = self.root / name
        try:
            stat = path.stat()
        except OSError:
            return None
        return path, stat.st_size, self._transfer_hash(path, stat)

    def read_range(self, path: Path, start: int, length: int) -> bytes:
        """``length`` bytes of ``path`` from ``start`` (short at EOF)."""
        with open(path, "rb") as handle:
            handle.seek(start)
            return handle.read(length)


# ---------------------------------------------------------------------------
# worker side


class TraceFetcher:
    """Fetch archives from a coordinator into a local replica store.

    ``require_fetch`` is set by a worker running under a generator
    override (the coordinator's store is authoritative, local
    generation is forbidden): a missing coordinator archive then
    raises instead of returning False.  ``budget_bytes`` caps the
    replica store: after each admission the store is gc'd to the
    budget (freshly admitted entries are grace-exempt, so the cap can
    never evict the archive the current task is about to replay).
    """

    def __init__(self, base_url: str, *, worker_id: str = "",
                 chunk_bytes: Optional[int] = None,
                 max_attempts: int = DEFAULT_FETCH_ATTEMPTS,
                 backoff_base: float = 0.05, backoff_cap: float = 5.0,
                 timeout: float = 30.0, require_fetch: bool = False,
                 budget_bytes: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.base = base_url.rstrip("/")
        self.worker_id = worker_id
        self.chunk_bytes = (chunk_bytes if chunk_bytes is not None
                            else chunk_bytes_from_env())
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self.require_fetch = require_fetch
        self.budget_bytes = budget_bytes
        self._sleep = sleep
        self.fetched = 0    #: archives admitted by this fetcher

    # ------------------------------------------------------------ transport

    def _get_range(self, name: str, start: int,
                   end: int) -> Tuple[bytes, int, str]:
        """One ranged GET: (payload, advertised size, advertised hash).

        404 raises :class:`ReplicationError` tagged as *missing*; every
        other failure — connection errors, non-2xx, absent or garbled
        advertisement headers — is a :class:`_RetryableFetchError`.
        """
        request = urllib.request.Request(
            f"{self.base}/v1/dist/traces/{name}",
            headers={"Range": f"bytes={start}-{end}"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                data = response.read()
                raw_size = response.headers.get(SIZE_HEADER)
                sha256 = response.headers.get(SHA_HEADER)
        except urllib.error.HTTPError as error:
            if error.code == 404:
                raise _ArchiveMissing(
                    f"coordinator has no archive {name!r}") from error
            raise _RetryableFetchError(
                f"GET {name} [{start}-{end}] answered "
                f"{error.code}") from error
        except (urllib.error.URLError, OSError, ValueError) as error:
            raise _RetryableFetchError(
                f"GET {name} [{start}-{end}] failed: {error}") from error
        if raw_size is None or sha256 is None:
            raise _RetryableFetchError(
                f"GET {name} response lacks the {SIZE_HEADER}/"
                f"{SHA_HEADER} advertisement headers")
        try:
            size = int(raw_size)
        except ValueError:
            raise _RetryableFetchError(
                f"GET {name} advertised a non-integer size "
                f"{raw_size!r}") from None
        if len(data) > end - start + 1:
            raise _RetryableFetchError(
                f"GET {name} returned {len(data)} bytes for a "
                f"{end - start + 1}-byte range")
        return data, size, sha256

    # -------------------------------------------------------------- fetching

    def _attempt(self, name: str, target: Path, part: Path,
                 attempt: int) -> None:
        """One full fetch attempt: resume the partial file, stream
        chunks, verify, rename into the store.  Raises
        :class:`_RetryableFetchError` on anything recoverable."""
        offset = part.stat().st_size if part.exists() else 0
        advertised: Optional[Tuple[int, str]] = None
        while True:
            chunk, size, sha256 = self._get_range(
                name, offset, offset + self.chunk_bytes - 1)
            if advertised is None:
                advertised = (size, sha256)
                if offset > size:
                    # A stale partial from a different (overwritten)
                    # archive; start over.
                    part.unlink(missing_ok=True)
                    raise _RetryableFetchError(
                        f"partial file for {name} is longer than the "
                        f"advertised archive ({offset} > {size})")
            elif advertised != (size, sha256):
                part.unlink(missing_ok=True)
                raise _RetryableFetchError(
                    f"archive {name} changed on the coordinator "
                    "mid-transfer")
            if offset >= size:
                break
            try:
                fault = fire("replicate.chunk",
                             f"{name}:offset={offset}:attempt={attempt}")
            except (InjectedFault, ValueError) as error:
                raise _RetryableFetchError(
                    f"chunk transfer failed: {error}") from error
            dropped = False
            if fault is not None:
                if fault.action == "truncate":
                    chunk = chunk[:len(chunk) // 2]
                    dropped = True
                elif fault.action == "corrupt":
                    damaged = bytearray(chunk)
                    for position in range(0, len(damaged),
                                          max(1, len(damaged) // 8)):
                        damaged[position] ^= 0xFF
                    chunk = bytes(damaged)
            if not chunk and offset < size:
                raise _RetryableFetchError(
                    f"GET {name} returned no bytes at offset {offset}")
            with open(part, "ab") as handle:
                handle.write(chunk)
            offset += len(chunk)
            if dropped:
                raise _RetryableFetchError(
                    f"connection dropped mid-chunk at offset {offset}")
        if not part.exists():
            # A zero-byte archive transfers no chunks; verify an empty
            # file rather than a missing one.
            part.touch()
        digest = archive_sha256(part)
        if digest != advertised[1]:
            # The accumulated bytes are wrong (corruption in flight or
            # a bad resume base); nothing salvageable — start clean.
            part.unlink(missing_ok=True)
            raise _RetryableFetchError(
                f"archive {name} hashed {digest[:12]}… but the "
                f"coordinator advertised {advertised[1][:12]}…")
        os.replace(part, target)

    def fetch(self, key: TraceKey, store: TraceStore) -> bool:
        """Replicate ``key``'s archive into ``store``.

        True when the archive was verified and admitted; False when the
        coordinator does not have it (the caller falls back to local
        generation — unless ``require_fetch``, which raises instead).
        Raises :class:`ReplicationError` once the retry budget is
        spent: persistent corruption or a dead link must surface as a
        structured task failure, never as a wrong trace.
        """
        target = store.path_for(key)
        name = target.name
        staging = store.root / PARTIAL_DIR
        staging.mkdir(parents=True, exist_ok=True)
        part = staging / f"{name}.part"
        failure: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if attempt:
                self._sleep(backoff_delay(
                    attempt - 1, base=self.backoff_base,
                    cap=self.backoff_cap,
                    salt=f"{self.worker_id}:{name}"))
            try:
                fault = fire("replicate.fetch", f"{name}:attempt={attempt}")
                if fault is not None and fault.action == "truncate":
                    # Model a connection that dies before the transfer
                    # moves a byte this attempt; the partial survives.
                    raise _RetryableFetchError(
                        "connection dropped before transfer")
                self._attempt(name, target, part, attempt)
            except _ArchiveMissing as error:
                part.unlink(missing_ok=True)
                if self.require_fetch:
                    raise ReplicationError(
                        f"{error} and this worker runs under a generator "
                        "override, so local generation is forbidden"
                    ) from error
                return False
            except (_RetryableFetchError, InjectedFault,
                    ValueError) as error:
                # ValueError covers the injected TraceFormatError
                # flavor of a raise fault at these sites.
                failure = error
                continue
            self.fetched += 1
            if self.budget_bytes is not None:
                store.gc(max_bytes=self.budget_bytes)
            return True
        raise ReplicationError(
            f"could not replicate {name} after {self.max_attempts} "
            f"attempts; last failure: {failure}")


class _ArchiveMissing(_RetryableFetchError):
    """The coordinator answered 404: it does not hold the archive."""


# ---------------------------------------------------------------------------
# process-wide hook (consulted by repro.pipeline.tracegen.cached_trace)

_active_fetcher: Optional[TraceFetcher] = None


def active_fetcher() -> Optional[TraceFetcher]:
    """The installed fetcher the trace-load path consults on a local
    store miss, or None (the default: miss → generate)."""
    return _active_fetcher


@contextmanager
def installed(fetcher: Optional[TraceFetcher]) -> Iterator[None]:
    """Install ``fetcher`` as the process-wide replication hook for the
    duration of the block (None leaves replication off)."""
    global _active_fetcher
    previous = _active_fetcher
    _active_fetcher = fetcher
    try:
        yield
    finally:
        _active_fetcher = previous
