"""Synthetic server workloads: specs, program generation, execution."""

from .executor import ControlRecord, MAX_TRANSACTION_INSTRUCTIONS, ProgramExecutor
from .generator import (
    APPLICATION_TEXT_BASE,
    HANDLER_TEXT_BASE,
    ProgramGenerator,
    build_program,
)
from .program import BasicBlock, BlockKind, Function, SyntheticProgram
from .spec import (
    PAPER_WORKLOADS,
    WORKLOAD_GROUPS,
    WORKLOAD_NAMES,
    WorkloadSpec,
    get_spec,
    scaled_spec,
)

__all__ = [
    "ControlRecord",
    "ProgramExecutor",
    "MAX_TRANSACTION_INSTRUCTIONS",
    "APPLICATION_TEXT_BASE",
    "HANDLER_TEXT_BASE",
    "ProgramGenerator",
    "build_program",
    "BasicBlock",
    "BlockKind",
    "Function",
    "SyntheticProgram",
    "PAPER_WORKLOADS",
    "WORKLOAD_GROUPS",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "get_spec",
    "scaled_spec",
]
