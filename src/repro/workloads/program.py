"""Static structure of a synthetic program: basic blocks, functions, CFG.

A program is a set of functions laid out in a flat instruction address
space, plus a distinguished dispatcher (the server's request loop),
per-transaction root functions, and interrupt handler routines placed in
a separate high address range (kernel text).  The executor walks this
structure dynamically; the fetch model additionally walks it *statically*
to generate wrong-path references beyond mispredicted branches.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..common.addressing import INSTRUCTION_BYTES


class BlockKind:
    """Terminator kinds of a basic block."""

    FALLTHROUGH = "fall"
    CONDITIONAL = "cond"
    LOOP = "loop"
    CALL = "call"
    JUMP = "jump"
    RETURN = "ret"

    ALL = (FALLTHROUGH, CONDITIONAL, LOOP, CALL, JUMP, RETURN)


@dataclass(slots=True)
class BasicBlock:
    """One straight-line run of instructions with a single terminator.

    Attributes:
        pc: address of the first instruction.
        instructions: instruction count (terminator included).
        kind: one of :class:`BlockKind`.
        target: control-transfer target PC (branch/loop/jump/call), or
            None for fallthrough/return.
        taken_probability: per-visit probability a CONDITIONAL branch is
            taken; stable branches sit near 0/1, data-dependent branches
            near 0.5.
        mean_iterations: for LOOP back-edges, the mean trip count the
            executor draws per loop entry.
    """

    pc: int
    instructions: int
    kind: str = BlockKind.FALLTHROUGH
    target: Optional[int] = None
    taken_probability: float = 0.0
    mean_iterations: float = 0.0

    @property
    def last_pc(self) -> int:
        """Address of the terminator instruction."""
        return self.pc + (self.instructions - 1) * INSTRUCTION_BYTES

    @property
    def end_pc(self) -> int:
        """Address one past the block (the fallthrough target)."""
        return self.pc + self.instructions * INSTRUCTION_BYTES

    def validate(self) -> None:
        """Raise ValueError on malformed blocks."""
        if self.instructions <= 0:
            raise ValueError(f"block at {self.pc:#x} has no instructions")
        if self.kind not in BlockKind.ALL:
            raise ValueError(f"unknown block kind {self.kind!r}")
        needs_target = self.kind in (
            BlockKind.CONDITIONAL, BlockKind.LOOP, BlockKind.CALL, BlockKind.JUMP
        )
        if needs_target and self.target is None:
            raise ValueError(f"{self.kind} block at {self.pc:#x} lacks a target")
        if self.kind == BlockKind.CONDITIONAL and not 0.0 <= self.taken_probability <= 1.0:
            raise ValueError("taken_probability must be a probability")
        if self.kind == BlockKind.LOOP and self.mean_iterations < 0:
            raise ValueError("mean_iterations cannot be negative")


@dataclass(slots=True)
class Function:
    """A contiguous sequence of basic blocks.

    ``blocks[0].pc`` is the entry point.  Blocks are laid out back to
    back: ``blocks[i].end_pc == blocks[i+1].pc``.
    """

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)
    level: int = 0
    is_handler: bool = False

    @property
    def entry(self) -> int:
        """Entry PC."""
        return self.blocks[0].pc

    @property
    def end_pc(self) -> int:
        """One past the last instruction."""
        return self.blocks[-1].end_pc

    @property
    def size_bytes(self) -> int:
        """Code size in bytes."""
        return self.end_pc - self.entry

    def validate(self) -> None:
        """Raise ValueError when layout or terminators are inconsistent."""
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        for block in self.blocks:
            block.validate()
        for current, following in zip(self.blocks, self.blocks[1:]):
            if current.end_pc != following.pc:
                raise ValueError(
                    f"function {self.name} has a layout gap between blocks at "
                    f"{current.pc:#x} and {following.pc:#x}"
                )
        if self.blocks[-1].kind != BlockKind.RETURN:
            raise ValueError(f"function {self.name} does not end in a return")


@dataclass(slots=True)
class SyntheticProgram:
    """A complete generated program plus lookup indices."""

    name: str
    dispatcher: Function
    transactions: List[Function]
    transaction_weights: List[float]
    functions: List[Function]
    handlers: List[Function]
    handler_weights: List[float]
    #: Kernel helper routines callable from handlers (never dispatched
    #: directly; they model the OS code under an interrupt entry point).
    kernel_helpers: List[Function] = field(default_factory=list)
    _block_starts: List[int] = field(default_factory=list)
    _block_index: Dict[int, BasicBlock] = field(default_factory=dict)

    def all_functions(self) -> List[Function]:
        """Every function including dispatcher, handlers, kernel helpers."""
        return [self.dispatcher, *self.functions, *self.handlers,
                *self.kernel_helpers]

    def build_index(self) -> None:
        """(Re)build the PC-to-block lookup structures.

        Must be called after construction and after any block mutation;
        the generator calls it before returning the program.
        """
        self._block_index = {}
        for function in self.all_functions():
            for block in function.blocks:
                self._block_index[block.pc] = block
        self._block_starts = sorted(self._block_index)

    def block_at(self, pc: int) -> Optional[BasicBlock]:
        """The basic block whose instruction range contains ``pc``.

        Used by the wrong-path walker, which may land mid-block (e.g. a
        branch back into the body of a loop).  Returns None for PCs in
        layout gaps or outside the program.
        """
        if not self._block_starts:
            raise RuntimeError("build_index() has not been called")
        position = bisect.bisect_right(self._block_starts, pc) - 1
        if position < 0:
            return None
        block = self._block_index[self._block_starts[position]]
        if block.pc <= pc < block.end_pc:
            return block
        return None

    def block_starting_at(self, pc: int) -> Optional[BasicBlock]:
        """The basic block whose first instruction is ``pc``, if any."""
        return self._block_index.get(pc)

    def code_footprint_bytes(self) -> int:
        """Total bytes of laid-out code (gaps excluded)."""
        return sum(f.size_bytes for f in self.all_functions())

    def validate(self) -> None:
        """Validate every function and cross-function invariants."""
        seen_ranges: List[tuple] = []
        for function in self.all_functions():
            function.validate()
            seen_ranges.append((function.entry, function.end_pc, function.name))
        seen_ranges.sort()
        for (_, end_a, name_a), (start_b, _, name_b) in zip(
            seen_ranges, seen_ranges[1:]
        ):
            if start_b < end_a:
                raise ValueError(
                    f"functions {name_a} and {name_b} overlap in the layout"
                )
        if len(self.transactions) != len(self.transaction_weights):
            raise ValueError("transaction weights do not match transactions")
        if len(self.handlers) != len(self.handler_weights):
            raise ValueError("handler weights do not match handlers")


def function_spanning(functions: Sequence[Function], pc: int) -> Optional[Function]:
    """Linear search helper used by tests to find a PC's owning function."""
    for function in functions:
        if function.entry <= pc < function.end_pc:
            return function
    return None
