"""Workload specifications.

The paper evaluates six commercial server workloads (Table I): OLTP on
DB2 and Oracle (TPC-C), DSS queries 2 and 17 (TPC-H on DB2), and web
serving on Apache and Zeus (SPECweb99).  We cannot run those binaries,
so each is modelled as a :class:`WorkloadSpec` — the parameter vector of
a synthetic program whose *stream statistics* reproduce the properties
the paper attributes to that workload class:

* OLTP: multi-megabyte instruction footprint, deep call trees, many
  transaction types, moderate branch entropy, frequent OS interaction.
* DSS: smaller footprint, scan-dominated tight loops with high trip
  counts, long sequential runs (next-line prefetching works best here).
* Web: mid-size footprint of many small functions, high discontinuity,
  the strongest cache-filtering pathology (the paper's Figure 2 shows
  the miss stream losing >20 % coverage on Web).

The numbers are not calibrated against the originals — they are chosen
so the *relative* orderings in every figure reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Generation parameters of one synthetic server workload."""

    name: str
    suite: str
    #: Total code footprint in KB (functions + gaps), before handlers.
    code_footprint_kb: int
    #: Mean function size in basic blocks.
    mean_function_blocks: float
    #: Mean instructions per basic block.
    mean_block_instructions: float
    #: Number of distinct top-level transaction/request types.
    transaction_types: int
    #: Depth of the call-graph level structure (max call chain length).
    call_levels: int
    #: Mean number of call sites per non-leaf function.
    mean_calls_per_function: float
    #: Number of globally popular helper functions (Zipf-shared leaves).
    hot_helpers: int
    #: Size of the shared callee pool per call level.  Call sites across
    #: *all* transaction types draw from this pool, so types share
    #: mid-level code the way real transactions share library and DBMS
    #: internals.  This sharing creates the medium-reuse-distance blocks
    #: whose cache residency is history-dependent -- the raw material of
    #: the paper's miss-stream fragmentation (Section 2.1).
    callee_pool_per_level: int
    #: Probability a basic block ends in a local conditional branch.
    local_branch_probability: float
    #: Of local conditional branches, fraction that are data-dependent
    #: (taken probability drawn near 0.5) rather than stable (near 0/1).
    data_dependent_fraction: float
    #: Probability a function contains a loop.
    loop_probability: float
    #: Mean loop trip count (per-entry counts jitter around the site mean).
    mean_loop_iterations: float
    #: Relative sigma of per-entry trip counts around the loop site's
    #: mean.  Scan loops over fixed-cardinality data (DSS) are nearly
    #: deterministic; request-dependent loops (OLTP/Web) vary more.
    loop_trip_jitter: float
    #: Mean retired instructions between spontaneous interrupts.
    interrupt_interval: int
    #: Number of distinct interrupt handler routines.
    interrupt_handlers: int
    #: Mean handler size in basic blocks.
    mean_handler_blocks: float

    def __post_init__(self) -> None:
        if self.code_footprint_kb <= 0:
            raise ValueError("footprint must be positive")
        if not 0.0 <= self.local_branch_probability <= 1.0:
            raise ValueError("local_branch_probability must be a probability")
        if not 0.0 <= self.data_dependent_fraction <= 1.0:
            raise ValueError("data_dependent_fraction must be a probability")
        if not 0.0 <= self.loop_probability <= 1.0:
            raise ValueError("loop_probability must be a probability")
        if self.loop_trip_jitter < 0.0:
            raise ValueError("loop_trip_jitter cannot be negative")
        if self.interrupt_interval <= 0:
            raise ValueError("interrupt_interval must be positive")
        if self.call_levels < 2:
            raise ValueError("need at least two call levels (root + leaf)")


def _oltp(name: str, footprint_kb: int, transactions: int,
          data_dep: float) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        suite="oltp",
        code_footprint_kb=footprint_kb,
        mean_function_blocks=12.0,
        mean_block_instructions=8.0,
        transaction_types=transactions,
        call_levels=7,
        mean_calls_per_function=3.4,
        hot_helpers=24,
        callee_pool_per_level=110,
        local_branch_probability=0.34,
        data_dependent_fraction=data_dep,
        loop_probability=0.25,
        mean_loop_iterations=8.0,
        loop_trip_jitter=0.15,
        interrupt_interval=6_000,
        interrupt_handlers=6,
        mean_handler_blocks=7.0,
    )


def _dss(name: str, footprint_kb: int, loop_iterations: float) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        suite="dss",
        code_footprint_kb=footprint_kb,
        mean_function_blocks=14.0,
        mean_block_instructions=8.0,
        transaction_types=3,
        call_levels=6,
        mean_calls_per_function=3.0,
        hot_helpers=12,
        callee_pool_per_level=64,
        local_branch_probability=0.26,
        data_dependent_fraction=0.08,
        loop_probability=0.55,
        mean_loop_iterations=loop_iterations,
        loop_trip_jitter=0.05,
        interrupt_interval=14_000,
        interrupt_handlers=4,
        mean_handler_blocks=6.0,
    )


def _web(name: str, footprint_kb: int, data_dep: float) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        suite="web",
        code_footprint_kb=footprint_kb,
        mean_function_blocks=7.0,
        mean_block_instructions=6.0,
        transaction_types=12,
        call_levels=6,
        mean_calls_per_function=3.8,
        hot_helpers=32,
        callee_pool_per_level=110,
        local_branch_probability=0.38,
        data_dependent_fraction=data_dep,
        loop_probability=0.20,
        mean_loop_iterations=4.0,
        loop_trip_jitter=0.15,
        interrupt_interval=4_000,
        interrupt_handlers=8,
        mean_handler_blocks=7.0,
    )


#: The six paper workloads (Table I), as synthetic specs.
PAPER_WORKLOADS: Dict[str, WorkloadSpec] = {
    "oltp-db2": _oltp("oltp-db2", footprint_kb=2048, transactions=5, data_dep=0.12),
    "oltp-oracle": _oltp("oltp-oracle", footprint_kb=2560, transactions=5,
                         data_dep=0.16),
    "dss-qry2": _dss("dss-qry2", footprint_kb=768, loop_iterations=20.0),
    "dss-qry17": _dss("dss-qry17", footprint_kb=896, loop_iterations=30.0),
    "web-apache": _web("web-apache", footprint_kb=1536, data_dep=0.13),
    "web-zeus": _web("web-zeus", footprint_kb=1280, data_dep=0.11),
}

#: Display grouping used by every figure: (suite label, workload names).
WORKLOAD_GROUPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("OLTP", ("oltp-db2", "oltp-oracle")),
    ("DSS", ("dss-qry2", "dss-qry17")),
    ("Web", ("web-apache", "web-zeus")),
)

#: Flat tuple of the six names in the paper's presentation order.
WORKLOAD_NAMES: Tuple[str, ...] = tuple(
    name for _, names in WORKLOAD_GROUPS for name in names
)


def get_spec(name: str) -> WorkloadSpec:
    """Look up a paper workload spec by name.

    Raises KeyError with the list of valid names, because a typo'd
    workload name in an experiment config is a common user error.
    """
    try:
        return PAPER_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; valid names: {sorted(PAPER_WORKLOADS)}"
        ) from None


def scaled_spec(spec: WorkloadSpec, footprint_scale: float) -> WorkloadSpec:
    """A copy of ``spec`` with its code footprint scaled.

    Used by fast test/bench modes: the stream *shapes* survive scaling,
    only the absolute miss rates move.
    """
    if footprint_scale <= 0:
        raise ValueError("footprint_scale must be positive")
    from dataclasses import replace

    return replace(
        spec,
        code_footprint_kb=max(64, int(spec.code_footprint_kb * footprint_scale)),
    )
