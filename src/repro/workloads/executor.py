"""Dynamic execution of a synthetic program.

The executor walks the program's CFG with a call stack, resolving every
branch outcome from its specified distribution, drawing loop trip counts
per entry, and injecting interrupt handlers at exponential intervals.
Its output is the *architectural* (correct-path, retire-order) control
stream: a sequence of :class:`ControlRecord`, one per executed basic
block.

This stream is the ground truth both downstream consumers build on:

* the retire-order trace is exactly this stream (Section 2.2's Retire
  view — it contains no wrong-path noise *by construction*);
* the fetch model (:mod:`repro.pipeline.frontend`) replays this stream
  through a branch predictor to synthesize the *access* stream with
  wrong-path noise.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Sequence, Tuple

from ..common.rng import make_rng
from ..trace.records import TL_APPLICATION, TL_INTERRUPT
from .program import BasicBlock, BlockKind, SyntheticProgram
from .spec import WorkloadSpec

#: Safety cap: once one transaction has retired this many instructions,
#: newly entered loops run a single trip so the transaction terminates.
MAX_TRANSACTION_INSTRUCTIONS = 250_000


class ControlRecord(NamedTuple):
    """One executed basic block and its resolved terminator.

    ``next_pc`` is where control actually went; ``taken_target`` is the
    static taken-direction target (what a predictor would speculate to),
    present for conditional/loop/call/jump terminators.
    """

    pc: int
    instructions: int
    trap_level: int
    kind: str
    branch_pc: int
    taken: bool
    next_pc: int
    taken_target: int


class _Frame(NamedTuple):
    return_pc: int
    frame_id: int


class ProgramExecutor:
    """Walks a :class:`SyntheticProgram`, yielding :class:`ControlRecord`s."""

    def __init__(self, program: SyntheticProgram, spec: WorkloadSpec,
                 seed: int, core: int = 0) -> None:
        self.program = program
        self.spec = spec
        self.core = core
        self._rng = make_rng(seed, "exec", spec.name, str(core))
        self._irq_rng = make_rng(seed, "irq", spec.name, str(core))
        self._dispatch_pc = program.dispatcher.blocks[0].pc
        self._loop_state: dict = {}
        self._frame_counter = 0
        self._transaction_instructions = 0
        self.transactions_completed = 0
        self.interrupts_taken = 0

    # ------------------------------------------------------------------

    def run(self, n_instructions: int) -> Iterator[ControlRecord]:
        """Yield control records until ``n_instructions`` have retired."""
        if n_instructions <= 0:
            raise ValueError("n_instructions must be positive")
        retired = 0
        next_irq = self._draw_irq_interval()
        stack: List[_Frame] = []
        pc = self._dispatch_pc
        while retired < n_instructions:
            block = self.program.block_starting_at(pc)
            if block is None:
                raise RuntimeError(f"control reached a non-block PC {pc:#x}")
            record, pc = self._step(block, stack)
            retired += record.instructions
            self._transaction_instructions += record.instructions
            if record.kind == BlockKind.RETURN and not stack:
                # The dispatcher never returns; an empty stack after a
                # return means a transaction completed and control is
                # back in the dispatcher loop.
                pass
            yield record
            if retired >= next_irq and self._irq_ready(stack):
                for handler_record in self._run_handler():
                    retired += handler_record.instructions
                    yield handler_record
                    if retired >= n_instructions:
                        break
                next_irq = retired + self._draw_irq_interval()

    # ------------------------------------------------------------------

    def _step(self, block: BasicBlock, stack: List[_Frame]
              ) -> Tuple[ControlRecord, int]:
        kind = block.kind
        taken = False
        taken_target = block.target if block.target is not None else 0
        if kind == BlockKind.FALLTHROUGH:
            next_pc = block.end_pc
        elif kind == BlockKind.CONDITIONAL:
            taken = self._rng.random() < block.taken_probability
            next_pc = block.target if taken else block.end_pc
        elif kind == BlockKind.LOOP:
            taken = self._loop_take_backedge(block, stack)
            next_pc = block.target if taken else block.end_pc
        elif kind == BlockKind.JUMP:
            taken = True
            next_pc = block.target
        elif kind == BlockKind.CALL:
            taken = True
            callee = self._select_callee(block)
            taken_target = callee
            self._frame_counter += 1
            stack.append(_Frame(block.end_pc, self._frame_counter))
            next_pc = callee
        elif kind == BlockKind.RETURN:
            if stack:
                frame = stack.pop()
                next_pc = frame.return_pc
                taken_target = frame.return_pc
                if not stack:
                    self.transactions_completed += 1
                    self._transaction_instructions = 0
            else:
                # Returning with an empty stack restarts the dispatcher.
                next_pc = self._dispatch_pc
                taken_target = next_pc
            taken = True
        else:  # pragma: no cover - BlockKind.ALL is closed
            raise RuntimeError(f"unhandled block kind {kind!r}")
        record = ControlRecord(
            pc=block.pc,
            instructions=block.instructions,
            trap_level=TL_APPLICATION,
            kind=kind,
            branch_pc=block.last_pc,
            taken=taken,
            next_pc=next_pc,
            taken_target=taken_target,
        )
        return record, next_pc

    def _select_callee(self, block: BasicBlock) -> int:
        """Resolve the callee, choosing a transaction root at the
        dispatcher's dispatch site (the model's one indirect call)."""
        if block.pc == self._dispatch_pc:
            roots = self.program.transactions
            weights = self.program.transaction_weights
            return roots[self._weighted_index(weights)].entry
        assert block.target is not None
        return block.target

    def _loop_take_backedge(self, block: BasicBlock, stack: Sequence[_Frame]) -> bool:
        frame_id = stack[-1].frame_id if stack else 0
        key = (frame_id, block.pc)
        remaining = self._loop_state.get(key)
        if remaining is None:
            remaining = self._draw_trips(block.mean_iterations) - 1
        if remaining > 0:
            self._loop_state[key] = remaining - 1
            return True
        self._loop_state.pop(key, None)
        return False

    def _draw_trips(self, mean: float) -> int:
        """Trip count for one loop entry: the site's mean with mild jitter.

        Real scan/iteration loops process data whose cardinality recurs
        across visits (the same table, the same request size), so trip
        counts are *data-dependent but stable*.  High-variance draws
        (e.g. geometric) would make even the retire-order stream
        unpredictable at block granularity, which server workloads do
        not exhibit (the paper measures >99.5 % retire predictability).
        """
        if self._transaction_instructions > MAX_TRANSACTION_INSTRUCTIONS:
            return 1
        if mean <= 1.0:
            return 1
        jitter = self.spec.loop_trip_jitter
        return max(1, round(self._rng.gauss(mean, jitter * mean)))

    # ------------------------------------------------------------------
    # interrupts

    def _irq_ready(self, stack: Sequence[_Frame]) -> bool:
        """Handlers are injected only from application context and only
        when the program has handlers at all."""
        return bool(self.program.handlers)

    def _draw_irq_interval(self) -> int:
        return max(1, int(self._irq_rng.expovariate(
            1.0 / self.spec.interrupt_interval)))

    def _run_handler(self) -> Iterator[ControlRecord]:
        """Execute one interrupt handler to completion at trap level 1.

        Handler entry points call kernel helper routines, so the walk
        carries its own call stack; the handler completes when its
        outermost return executes.
        """
        self.interrupts_taken += 1
        weights = self.program.handler_weights
        handler = self.program.handlers[self._weighted_index_irq(weights)]
        self._frame_counter += 1
        root_frame = _Frame(0, self._frame_counter)
        stack: List[_Frame] = []
        pc = handler.entry
        while True:
            block = self.program.block_starting_at(pc)
            if block is None:
                raise RuntimeError(f"handler control reached bad PC {pc:#x}")
            kind = block.kind
            taken = False
            finished = False
            taken_target = block.target if block.target is not None else 0
            if kind == BlockKind.FALLTHROUGH:
                next_pc = block.end_pc
            elif kind == BlockKind.CONDITIONAL:
                taken = self._irq_rng.random() < block.taken_probability
                next_pc = block.target if taken else block.end_pc
            elif kind == BlockKind.LOOP:
                frames = stack if stack else [root_frame]
                taken = self._loop_take_backedge(block, frames)
                next_pc = block.target if taken else block.end_pc
            elif kind == BlockKind.JUMP:
                taken = True
                next_pc = block.target
            elif kind == BlockKind.CALL:
                taken = True
                self._frame_counter += 1
                stack.append(_Frame(block.end_pc, self._frame_counter))
                next_pc = block.target
            elif kind == BlockKind.RETURN:
                taken = True
                if stack:
                    frame = stack.pop()
                    next_pc = frame.return_pc
                    taken_target = frame.return_pc
                else:
                    next_pc = 0
                    finished = True
            else:  # pragma: no cover - BlockKind.ALL is closed
                raise RuntimeError(f"unexpected handler block kind {kind!r}")
            yield ControlRecord(
                pc=block.pc,
                instructions=block.instructions,
                trap_level=TL_INTERRUPT,
                kind=kind,
                branch_pc=block.last_pc,
                taken=taken,
                next_pc=next_pc,
                taken_target=taken_target,
            )
            if finished:
                return
            pc = next_pc

    def _weighted_index(self, weights: Sequence[float]) -> int:
        total = sum(weights)
        point = self._rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if point < cumulative:
                return index
        return len(weights) - 1

    def _weighted_index_irq(self, weights: Sequence[float]) -> int:
        total = sum(weights)
        point = self._irq_rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if point < cumulative:
                return index
        return len(weights) - 1
