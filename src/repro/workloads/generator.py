"""Synthetic program generation.

Builds a :class:`~repro.workloads.program.SyntheticProgram` from a
:class:`~repro.workloads.spec.WorkloadSpec`.  The generator reproduces
the structural properties the paper's analysis depends on:

* functions are contiguous runs of basic blocks, so instruction fetch is
  mostly sequential within a function (spatial regions are dense,
  Figure 3 left);
* local forward branches skip over blocks (error paths, cold code),
  producing the *discontinuous* spatial regions of Figure 3 (right);
* loops — sometimes enclosing calls to leaf helpers — produce the
  temporal-locality redundancy the temporal compactor removes;
* a static, level-structured call graph with Zipf-popular shared helpers
  spreads execution across a multi-megabyte code layout, defeating a
  64 KB L1-I;
* transaction roots called from a dispatcher loop make the retire-order
  stream highly repetitive at large scale, which is the property PIF
  exploits.

Generation is fully deterministic given (spec, seed).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..common.addressing import INSTRUCTION_BYTES
from ..common.rng import make_rng
from .program import BasicBlock, BlockKind, Function, SyntheticProgram
from .spec import WorkloadSpec

#: Base address of application text.
APPLICATION_TEXT_BASE = 0x0040_0000

#: Base address of interrupt-handler (kernel) text.
HANDLER_TEXT_BASE = 0x8000_0000

#: Hard cap on basic-block size, in instructions.
_MAX_BLOCK_INSTRUCTIONS = 24

#: Minimum basic-block size: the terminator needs to be a distinct PC.
_MIN_BLOCK_INSTRUCTIONS = 2

#: Fraction of call sites that target the Zipf-popular shared helpers.
_HELPER_CALL_FRACTION = 0.25


@dataclass(slots=True)
class _BlockPlan:
    """A basic block before layout: targets are symbolic."""

    instructions: int
    kind: str = BlockKind.FALLTHROUGH
    local_target: Optional[int] = None
    callee: Optional[int] = None
    taken_probability: float = 0.0
    mean_iterations: float = 0.0


@dataclass(slots=True)
class _FunctionPlan:
    """A function before layout."""

    name: str
    level: int
    blocks: List[_BlockPlan] = field(default_factory=list)
    is_handler: bool = False


def _geometric(rng: random.Random, mean: float) -> int:
    """A geometric draw with the given mean, minimum 1."""
    if mean <= 1.0:
        return 1
    success = 1.0 / mean
    u = rng.random()
    return max(1, int(math.log(1.0 - u) / math.log(1.0 - success)) + 1)


def _block_count(rng: random.Random, mean: float) -> int:
    """Basic-block count for one function (at least 2: body + return)."""
    return max(2, _geometric(rng, mean))


def _block_size(rng: random.Random, mean: float) -> int:
    """Instruction count for one basic block."""
    size = _geometric(rng, mean)
    return max(_MIN_BLOCK_INSTRUCTIONS, min(_MAX_BLOCK_INSTRUCTIONS, size))


def _zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Zipf popularity weights for ``count`` items."""
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


class ProgramGenerator:
    """Deterministic builder for one workload's synthetic program."""

    def __init__(self, spec: WorkloadSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        self._rng = make_rng(seed, "program", spec.name)

    def generate(self) -> SyntheticProgram:
        """Build, lay out, validate, and index the program."""
        plans = self._plan_functions()
        handler_roots, kernel_helpers = self._plan_handlers()
        dispatcher_plan = self._plan_dispatcher()
        self._assign_calls(plans)
        for plan in plans:
            self._add_local_branches(plan)
        self._tame_call_loops(plans)

        # Rebase symbolic callee indices to the global plan order:
        # [dispatcher, body..., handler roots..., kernel helpers...].
        body_offset = 1
        helper_offset = body_offset + len(plans) + len(handler_roots)
        for plan in plans:
            for block in plan.blocks:
                if block.callee is not None:
                    block.callee += body_offset
        for plan in handler_roots:
            for block in plan.blocks:
                if block.callee is not None:
                    block.callee += helper_offset

        all_plans = [dispatcher_plan, *plans, *handler_roots, *kernel_helpers]
        functions = self._layout(all_plans)
        dispatcher = functions[0]
        body = functions[body_offset:body_offset + len(plans)]
        handlers = functions[body_offset + len(plans):helper_offset]
        helpers = functions[helper_offset:]

        transactions = [f for f in body if f.level == 0]
        # Dispatcher's call statically points at the most popular root.
        for block in dispatcher.blocks:
            if block.kind == BlockKind.CALL:
                block.target = transactions[0].entry

        program = SyntheticProgram(
            name=self.spec.name,
            dispatcher=dispatcher,
            transactions=transactions,
            transaction_weights=_zipf_weights(len(transactions)),
            functions=body,
            handlers=handlers,
            handler_weights=_zipf_weights(len(handlers)),
            kernel_helpers=helpers,
        )
        program.build_index()
        program.validate()
        return program

    # ------------------------------------------------------------------
    # planning

    def _plan_functions(self) -> List[_FunctionPlan]:
        spec = self.spec
        mean_bytes = (
            spec.mean_function_blocks * spec.mean_block_instructions
            * INSTRUCTION_BYTES
        )
        count = max(
            spec.transaction_types + spec.hot_helpers + spec.call_levels,
            int(spec.code_footprint_kb * 1024 / mean_bytes),
        )
        plans: List[_FunctionPlan] = []
        for index in range(count):
            level = self._level_for(index, count)
            plan = _FunctionPlan(name=f"fn{index}", level=level)
            n_blocks = _block_count(self._rng, spec.mean_function_blocks)
            if level == 0:
                # Transaction roots are larger: they stitch phases together.
                n_blocks = max(n_blocks, int(spec.mean_function_blocks * 1.5))
            for _ in range(n_blocks):
                plan.blocks.append(
                    _BlockPlan(_block_size(self._rng, spec.mean_block_instructions))
                )
            plan.blocks[-1].kind = BlockKind.RETURN
            self._add_loop(plan)
            plans.append(plan)
        # Local branches are installed *after* call sites (see
        # ``generate``) so data-dependent branches can be constrained to
        # skip straight-line code only.
        return plans

    def _level_for(self, index: int, count: int) -> int:
        """Assign call-graph levels.

        The first ``transaction_types`` functions are roots (level 0),
        the last ``hot_helpers`` are leaves (max level); everything else
        is spread uniformly over the middle levels.
        """
        spec = self.spec
        max_level = spec.call_levels - 1
        if index < spec.transaction_types:
            return 0
        if index >= count - spec.hot_helpers:
            return max_level
        return self._rng.randint(1, max_level)

    def _add_local_branches(self, plan: _FunctionPlan) -> None:
        """Turn some fallthrough blocks into forward conditional branches.

        Data-dependent branches (the genuinely unpredictable ones) are
        only installed where the skipped range contains no call sites:
        real workloads' per-visit variation is dominated by small local
        skips (error checks, null checks), while whole-subtree
        divergence is rare.  Stable branches may guard anything —
        including call sites, which makes some subtrees cold and spreads
        the touched footprint across visits.
        """
        spec = self.spec
        last = len(plan.blocks) - 1
        for index in range(last):
            block = plan.blocks[index]
            if block.kind != BlockKind.FALLTHROUGH:
                continue
            if self._rng.random() >= spec.local_branch_probability:
                continue
            skip = self._rng.randint(2, 4)
            target = min(index + skip, last)
            if target <= index + 1:
                continue
            skipped = plan.blocks[index + 1:target]
            skips_calls = any(b.kind == BlockKind.CALL for b in skipped)
            data_dependent = (
                not skips_calls
                and self._rng.random() < spec.data_dependent_fraction
            )
            block.kind = BlockKind.CONDITIONAL
            block.local_target = target
            if data_dependent:
                block.taken_probability = self._rng.uniform(0.25, 0.75)
            elif self._rng.random() < 0.5:
                block.taken_probability = self._rng.uniform(0.01, 0.06)
            else:
                block.taken_probability = self._rng.uniform(0.94, 0.99)

    def _add_loop(self, plan: _FunctionPlan) -> None:
        """Install at most one loop back-edge per function."""
        spec = self.spec
        if self._rng.random() >= spec.loop_probability:
            return
        last = len(plan.blocks) - 1
        if last < 2:
            return
        end = self._rng.randint(1, last - 1)
        start = self._rng.randint(max(0, end - 3), end)
        block = plan.blocks[end]
        if block.kind != BlockKind.FALLTHROUGH:
            return
        block.kind = BlockKind.LOOP
        block.local_target = start
        block.mean_iterations = max(
            1.0, self._rng.gauss(spec.mean_loop_iterations,
                                 spec.mean_loop_iterations / 3.0)
        )

    def _plan_handlers(self) -> Tuple[List[_FunctionPlan], List[_FunctionPlan]]:
        """Interrupt entry points plus the kernel helpers they call.

        Server workloads spend a large fraction of execution in OS code
        entered at I/O-driven (effectively Poisson) instants.  Each
        injection walks an entry routine and a few kernel helper
        functions, evicting a history-dependent set of application
        blocks — a principal source of the miss-stream fragmentation the
        paper analyzes (Sections 2.1 and 2.3).
        """
        spec = self.spec
        n_helpers = max(8, spec.interrupt_handlers * 4)
        helpers: List[_FunctionPlan] = []
        for index in range(n_helpers):
            plan = _FunctionPlan(name=f"kern{index}", level=1, is_handler=True)
            n_blocks = _block_count(self._rng, spec.mean_handler_blocks)
            for _ in range(n_blocks):
                plan.blocks.append(
                    _BlockPlan(_block_size(self._rng, spec.mean_block_instructions))
                )
            plan.blocks[-1].kind = BlockKind.RETURN
            self._add_handler_loop(plan)
            self._add_local_branches(plan)
            helpers.append(plan)

        roots: List[_FunctionPlan] = []
        for index in range(spec.interrupt_handlers):
            plan = _FunctionPlan(name=f"irq{index}", level=0, is_handler=True)
            n_blocks = max(4, _block_count(self._rng, spec.mean_handler_blocks))
            for _ in range(n_blocks):
                plan.blocks.append(
                    _BlockPlan(_block_size(self._rng, spec.mean_block_instructions))
                )
            plan.blocks[-1].kind = BlockKind.RETURN
            candidates = list(range(len(plan.blocks) - 1))
            self._rng.shuffle(candidates)
            n_calls = self._rng.randint(2, 4)
            for block_index in candidates[:n_calls]:
                block = plan.blocks[block_index]
                if block.kind == BlockKind.FALLTHROUGH:
                    block.kind = BlockKind.CALL
                    block.callee = self._rng.randrange(n_helpers)
            self._add_local_branches(plan)
            roots.append(plan)
        return roots, helpers

    def _add_handler_loop(self, plan: _FunctionPlan) -> None:
        if len(plan.blocks) >= 3 and self._rng.random() < 0.5:
            body = plan.blocks[len(plan.blocks) // 2]
            if body.kind == BlockKind.FALLTHROUGH:
                body.kind = BlockKind.LOOP
                body.local_target = max(0, len(plan.blocks) // 2 - 1)
                body.mean_iterations = 3.0

    def _plan_dispatcher(self) -> _FunctionPlan:
        """The server request loop: call a transaction root, repeat."""
        plan = _FunctionPlan(name="dispatcher", level=0)
        plan.blocks.append(_BlockPlan(8, kind=BlockKind.CALL, callee=None))
        plan.blocks.append(_BlockPlan(4, kind=BlockKind.JUMP, local_target=0))
        plan.blocks.append(_BlockPlan(2, kind=BlockKind.RETURN))
        return plan

    def _assign_calls(self, plans: List[_FunctionPlan]) -> None:
        """Install call sites: callees are strictly deeper in the level DAG.

        Half the call sites target the Zipf-popular hot helpers (shared
        leaves — library code), the rest a uniformly random deeper
        function (workload-private logic).  Loops may only enclose a
        call when the callees are leaves, bounding the execution blow-up
        of call-in-loop amplification.
        """
        spec = self.spec
        max_level = spec.call_levels - 1
        by_level: List[List[int]] = [[] for _ in range(spec.call_levels)]
        for index, plan in enumerate(plans):
            by_level[plan.level].append(index)
        helpers = by_level[max_level][-spec.hot_helpers:] if by_level[max_level] else []
        helper_weights = _zipf_weights(len(helpers)) if helpers else []

        # Restrict callable functions to a shared pool per level: all
        # transaction trees draw from the same mid-level code, the way
        # real transactions share DBMS internals and libraries.  The
        # remaining (laid-out but never-called) functions model the cold
        # majority of a multi-megabyte binary.
        pools: List[List[int]] = [
            level_functions[:spec.callee_pool_per_level]
            for level_functions in by_level
        ]

        for plan in plans:
            if plan.level >= max_level:
                continue
            deeper: List[int] = []
            for level in range(plan.level + 1, spec.call_levels):
                deeper.extend(pools[level])
            if not deeper:
                continue
            next_level = pools[plan.level + 1] if plan.level + 1 < max_level else []
            # Near-deterministic call-site counts: a geometric draw's
            # heavy mass at 1 starves the call tree and collapses the
            # touched footprint far below server scale.
            n_calls = max(1, round(self._rng.gauss(
                spec.mean_calls_per_function,
                spec.mean_calls_per_function / 4.0)))
            candidates = [
                i for i, block in enumerate(plan.blocks[:-1])
                if block.kind == BlockKind.FALLTHROUGH
            ]
            self._rng.shuffle(candidates)
            for block_index in candidates[:n_calls]:
                block = plan.blocks[block_index]
                block.kind = BlockKind.CALL
                draw = self._rng.random()
                if helpers and draw < _HELPER_CALL_FRACTION:
                    # Shared library/leaf code: Zipf-popular hot helpers.
                    block.callee = self._weighted_pick(helpers, helper_weights)
                elif next_level and draw < _HELPER_CALL_FRACTION + 0.55:
                    # The common case: descend exactly one level, which is
                    # what keeps the call tree deep and the per-transaction
                    # instruction footprint large (server-like).
                    block.callee = self._rng.choice(next_level)
                else:
                    block.callee = self._rng.choice(deeper)

    def _tame_call_loops(self, plans: List[_FunctionPlan]) -> None:
        """Bound call-in-loop amplification.

        A loop whose body contains a call multiplies the callee's whole
        subtree by the trip count; nested across levels this explodes
        execution length combinatorially.  Real tight loops that call
        helpers call *leaf* helpers (the paper's example in Section 3.1),
        so: loops in functions one level above the leaves keep their
        trip counts, and any other loop enclosing a call is clamped to a
        small trip count.
        """
        max_level = self.spec.call_levels - 1
        for plan in plans:
            loop_indices = [
                i for i, block in enumerate(plan.blocks)
                if block.kind == BlockKind.LOOP
            ]
            for index in loop_indices:
                block = plan.blocks[index]
                start = block.local_target if block.local_target is not None else index
                body = plan.blocks[start:index + 1]
                has_call = any(b.kind == BlockKind.CALL for b in body)
                if has_call and plan.level < max_level - 1:
                    block.mean_iterations = min(block.mean_iterations, 3.0)

    def _weighted_pick(self, items: Sequence[int], weights: Sequence[float]) -> int:
        total = sum(weights)
        point = self._rng.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if point < cumulative:
                return item
        return items[-1]

    # ------------------------------------------------------------------
    # layout

    def _layout(self, plans: List[_FunctionPlan]) -> List[Function]:
        """Assign addresses and resolve symbolic targets to PCs.

        ``plans[0]`` is the dispatcher; handlers are laid out in their
        own high text segment.
        """
        functions: List[Function] = []
        entries: List[int] = [0] * len(plans)

        app_cursor = APPLICATION_TEXT_BASE
        irq_cursor = HANDLER_TEXT_BASE
        placements: List[int] = []
        for index, plan in enumerate(plans):
            size = sum(b.instructions for b in plan.blocks) * INSTRUCTION_BYTES
            if plan.is_handler:
                entries[index] = irq_cursor
                irq_cursor += size + 64 * self._rng.randint(0, 2)
            else:
                entries[index] = app_cursor
                app_cursor += size + 64 * self._rng.randint(0, 2)
            placements.append(entries[index])

        for index, plan in enumerate(plans):
            pc = entries[index]
            block_pcs: List[int] = []
            for block_plan in plan.blocks:
                block_pcs.append(pc)
                pc += block_plan.instructions * INSTRUCTION_BYTES
            blocks: List[BasicBlock] = []
            for block_plan, block_pc in zip(plan.blocks, block_pcs):
                target: Optional[int] = None
                if block_plan.callee is not None:
                    # Callee indices are global plan indices by the time
                    # layout runs (rebased in ``generate``).
                    target = entries[block_plan.callee]
                elif block_plan.local_target is not None:
                    target = block_pcs[block_plan.local_target]
                blocks.append(
                    BasicBlock(
                        pc=block_pc,
                        instructions=block_plan.instructions,
                        kind=block_plan.kind,
                        target=target,
                        taken_probability=block_plan.taken_probability,
                        mean_iterations=block_plan.mean_iterations,
                    )
                )
            functions.append(
                Function(
                    name=plan.name,
                    blocks=blocks,
                    level=plan.level,
                    is_handler=plan.is_handler,
                )
            )
        return functions


def build_program(spec: WorkloadSpec, seed: int) -> SyntheticProgram:
    """Convenience wrapper: generate the program for (spec, seed)."""
    return ProgramGenerator(spec, seed).generate()
