"""Stride prefetching on the instruction block stream.

Included as a deliberately-poor instruction baseline: the paper observes
that temporal instruction streams "exhibit no simple patterns such as
strides" (Section 3), and this engine quantifies exactly that claim in
the ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Prefetcher


class StridePrefetcher(Prefetcher):
    """Classic two-delta confirmation stride detector over block addresses."""

    def __init__(self, degree: int = 2) -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.name = f"stride(d={degree})"
        self.degree = degree
        self._last_block: Optional[int] = None
        self._last_stride: Optional[int] = None
        self._confirmed: bool = False

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        out: List[int] = []
        self.on_demand_access_into(block, pc, trap_level, hit,
                                   was_prefetched, out)
        return out

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        last_block = self._last_block
        if last_block == block:
            return 0
        issued = 0
        if last_block is not None:
            stride = block - last_block
            if stride == self._last_stride and stride != 0:
                self._confirmed = True
            elif self._last_stride is not None:
                self._confirmed = False
            self._last_stride = stride
            if self._confirmed:
                self.stats.triggers += 1
                append = out.append
                for step in range(1, self.degree + 1):
                    append(block + stride * step)
                issued = self.degree
                self.stats.issued += issued
        self._last_block = block
        return issued

    def reset(self) -> None:
        super().reset()
        self._last_block = None
        self._last_stride = None
        self._confirmed = False
