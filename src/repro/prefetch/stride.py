"""Stride prefetching on the instruction block stream.

Included as a deliberately-poor instruction baseline: the paper observes
that temporal instruction streams "exhibit no simple patterns such as
strides" (Section 3), and this engine quantifies exactly that claim in
the ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Prefetcher


class StridePrefetcher(Prefetcher):
    """Classic two-delta confirmation stride detector over block addresses."""

    def __init__(self, degree: int = 2) -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.name = f"stride(d={degree})"
        self.degree = degree
        self._last_block: Optional[int] = None
        self._last_stride: Optional[int] = None
        self._confirmed: bool = False

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        prefetches: List[int] = []
        if self._last_block is not None and block != self._last_block:
            stride = block - self._last_block
            if stride == self._last_stride and stride != 0:
                self._confirmed = True
            elif self._last_stride is not None:
                self._confirmed = False
            self._last_stride = stride
            if self._confirmed:
                self.stats.triggers += 1
                for step in range(1, self.degree + 1):
                    prefetches.append(block + stride * step)
        if block != self._last_block:
            self._last_block = block
        self.stats.issued += len(prefetches)
        return prefetches

    def reset(self) -> None:
        super().reset()
        self._last_block = None
        self._last_stride = None
        self._confirmed = False
