"""Temporal Instruction Fetch Streaming (TIFS), Ferdman et al., MICRO'08.

The state-of-the-art temporal instruction prefetcher the paper compares
against (Section 5.5).  TIFS records the L1-I *miss* stream — one block
address per record, GHB-style — and on a miss whose address has been
seen before, replays the subsequent recorded addresses.

Its two structural handicaps versus PIF are intrinsic to what it
observes, not to its sizing (and we therefore reproduce them, not fix
them):

* the recorded stream is the *miss* stream, already filtered and
  fragmented by the instruction cache (Section 2.1);
* fetch-side misses include wrong-path references injected by branch
  mispredictions (Section 2.2).

Following the TIFS design, the log records "would-be misses": real
demand misses plus first demand hits on prefetched blocks, so the
prefetcher's own success does not erase its training data.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.lru import LRUCache
from ..core.history import HistoryBuffer, IndexTable
from .base import Prefetcher


class _MissStream:
    """One active replay of the recorded miss stream."""

    __slots__ = ("pointer", "window")

    def __init__(self, pointer: int, window: List[int]) -> None:
        self.pointer = pointer
        self.window = window


class TIFSPrefetcher(Prefetcher):
    """Temporal streaming over the (would-be) miss stream.

    Parameters mirror PIF's so head-to-head comparisons vary only the
    observed stream and record granularity: ``history_blocks`` is the
    instruction-miss log capacity, ``streams`` the number of concurrent
    stream queues, ``window_blocks`` the per-stream lookahead.
    """

    def __init__(self, history_blocks: int = 32 * 1024 * 8,
                 index_entries: Optional[int] = None,
                 streams: int = 4, window_blocks: int = 12) -> None:
        super().__init__()
        if streams <= 0 or window_blocks <= 0:
            raise ValueError("streams and window must be positive")
        self.name = "tifs"
        self.history: HistoryBuffer[int] = HistoryBuffer(history_blocks)
        self.index = IndexTable(index_entries)
        self.window_blocks = window_blocks
        self._streams: LRUCache[int, _MissStream] = LRUCache(streams)
        self._stream_counter = 0

    # ------------------------------------------------------------------

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        prefetches: List[int] = []
        matched = self._advance_streams(block, prefetches)
        would_be_miss = (not hit) or (hit and was_prefetched)
        if would_be_miss:
            position = self.history.append(block)
            previous = self.index.lookup(block)
            self.index.insert(block, position)
            if not hit and not matched and previous is not None:
                self._allocate(previous + 1, prefetches)
        if prefetches:
            self.stats.issued += len(prefetches)
        return prefetches

    # ------------------------------------------------------------------

    def _advance_streams(self, block: int, prefetches: List[int]) -> bool:
        """Advance any stream whose window contains ``block``."""
        for stream_id, stream in list(self._streams.items_mru_first()):
            if block not in stream.window:
                continue
            match_offset = stream.window.index(block)
            stream.pointer += match_offset + 1
            self._refill(stream, prefetches)
            self._streams.promote(stream_id)
            return True
        return False

    def _allocate(self, pointer: int, prefetches: List[int]) -> None:
        self.stats.triggers += 1
        self.stats.stream_allocations += 1
        self._stream_counter += 1
        stream = _MissStream(pointer, [])
        self._refill(stream, prefetches)
        if stream.window:
            self._streams.put(self._stream_counter, stream)

    def _refill(self, stream: _MissStream, prefetches: List[int]) -> None:
        """Re-read the lookahead window at the stream's pointer and queue
        prefetches for addresses newly entering the window."""
        run = self.history.read_run(stream.pointer, self.window_blocks)
        new_window = [record for _, record in run]
        for address in new_window:
            if address not in stream.window:
                prefetches.append(address)
        stream.window = new_window

    def reset(self) -> None:
        super().reset()
        self.history = HistoryBuffer(self.history.capacity)
        self.index = IndexTable(self.index.capacity, self.index.associativity)
        self._streams.clear()
        self._stream_counter = 0
