"""Temporal Instruction Fetch Streaming (TIFS), Ferdman et al., MICRO'08.

The state-of-the-art temporal instruction prefetcher the paper compares
against (Section 5.5).  TIFS records the L1-I *miss* stream — one block
address per record, GHB-style — and on a miss whose address has been
seen before, replays the subsequent recorded addresses.

Its two structural handicaps versus PIF are intrinsic to what it
observes, not to its sizing (and we therefore reproduce them, not fix
them):

* the recorded stream is the *miss* stream, already filtered and
  fragmented by the instruction cache (Section 2.1);
* fetch-side misses include wrong-path references injected by branch
  mispredictions (Section 2.2).

Following the TIFS design, the log records "would-be misses": real
demand misses plus first demand hits on prefetched blocks, so the
prefetcher's own success does not erase its training data.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.history import HistoryBuffer, IndexTable
from .base import Prefetcher


class _MissStream:
    """One active replay of the recorded miss stream."""

    __slots__ = ("pointer", "window")

    def __init__(self, pointer: int, window: List[int]) -> None:
        self.pointer = pointer
        self.window = window


class TIFSPrefetcher(Prefetcher):
    """Temporal streaming over the (would-be) miss stream.

    Parameters mirror PIF's so head-to-head comparisons vary only the
    observed stream and record granularity: ``history_blocks`` is the
    instruction-miss log capacity, ``streams`` the number of concurrent
    stream queues, ``window_blocks`` the per-stream lookahead.
    """

    def __init__(self, history_blocks: int = 32 * 1024 * 8,
                 index_entries: Optional[int] = None,
                 streams: int = 4, window_blocks: int = 12) -> None:
        super().__init__()
        if streams <= 0 or window_blocks <= 0:
            raise ValueError("streams and window must be positive")
        self.name = "tifs"
        self.history: HistoryBuffer[int] = HistoryBuffer(history_blocks)
        self.index = IndexTable(index_entries)
        self.window_blocks = window_blocks
        #: Active replays, most-recently-used first (the LRU file of
        #: stream queues, kept as a plain list so the per-access scan
        #: allocates nothing).
        self._streams: List[_MissStream] = []
        self._stream_capacity = streams

    # ------------------------------------------------------------------

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        out: List[int] = []
        self.on_demand_access_into(block, pc, trap_level, hit,
                                   was_prefetched, out)
        return out

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        before = len(out)
        # Advance the first (MRU-first) stream whose window has the
        # block; the scan runs once per front-end fetch of every TIFS
        # lane, so it stays inline rather than behind a helper call.
        matched = False
        streams = self._streams
        for position, stream in enumerate(streams):
            window = stream.window
            if block in window:
                stream.pointer += window.index(block) + 1
                self._refill(stream, out)
                if position:
                    del streams[position]
                    streams.insert(0, stream)
                matched = True
                break
        would_be_miss = (not hit) or (hit and was_prefetched)
        if would_be_miss:
            position = self.history.append(block)
            previous = self.index.lookup(block)
            self.index.insert(block, position)
            if not hit and not matched and previous is not None:
                self._allocate(previous + 1, out)
        issued = len(out) - before
        if issued:
            self.stats.issued += issued
        return issued

    # ------------------------------------------------------------------

    def _allocate(self, pointer: int, prefetches: List[int]) -> None:
        self.stats.triggers += 1
        self.stats.stream_allocations += 1
        stream = _MissStream(pointer, [])
        self._refill(stream, prefetches)
        if stream.window:
            streams = self._streams
            if len(streams) >= self._stream_capacity:
                streams.pop()
            streams.insert(0, stream)

    def _refill(self, stream: _MissStream, prefetches: List[int]) -> None:
        """Re-read the lookahead window at the stream's pointer and queue
        prefetches for addresses newly entering the window."""
        new_window = self.history.read_run_values(stream.pointer,
                                                  self.window_blocks)
        old_window = stream.window
        for address in new_window:
            if address not in old_window:
                prefetches.append(address)
        stream.window = new_window

    def reset(self) -> None:
        super().reset()
        self.history = HistoryBuffer(self.history.capacity)
        self.index = IndexTable(self.index.capacity, self.index.associativity)
        self._streams = []
