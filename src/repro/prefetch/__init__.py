"""Prefetch engines: the common interface and the baseline prefetchers.

PIF itself lives in :mod:`repro.core`; it implements the same
:class:`Prefetcher` interface and is registered here for convenience.
"""

from typing import Optional

from ..common.config import PIFConfig
from .base import NullPrefetcher, PrefetchStats, Prefetcher, as_block_list
from .discontinuity import DiscontinuityPrefetcher
from .nextline import NextLinePrefetcher
from .stride import StridePrefetcher
from .tifs import TIFSPrefetcher


def __getattr__(name: str):
    # PIF lives in repro.core (it is the paper's contribution, not a
    # baseline) but is re-exported here.  The import is lazy to break
    # the core -> prefetch.base -> prefetch -> core cycle.
    if name == "ProactiveInstructionFetch":
        from ..core.pif import ProactiveInstructionFetch

        return ProactiveInstructionFetch
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Every name :func:`make_prefetcher` accepts, in presentation order —
#: the single source of truth the CLI's engine list and the scenario
#: registry are checked against (``tests/scenarios``).
PREFETCHER_NAMES = ("none", "next-line", "next-line-miss", "stride",
                    "discontinuity", "tifs", "pif", "pif-no-tlsep")


def make_prefetcher(name: str, pif_config: Optional[PIFConfig] = None,
                    block_bytes: int = 64) -> Prefetcher:
    """Factory over every engine the experiments compare.

    Names (:data:`PREFETCHER_NAMES`): ``none``, ``next-line``,
    ``next-line-miss``, ``stride``, ``discontinuity``, ``tifs``,
    ``pif``, ``pif-no-tlsep`` (PIF without trap-level separation, for
    the RetireSep ablation).
    """
    if name == "none":
        return NullPrefetcher()
    if name == "next-line":
        return NextLinePrefetcher(degree=4, trigger="access")
    if name == "next-line-miss":
        return NextLinePrefetcher(degree=4, trigger="miss")
    if name == "stride":
        return StridePrefetcher()
    if name == "discontinuity":
        return DiscontinuityPrefetcher()
    if name == "tifs":
        return TIFSPrefetcher()
    if name == "pif":
        from ..core.pif import ProactiveInstructionFetch

        return ProactiveInstructionFetch(pif_config, block_bytes=block_bytes)
    if name == "pif-no-tlsep":
        from ..core.pif import ProactiveInstructionFetch

        return ProactiveInstructionFetch(pif_config, block_bytes=block_bytes,
                                         separate_trap_levels=False)
    raise ValueError(f"unknown prefetcher {name!r}")


__all__ = [
    "NullPrefetcher",
    "PREFETCHER_NAMES",
    "PrefetchStats",
    "Prefetcher",
    "as_block_list",
    "DiscontinuityPrefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "TIFSPrefetcher",
    "ProactiveInstructionFetch",
    "make_prefetcher",
]
